//! Scalability and failure-injection tests over *generated* families of
//! systems: protocol chains of arbitrary length, composites with many
//! subsystems, and systematic fault seeding (dropped closes, reordered
//! calls, missing cases, undefined operations).

use shelley::core::{build_integration, Checker};
use std::fmt::Write as _;

/// A base class whose protocol is a chain `s0 → s1 → … → s{n-1}` with the
/// last step final and looping back to s0.
fn chain_class(name: &str, n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "@sys\nclass {name}:");
    for i in 0..n {
        let decorator = if n == 1 {
            "@op_initial_final"
        } else if i == 0 {
            "@op_initial"
        } else if i == n - 1 {
            "@op_final"
        } else {
            "@op"
        };
        let next = if i == n - 1 {
            "[\"s0\"]".to_string()
        } else {
            format!("[\"s{}\"]", i + 1)
        };
        let _ = writeln!(out, "    {decorator}");
        let _ = writeln!(out, "    def s{i}(self):");
        let _ = writeln!(out, "        return {next}");
        let _ = writeln!(out);
    }
    out
}

/// A composite that drives `k` chain instances through one full protocol
/// round each.
fn driver_class(k: usize, n: usize) -> String {
    let fields: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
    let quoted: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
    let mut out = String::new();
    let _ = writeln!(out, "@sys([{}])", quoted.join(", "));
    let _ = writeln!(out, "class Driver:");
    let _ = writeln!(out, "    def __init__(self):");
    for f in &fields {
        let _ = writeln!(out, "        self.{f} = Chain()");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "    @op_initial_final");
    let _ = writeln!(out, "    def run(self):");
    for f in &fields {
        for i in 0..n {
            let _ = writeln!(out, "        self.{f}.s{i}()");
        }
    }
    let _ = writeln!(out, "        return []");
    out
}

fn chain_system(k: usize, n: usize) -> String {
    format!("{}\n{}", chain_class("Chain", n), driver_class(k, n))
}

#[test]
fn chains_of_many_lengths_verify() {
    for n in [1, 2, 3, 5, 10, 25] {
        let src = chain_system(1, n);
        let checked = Checker::new().check_source(&src).unwrap();
        assert!(
            checked.report.passed(),
            "chain n={n}: {}",
            checked.report.render(None)
        );
    }
}

#[test]
fn many_subsystems_verify() {
    for k in [1, 2, 4, 8] {
        let src = chain_system(k, 3);
        let checked = Checker::new().check_source(&src).unwrap();
        assert!(
            checked.report.passed(),
            "k={k}: {}",
            checked.report.render(None)
        );
        let driver = checked.systems.get("Driver").unwrap();
        assert_eq!(driver.composite().unwrap().subsystems.len(), k);
    }
}

#[test]
fn fault_dropped_final_step_detected() {
    // Drop the final step of the first chain: its projection never reaches
    // a final operation.
    let good = chain_system(2, 3);
    let faulty = good.replacen("        self.c0.s2()\n", "", 1);
    assert_ne!(good, faulty);
    let checked = Checker::new().check_source(&faulty).unwrap();
    assert_eq!(checked.report.usage_violations.len(), 1);
    let (_, v) = &checked.report.usage_violations[0];
    assert!(v.subsystem_errors.iter().any(|e| e.field == "c0"));
    assert!(v
        .subsystem_errors
        .iter()
        .all(|e| e.render().contains("not final")));
}

#[test]
fn fault_reordered_calls_detected() {
    let good = chain_system(1, 3);
    // Swap s0 and s1 on the only chain.
    let faulty = good.replacen(
        "        self.c0.s0()\n        self.c0.s1()\n",
        "        self.c0.s1()\n        self.c0.s0()\n",
        1,
    );
    assert_ne!(good, faulty);
    let checked = Checker::new().check_source(&faulty).unwrap();
    assert_eq!(checked.report.usage_violations.len(), 1);
    let (_, v) = &checked.report.usage_violations[0];
    assert!(v.subsystem_errors[0].render().contains("not initial"));
}

#[test]
fn fault_undefined_operation_detected() {
    let good = chain_system(1, 2);
    let faulty = good.replacen("self.c0.s0()", "self.c0.warp()", 1);
    let checked = Checker::new().check_source(&faulty).unwrap();
    assert!(checked
        .report
        .diagnostics
        .by_code(shelley::core::codes::UNDEFINED_OPERATION)
        .next()
        .is_some());
}

#[test]
fn fault_bad_claim_detected() {
    let good = chain_system(1, 2);
    let with_claim = good.replace("@sys([\"c0\"])", "@claim(\"G !c0.s1\")\n@sys([\"c0\"])");
    let checked = Checker::new().check_source(&with_claim).unwrap();
    assert_eq!(checked.report.claim_violations.len(), 1);
    let (_, v) = &checked.report.claim_violations[0];
    assert!(v.counterexample_text.contains("c0.s1"));
}

#[test]
fn hierarchy_of_three_levels_verifies() {
    let src = r#"
@sys
class Pump:
    @op_initial
    def prime(self):
        return ["start"]

    @op
    def start(self):
        return ["stop"]

    @op_final
    def stop(self):
        return ["prime"]

@sys(["p"])
class Station:
    def __init__(self):
        self.p = Pump()

    @op_initial_final
    def cycle(self):
        self.p.prime()
        self.p.start()
        self.p.stop()
        return ["cycle"]

@sys(["s1", "s2"])
class Plant:
    def __init__(self):
        self.s1 = Station()
        self.s2 = Station()

    @op_initial_final
    def shift(self):
        self.s1.cycle()
        self.s2.cycle()
        self.s1.cycle()
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
    // Plant's integration speaks Station's interface operations.
    let plant = checked.systems.get("Plant").unwrap();
    let integration = build_integration(plant);
    let ab = integration.nfa.alphabet();
    assert!(ab.lookup("s1.cycle").is_some());
    assert!(ab.lookup("s2.cycle").is_some());
    let s = |n: &str| ab.lookup(n).unwrap();
    assert!(integration
        .nfa
        .accepts(&[s("shift"), s("s1.cycle"), s("s2.cycle"), s("s1.cycle"),]));
}

#[test]
fn hierarchy_violation_at_middle_level_detected() {
    // Station misuses Pump (start without prime) — detected at Station,
    // while Plant's use of Station's *interface* stays correct.
    let src = r#"
@sys
class Pump:
    @op_initial
    def prime(self):
        return ["start"]

    @op
    def start(self):
        return ["stop"]

    @op_final
    def stop(self):
        return ["prime"]

@sys(["p"])
class Station:
    def __init__(self):
        self.p = Pump()

    @op_initial_final
    def cycle(self):
        self.p.start()
        self.p.stop()
        return ["cycle"]

@sys(["s1"])
class Plant:
    def __init__(self):
        self.s1 = Station()

    @op_initial_final
    def shift(self):
        self.s1.cycle()
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    let violating: Vec<&str> = checked
        .report
        .usage_violations
        .iter()
        .map(|(c, _)| c.as_str())
        .collect();
    assert_eq!(violating, vec!["Station"]);
}

#[test]
fn loops_in_composites_verify() {
    let src = r#"
@sys
class Sensor:
    @op_initial_final
    def read(self):
        return ["read"]

@sys(["s"])
class Sampler:
    def __init__(self):
        self.s = Sensor()

    @op_initial_final
    def sample(self):
        for i in range(100):
            self.s.read()
        while self.more():
            self.s.read()
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
    let sampler = checked.systems.get("Sampler").unwrap();
    let integration = build_integration(sampler);
    let ab = integration.nfa.alphabet();
    let s = |n: &str| ab.lookup(n).unwrap();
    // Any number of reads is fine, including zero.
    assert!(integration.nfa.accepts(&[s("sample")]));
    assert!(integration
        .nfa
        .accepts(&[s("sample"), s("s.read"), s("s.read"), s("s.read")]));
}

#[test]
fn scales_to_a_fifty_operation_chain() {
    let src = chain_system(1, 50);
    let checked = Checker::new().check_source(&src).unwrap();
    assert!(checked.report.passed());
    let chain = checked.systems.get("Chain").unwrap();
    assert_eq!(chain.spec.operations.len(), 50);
}
