//! End-to-end assertions for every artifact of the paper: listings,
//! figures, tables, examples, theorems, and both error messages.

use shelley::core::extract::dependency::{DepNode, DependencyGraph};
use shelley::core::{build_integration, spec_diagram, Checker};
use shelley::ir::{denote, infer, Program, Status, TraceChecker};
use shelley::regular::{Alphabet, Dfa, Nfa};
use std::sync::Arc;

/// Listings 2.1 and 2.2 verbatim (modulo the `clean` field/method name
/// clash in the paper's Listing 2.1, renamed to `clean_pin` as any real
/// Python program must).
const PAPER: &str = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean_pin = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean_pin.on()
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#;

#[test]
fn table1_all_annotations_accepted() {
    // Every annotation of Table 1 in one module.
    let src = r#"
@claim("G !x.boom")
@sys(["x"])
class Composite:
    def __init__(self):
        self.x = Base()

    @op_initial
    def a(self):
        self.x.go()
        return ["b"]

    @op
    def b(self):
        return ["c", "d"]

    @op_final
    def c(self):
        return []

    @op_initial_final
    def d(self):
        return []

@sys
class Base:
    @op_initial_final
    def go(self):
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
    let composite = checked.systems.get("Composite").unwrap();
    assert!(composite.is_composite());
    assert_eq!(composite.claims.len(), 1);
    let spec = &composite.spec;
    assert!(spec.operation("a").unwrap().kind.is_initial());
    assert!(!spec.operation("a").unwrap().kind.is_final());
    assert!(!spec.operation("b").unwrap().kind.is_initial());
    assert!(spec.operation("c").unwrap().kind.is_final());
    let d = spec.operation("d").unwrap();
    assert!(d.kind.is_initial() && d.kind.is_final());
}

#[test]
fn table2_return_forms_all_extract() {
    let src = r#"
@sys
class Forms:
    @op_initial
    def start(self):
        return ["single"]

    @op
    def single(self):
        return ["multi"]

    @op
    def multi(self):
        if x:
            return ["single", "valued_int"]
        else:
            return ["valued_int"]

    @op
    def valued_int(self):
        return ["valued_bool"], 2

    @op
    def valued_bool(self):
        return ["multi_valued"], True

    @op_final
    def multi_valued(self):
        return ["single", "multi"], 2
"#;
    let checked = Checker::new().check_source(src).unwrap();
    assert!(
        !checked.report.diagnostics.has_errors(),
        "{}",
        checked.report.render(None)
    );
    let spec = &checked.systems.get("Forms").unwrap().spec;
    assert_eq!(
        spec.operation("single").unwrap().exits[0].next,
        vec!["multi"]
    );
    assert_eq!(
        spec.operation("multi").unwrap().exits[0].next,
        vec!["single", "valued_int"]
    );
    assert_eq!(
        spec.operation("valued_int").unwrap().exits[0].next,
        vec!["valued_bool"]
    );
    assert_eq!(
        spec.operation("valued_bool").unwrap().exits[0].next,
        vec!["multi_valued"]
    );
    assert_eq!(
        spec.operation("multi_valued").unwrap().exits[0].next,
        vec!["single", "multi"]
    );
}

#[test]
fn figure1_valve_diagram_structure() {
    let checked = Checker::new().check_source(PAPER).unwrap();
    let dot = spec_diagram(&checked.systems.get("Valve").unwrap().spec);
    for needle in [
        "__start -> \"test\"",
        "\"test\" -> \"open\"",
        "\"test\" -> \"clean\"",
        "\"open\" -> \"close\"",
        "\"close\" -> \"test\"",
        "\"clean\" -> \"test\"",
        "\"close\" [shape=doublecircle]",
        "\"clean\" [shape=doublecircle]",
    ] {
        assert!(dot.contains(needle), "figure 1 misses {needle}");
    }
    // Exactly the five operation transitions plus the start edge.
    assert_eq!(dot.matches("->").count(), 6);
}

#[test]
fn figure2_error_message_exact() {
    let checked = Checker::new().check_source(PAPER).unwrap();
    let (class, v) = &checked.report.usage_violations[0];
    assert_eq!(class, "BadSector");
    assert_eq!(
        v.render(),
        "Error in specification: INVALID SUBSYSTEM USAGE\n\
         Counter example: open_a, a.test, a.open\n\
         Subsystems errors:\n\
        \x20 * Valve 'a': test, >open< (not final)\n"
    );
}

#[test]
fn claim_error_message_exact_shape() {
    let checked = Checker::new().check_source(PAPER).unwrap();
    let (_, v) = &checked.report.claim_violations[0];
    let rendered = v.render();
    let mut lines = rendered.lines();
    assert_eq!(
        lines.next().unwrap(),
        "Error in specification: FAIL TO MEET REQUIREMENT"
    );
    assert_eq!(lines.next().unwrap(), "Formula: (!a.open) W b.open");
    let counter = lines.next().unwrap();
    assert!(counter.starts_with("Counter example: "));
    // The counterexample must genuinely violate the claim.
    let mut ab = Alphabet::new();
    let f = shelley::ltlf::parse_formula(&v.formula, &mut ab).unwrap();
    let trace: Vec<_> = counter
        .trim_start_matches("Counter example: ")
        .split(", ")
        .map(|n| ab.intern(n))
        .collect();
    assert!(!shelley::ltlf::eval(&f, &trace));
    // The paper's own counterexample is also in the model: the full run
    // a.test, a.open, b.test, b.open, a.close, b.close violates the claim.
    let checked2 = Checker::new().check_source(PAPER).unwrap();
    let bs = checked2.systems.get("BadSector").unwrap();
    let integration = build_integration(bs);
    let s = |n: &str| integration.nfa.alphabet().lookup(n).unwrap();
    let full = [
        s("open_a"),
        s("a.test"),
        s("a.open"),
        s("open_b"),
        s("b.test"),
        s("b.open"),
        s("a.close"),
        s("b.close"),
    ];
    assert!(integration.nfa.accepts(&full));
    let events: Vec<_> = shelley::regular::ops::strip_markers(full.as_ref(), &integration.markers);
    let mut ab2 = (**integration.nfa.alphabet()).clone();
    let f2 = shelley::ltlf::parse_formula("(!a.open) W b.open", &mut ab2).unwrap();
    assert!(!shelley::ltlf::eval(&f2, &events));
}

#[test]
fn figure3_sector_dependency_graph() {
    let src = r#"
@sys
class Sector:
    @op_initial
    def open_a(self):
        if which:
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if which:
            return []
        else:
            return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    let spec = &checked.systems.get("Sector").unwrap().spec;
    let g = DependencyGraph::from_spec(spec);
    // §3.1: "we have 4 methods ... so there are 4 entry nodes"; open_a has
    // 2 returns → exit nodes (A) and (B).
    assert_eq!(g.entry_count(), 4);
    assert_eq!(g.exit_count(), 6);
    // Exit (A) links to close_a and open_b; exit (B) to clean_a.
    let exit_a = g
        .nodes
        .iter()
        .position(|n| *n == DepNode::Exit("open_a".into(), 0))
        .unwrap();
    let succ_a: Vec<&DepNode> = g.successors(exit_a).map(|i| &g.nodes[i]).collect();
    assert!(succ_a.contains(&&DepNode::Entry("close_a".into())));
    assert!(succ_a.contains(&&DepNode::Entry("open_b".into())));
    let exit_b = g
        .nodes
        .iter()
        .position(|n| *n == DepNode::Exit("open_a".into(), 1))
        .unwrap();
    let succ_b: Vec<&DepNode> = g.successors(exit_b).map(|i| &g.nodes[i]).collect();
    assert_eq!(succ_b, vec![&DepNode::Entry("clean_a".into())]);
}

#[test]
fn figure4_examples_1_2_3() {
    let mut ab = Alphabet::new();
    let (a, b, c) = (ab.intern("a"), ab.intern("b"), ab.intern("c"));
    let p = Program::loop_(Program::seq(
        Program::call(a),
        Program::if_(
            Program::seq(Program::call(b), Program::ret(0)),
            Program::call(c),
        ),
    ));
    let checker = TraceChecker::new(&p);
    // Example 1.
    assert!(checker.derivable(Status::Ongoing, &[a, c, a, c]));
    // Example 2.
    assert!(checker.derivable(Status::Returned, &[a, c, a, b]));
    // Example 3: ⟦p⟧ = ((a·(b·∅+c))*, {(a·(b·∅+c))*·a·b}).
    let (r, s) = denote(&p);
    assert_eq!(r.display(&ab).to_string(), "(a · c)*");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].display(&ab).to_string(), "(a · c)* · a · b");
}

#[test]
fn theorems_on_the_extracted_badsector_behaviors() {
    // The theorems applied to behaviors extracted from real MicroPython:
    // for each operation of BadSector, the semantics and the inference
    // agree on every word up to length 6.
    let checked = Checker::new().check_source(PAPER).unwrap();
    let bs = checked.systems.get("BadSector").unwrap();
    let info = bs.composite().unwrap();
    for (name, lowered) in &info.methods {
        let behavior = infer(&lowered.program);
        let checker = TraceChecker::new(&lowered.program);
        let dfa = Dfa::from_nfa(&Nfa::from_regex(
            &behavior,
            Arc::new((*info.alphabet).clone()),
        ));
        for w in dfa.enumerate_words(6, 300) {
            assert!(checker.in_language(&w), "{name}: {w:?}");
        }
        // And conversely on the semantic enumeration.
        let traces = shelley::ir::enumerate_traces(&lowered.program, Default::default());
        for (_, l) in traces {
            assert!(behavior.matches(&l), "{name}: {l:?}");
        }
    }
}

#[test]
fn matching_exit_points_check() {
    // §3 step 3: dropping the clean case must be flagged.
    let partial = PAPER.replace(
        r#"            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []"#,
        "",
    );
    let checked = Checker::new().check_source(&partial).unwrap();
    assert!(checked
        .report
        .diagnostics
        .by_code(shelley::core::codes::NON_EXHAUSTIVE_MATCH)
        .next()
        .is_some());
}

#[test]
fn smv_translation_of_the_valve_spec_validates() {
    let checked = Checker::new().check_source(PAPER).unwrap();
    let valve = checked.systems.get("Valve").unwrap();
    let mut ab = Alphabet::new();
    shelley::core::spec::intern_spec_events(&valve.spec, None, &mut ab);
    let auto = shelley::core::spec::spec_automaton(&valve.spec, None, Arc::new(ab));
    let dfa = Dfa::from_nfa(auto.nfa()).minimize();
    let model = shelley::smv::nfa_to_smv(auto.nfa(), "Valve", &[]);
    let report = shelley::smv::validate_model(&model, &dfa, 6);
    assert!(report.passed(), "{:?}", report.mismatches);
    assert!(model.to_smv().contains("MODULE main"));
}
