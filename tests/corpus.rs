//! Corpus tests: the shipped `.py` files verify with the expected results,
//! and the whole pipeline is panic-free on hostile input.

use proptest::prelude::*;
use shelley::core::Checker;

#[test]
fn paper_corpus_fails_as_published() {
    let source = include_str!("../examples_py/paper.py");
    let checked = Checker::new().check_source(source).unwrap();
    assert!(!checked.report.passed());
    assert_eq!(checked.report.usage_violations.len(), 1);
    assert_eq!(checked.report.claim_violations.len(), 1);
}

#[test]
fn sector_corpus_passes() {
    let source = include_str!("../examples_py/sector.py");
    let checked = Checker::new().check_source(source).unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
}

#[test]
fn greenhouse_corpus_passes_with_six_systems() {
    let source = include_str!("../examples_py/greenhouse.py");
    let checked = Checker::new().check_source(source).unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
    assert_eq!(checked.systems.len(), 6);
    // Three composites at two hierarchy levels.
    let composites: Vec<&str> = checked
        .systems
        .iter()
        .filter(|s| s.is_composite())
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(composites, vec!["Bed", "Vent", "Greenhouse"]);
    // The top level sees only interface operations of the mid level.
    let greenhouse = checked.systems.get("Greenhouse").unwrap();
    let info = greenhouse.composite().unwrap();
    assert!(info.alphabet.lookup("b1.water_if_dry").is_some());
    assert!(info.alphabet.lookup("w.open").is_none());
}

#[test]
fn greenhouse_mutations_are_caught() {
    let source = include_str!("../examples_py/greenhouse.py");
    // Drop the close after open in Bed: valve left open.
    let broken = source.replacen("                self.w.close()\n", "", 1);
    assert_ne!(source, broken);
    let checked = Checker::new().check_source(&broken).unwrap();
    assert!(!checked.report.passed());
    assert!(checked
        .report
        .usage_violations
        .iter()
        .any(|(class, _)| class == "Bed"));

    // Spin the fan up without down in Vent: both usage and claim break.
    let broken = source.replacen("        self.f.spin_down()\n", "", 1);
    let checked = Checker::new().check_source(&broken).unwrap();
    assert!(!checked.report.passed());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full pipeline never panics, whatever the (parseable or not)
    /// input: it returns a parse error or a report.
    #[test]
    fn pipeline_never_panics(
        fragments in proptest::collection::vec(
            prop_oneof![
                Just("@sys".to_string()),
                Just("@sys([\"a\"])".to_string()),
                Just("@sys([\"a\", \"a\"])".to_string()),
                Just("@claim(\"(!a.x) W b.y\")".to_string()),
                Just("@claim(\"not a formula ((\")".to_string()),
                Just("class C:".to_string()),
                Just("class C(Base):".to_string()),
                Just("    def __init__(self):".to_string()),
                Just("        self.a = Valve()".to_string()),
                Just("    @op_initial".to_string()),
                Just("    @op_final".to_string()),
                Just("    @op".to_string()),
                Just("    def m(self):".to_string()),
                Just("        return [\"m\"]".to_string()),
                Just("        return [\"nonexistent\"]".to_string()),
                Just("        return []".to_string()),
                Just("        return 42".to_string()),
                Just("        self.a.anything()".to_string()),
                Just("        match self.a.m():".to_string()),
                Just("            case [\"m\"]:".to_string()),
                Just("                pass".to_string()),
                Just("        while x:".to_string()),
                Just("            break".to_string()),
                Just("        pass".to_string()),
            ],
            0..16
        )
    ) {
        let input = fragments.join("\n");
        let _ = Checker::new().check_source(&input);
    }
}
