//! One end-to-end witness per diagnostic code: every error and warning the
//! pipeline can produce is triggered from real source through
//! `check_source`, so the catalog in `diagnostics::codes` never rots.

use shelley::core::codes;
use shelley::core::Checker;

const VALVE: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

fn count(src: &str, code: &str) -> usize {
    let checked = Checker::new().check_source(src).unwrap();
    checked.report.diagnostics.by_code(code).count()
}

#[test]
fn e001_undefined_operation() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        self.a.warp()\n        return []\n"
    );
    assert_eq!(count(&src, codes::UNDEFINED_OPERATION), 1);
}

#[test]
fn e002_undefined_next_operation() {
    let src =
        "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        return [\"teleport\"]\n";
    assert_eq!(count(src, codes::UNDEFINED_NEXT_OPERATION), 1);
}

#[test]
fn e003_non_exhaustive_match() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                self.a.close()\n                return []\n"
    );
    assert_eq!(count(&src, codes::NON_EXHAUSTIVE_MATCH), 1);
}

#[test]
fn e004_bad_annotation() {
    assert_eq!(
        count("@sys(42)\nclass V:\n    pass\n", codes::BAD_ANNOTATION),
        1
    );
    assert_eq!(
        count(
            "@claim(42)\n@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        return []\n",
            codes::BAD_ANNOTATION
        ),
        1
    );
}

#[test]
fn e005_unknown_subsystem() {
    let src = "@sys([\"ghost\"])\nclass U:\n    def __init__(self):\n        pass\n\n    @op_initial_final\n    def go(self):\n        return []\n";
    assert_eq!(count(src, codes::UNKNOWN_SUBSYSTEM), 1);
}

#[test]
fn e006_no_initial_operation() {
    let src = "@sys\nclass V:\n    @op_final\n    def stop(self):\n        return []\n";
    assert_eq!(count(src, codes::NO_INITIAL_OPERATION), 1);
}

#[test]
fn e007_bad_claim() {
    let src = VALVE
        .replace(
            "@sys\nclass Valve:",
            "@claim(\"(!open W\")\n@sys\nclass Valve:",
        )
        .to_string();
    assert_eq!(count(&src, codes::BAD_CLAIM), 1);
}

#[test]
fn e100_invalid_subsystem_usage() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                return []\n            case [\"clean\"]:\n                self.a.clean()\n                return []\n"
    );
    assert_eq!(count(&src, codes::INVALID_SUBSYSTEM_USAGE), 1);
}

#[test]
fn e101_fail_to_meet_requirement() {
    let src = format!(
        "{VALVE}\n@claim(\"G !a.clean\")\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                self.a.close()\n                return []\n            case [\"clean\"]:\n                self.a.clean()\n                return []\n"
    );
    assert_eq!(count(&src, codes::FAIL_TO_MEET_REQUIREMENT), 1);
}

#[test]
fn w001_unreachable_case() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                self.a.close()\n                return []\n            case [\"clean\"]:\n                self.a.clean()\n                return []\n            case [\"levitate\"]:\n                return []\n"
    );
    assert_eq!(count(&src, codes::UNREACHABLE_CASE), 1);
}

#[test]
fn w002_unreachable_operation() {
    let src = "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        return []\n\n    @op_final\n    def island(self):\n        return []\n";
    assert_eq!(count(src, codes::UNREACHABLE_OPERATION), 1);
}

#[test]
fn w003_implicit_return() {
    let src = "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        if x:\n            return []\n";
    assert_eq!(count(src, codes::IMPLICIT_RETURN), 1);
}

#[test]
fn w004_no_final_reachable() {
    let src = "@sys\nclass V:\n    @op_initial\n    def a(self):\n        return [\"b\"]\n\n    @op\n    def b(self):\n        return []\n";
    assert!(count(src, codes::NO_FINAL_REACHABLE) >= 1);
}

#[test]
fn w005_unknown_decorator() {
    let src =
        "@sparkle\n@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        return []\n";
    assert_eq!(count(src, codes::UNKNOWN_DECORATOR), 1);
}

#[test]
fn w006_unscrutinized_exits() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        self.a.test()\n        self.a.clean()\n        return []\n"
    );
    assert_eq!(count(&src, codes::UNSCRUTINIZED_EXITS), 1);
}

#[test]
fn w007_loop_jump_approximated() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        while running:\n            if stop:\n                break\n            match self.a.test():\n                case [\"open\"]:\n                    self.a.open()\n                    self.a.close()\n                case [\"clean\"]:\n                    self.a.clean()\n        return []\n"
    );
    assert_eq!(count(&src, codes::LOOP_JUMP_APPROXIMATED), 1);
}

/// A clean file produces no diagnostics at all.
#[test]
fn clean_source_is_silent() {
    let checked = Checker::new().check_source(VALVE).unwrap();
    assert!(checked.report.diagnostics.is_empty());
    assert!(checked.report.passed());
}

#[test]
fn w008_field_reassigned() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        self.a = Valve()\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                self.a.close()\n                return []\n            case [\"clean\"]:\n                self.a.clean()\n                return []\n"
    );
    assert_eq!(count(&src, codes::FIELD_REASSIGNED), 1);
}

#[test]
fn e008_use_before_init() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        self.a.warmup()\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                self.a.close()\n                return []\n            case [\"clean\"]:\n                self.a.clean()\n                return []\n"
    );
    assert_eq!(count(&src, codes::USE_BEFORE_INIT), 1);
}

#[test]
fn w009_unreachable_statement() {
    let src = "@sys\nclass V:\n    @op_initial_final\n    def go(self):\n        return []\n        self.cleanup()\n";
    assert_eq!(count(src, codes::UNREACHABLE_STATEMENT), 1);
}

#[test]
fn w010_maybe_uninit_subsystem() {
    let src = format!(
        "{VALVE}\n@sys([\"a\"])\nclass U:\n    def __init__(self):\n        if flag:\n            self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                self.a.close()\n                return []\n            case [\"clean\"]:\n                self.a.clean()\n                return []\n"
    );
    assert!(count(&src, codes::MAYBE_UNINIT_SUBSYSTEM) >= 1);
}

#[test]
fn w011_sibling_operation_call() {
    let src = "@sys\nclass V:\n    @op_initial\n    def a(self):\n        self.b()\n        return [\"b\"]\n\n    @op_final\n    def b(self):\n        return []\n";
    assert_eq!(count(src, codes::SIBLING_OPERATION_CALL), 1);
}

#[test]
fn registry_has_a_witness_for_every_default_level() {
    // Guards the catalog's premise: every code in the registry is a real,
    // stable identifier the config layer accepts.
    let mut config = shelley::core::LintConfig::new();
    for info in shelley::core::REGISTRY {
        config
            .set(info.code, shelley::core::LintLevel::Warn)
            .unwrap();
    }
}
