//! Edge cases of the extraction/verification semantics that the main
//! suites don't pin down directly.

use shelley::core::{build_integration, Checker};
use shelley::regular::Dfa;

/// A composite op that falls off the end (implicit `return []`) still
/// contributes its traces to the integration automaton, and the exit is
/// terminal (no further ops may follow).
#[test]
fn implicit_exits_are_terminal_in_the_integration() {
    let src = r#"
@sys
class Led:
    @op_initial_final
    def pulse(self):
        return ["pulse"]

@sys(["led"])
class Panel:
    def __init__(self):
        self.led = Led()

    @op_initial_final
    def show(self):
        if bright:
            self.led.pulse()
            return ["show"]
        # falling through = return []

    @op_final
    def off(self):
        self.led.pulse()
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    // W003 for the implicit return; no errors.
    assert!(!checked.report.diagnostics.has_errors());
    let panel = checked.systems.get("Panel").unwrap();
    let spec_show = panel.spec.operation("show").unwrap();
    assert_eq!(spec_show.exits.len(), 2);
    assert!(spec_show.exits[1].implicit);
    let integration = build_integration(panel);
    let ab = integration.nfa.alphabet();
    let s = |n: &str| ab.lookup(n).unwrap();
    // Explicit exit chains to show again.
    assert!(integration
        .nfa
        .accepts(&[s("show"), s("led.pulse"), s("show"), s("led.pulse")]));
    // Implicit exit: the trace may end after `show` with no pulse…
    assert!(integration.nfa.accepts(&[s("show")]));
    // …but nothing may follow the implicit exit (next = []).
    assert!(!integration.nfa.accepts(&[s("show"), s("show")]));
}

/// Claims on a mid-level composite see its subsystems' events; claims on
/// the top level see the mid-level's *interface* operations — hierarchy
/// hides internals, exactly like the paper's composition model.
#[test]
fn hierarchical_claims_see_the_right_alphabet() {
    let src = r#"
@sys
class Pump:
    @op_initial
    def prime(self):
        return ["run"]

    @op
    def run(self):
        return ["stop"]

    @op_final
    def stop(self):
        return ["prime"]

@claim("(!p.run) W p.prime")
@sys(["p"])
class Station:
    def __init__(self):
        self.p = Pump()

    @op_initial_final
    def cycle(self):
        self.p.prime()
        self.p.run()
        self.p.stop()
        return ["cycle"]

@claim("G (!s.cycle | F s.cycle)")
@sys(["s"])
class Plant:
    def __init__(self):
        self.s = Station()

    @op_initial_final
    def shift(self):
        self.s.cycle()
        self.s.cycle()
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
    // The Plant integration speaks s.cycle, not p.run: internals are
    // hidden behind the Station interface.
    let plant = checked.systems.get("Plant").unwrap();
    let integration = build_integration(plant);
    assert!(integration.nfa.alphabet().lookup("s.cycle").is_some());
    assert!(integration.nfa.alphabet().lookup("p.run").is_none());
    assert!(integration.nfa.alphabet().lookup("s.p.run").is_none());
}

/// The integration automaton determinizes and minimizes without changing
/// its language (spot check on the paper example).
#[test]
fn integration_language_survives_minimization() {
    let src = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@sys(["a"])
class S:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def w(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return ["w"]
            case ["clean"]:
                self.a.clean()
                return ["w"]
"#;
    let checked = Checker::new().check_source(src).unwrap();
    let sys = checked.systems.get("S").unwrap();
    let integration = build_integration(sys);
    let dfa = Dfa::from_nfa(&integration.nfa);
    let min = dfa.minimize();
    assert!(min.equivalent(&dfa).is_ok());
    for w in min.enumerate_words(8, 200) {
        assert!(integration.nfa.accepts(&w));
    }
}

/// Two composites sharing the same base class keep independent instance
/// alphabets (no cross-talk between `x.op` of different composites).
#[test]
fn instance_alphabets_are_per_composite() {
    let src = r#"
@sys
class Led:
    @op_initial_final
    def blink(self):
        return ["blink"]

@sys(["l"])
class A:
    def __init__(self):
        self.l = Led()

    @op_initial_final
    def go(self):
        self.l.blink()
        return []

@sys(["lamp"])
class B:
    def __init__(self):
        self.lamp = Led()

    @op_initial_final
    def go(self):
        self.lamp.blink()
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
    let a = checked.systems.get("A").unwrap().composite().unwrap();
    let b = checked.systems.get("B").unwrap().composite().unwrap();
    assert!(a.alphabet.lookup("l.blink").is_some());
    assert!(a.alphabet.lookup("lamp.blink").is_none());
    assert!(b.alphabet.lookup("lamp.blink").is_some());
    assert!(b.alphabet.lookup("l.blink").is_none());
}

/// A return listing the same next-op twice, and two exits with identical
/// next-sets, are both tolerated (set semantics in the automaton).
#[test]
fn duplicate_next_ops_are_idempotent() {
    let src = r#"
@sys
class V:
    @op_initial
    def a(self):
        if x:
            return ["b", "b"]
        else:
            return ["b"]

    @op_final
    def b(self):
        return []
"#;
    let checked = Checker::new().check_source(src).unwrap();
    assert!(!checked.report.diagnostics.has_errors());
    let v = checked.systems.get("V").unwrap();
    let mut ab = shelley::regular::Alphabet::new();
    shelley::core::spec::intern_spec_events(&v.spec, None, &mut ab);
    let auto = shelley::core::spec::spec_automaton(&v.spec, None, std::sync::Arc::new(ab.clone()));
    let s = |n: &str| ab.lookup(n).unwrap();
    assert!(auto.nfa().accepts(&[s("a"), s("b")]));
    assert!(!auto.nfa().accepts(&[s("a"), s("b"), s("b")]));
}
