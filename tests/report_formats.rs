//! Snapshot tests of the user-facing report formats: the paper's two
//! error texts byte-for-byte, and golden files for the JSON and SARIF
//! renderers.
//!
//! Regenerate the goldens after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test --test report_formats`.

use shelley::core::Checker;
use shelley::micropython::SourceFile;
use std::path::Path;

/// Listings 2.1 + 2.2 of the paper (the `clean` pin renamed `clean_pin`).
const PAPER: &str = r#"@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean_pin = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean_pin.on()
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
"#;

#[test]
fn invalid_subsystem_usage_text_matches_the_paper() {
    let checked = Checker::new().check_source(PAPER).unwrap();
    let (_, v) = &checked.report.usage_violations[0];
    assert_eq!(
        v.render(),
        "Error in specification: INVALID SUBSYSTEM USAGE\n\
         Counter example: open_a, a.test, a.open\n\
         Subsystems errors:\n\
         \x20 * Valve 'a': test, >open< (not final)\n"
    );
}

#[test]
fn fail_to_meet_requirement_text_matches_the_paper() {
    let checked = Checker::new().check_source(PAPER).unwrap();
    let (_, v) = &checked.report.claim_violations[0];
    assert_eq!(v.formula, "(!a.open) W b.open");
    assert!(v.render().starts_with(
        "Error in specification: FAIL TO MEET REQUIREMENT\n\
         Formula: (!a.open) W b.open\n\
         Counter example: "
    ));
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{} drifted; rerun with UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn json_report_matches_golden() {
    let file = SourceFile::new("paper.py".to_owned(), PAPER.to_owned());
    let checked = Checker::new().check_source(PAPER).unwrap();
    let json = checked.report.diagnostics.render_json(Some(&file));
    check_golden("paper.json", &json);
}

#[test]
fn sarif_report_matches_golden() {
    let file = SourceFile::new("paper.py".to_owned(), PAPER.to_owned());
    let checked = Checker::new().check_source(PAPER).unwrap();
    let sarif = checked.report.diagnostics.render_sarif(Some(&file));
    // The acceptance shape: an E100 result whose message carries the
    // paper's counterexample.
    assert!(sarif.contains("\"ruleId\": \"E100\""));
    assert!(sarif.contains("open_a, a.test, a.open"));
    check_golden("paper.sarif", &sarif);
}

/// A fixture exercising the typestate-analysis codes: `DoubleOpen` opens
/// its valve twice (`E009` definite violation with a shortest trace),
/// `Flicker` only tests the valve on some paths (`W012` possible
/// violation), and neither ever runs `clean` (`W013` dead operation).
const TYPESTATE: &str = r#"@sys
class Valve:
    @op_initial
    def test(self):
        return ["open", "clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@sys(["a"])
class DoubleOpen:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.test()
        self.a.open()
        self.a.open()
        self.a.close()
        return []

@sys(["v"])
class Flicker:
    def __init__(self):
        self.v = Valve()

    @op_initial_final
    def blink(self):
        if day:
            self.v.test()
        self.v.open()
        self.v.close()
        return []
"#;

#[test]
fn typestate_text_report_matches_golden() {
    let file = SourceFile::new("typestate.py".to_owned(), TYPESTATE.to_owned());
    let checked = Checker::new().check_source(TYPESTATE).unwrap();
    let text = checked.report.render(Some(&file));
    for code in ["E009", "W012", "W013"] {
        assert!(text.contains(code), "missing {code} in:\n{text}");
    }
    assert!(text.contains("shortest violating trace: test, open, open"));
    check_golden("typestate.txt", &text);
}

#[test]
fn typestate_json_report_matches_golden() {
    let file = SourceFile::new("typestate.py".to_owned(), TYPESTATE.to_owned());
    let checked = Checker::new().check_source(TYPESTATE).unwrap();
    let json = checked.report.diagnostics.render_json(Some(&file));
    for code in ["E009", "W012", "W013"] {
        assert!(json.contains(code), "missing {code} in:\n{json}");
    }
    check_golden("typestate.json", &json);
}

#[test]
fn typestate_sarif_report_matches_golden() {
    let file = SourceFile::new("typestate.py".to_owned(), TYPESTATE.to_owned());
    let checked = Checker::new().check_source(TYPESTATE).unwrap();
    let sarif = checked.report.diagnostics.render_sarif(Some(&file));
    for rule in [
        "\"ruleId\": \"E009\"",
        "\"ruleId\": \"W012\"",
        "\"ruleId\": \"W013\"",
    ] {
        assert!(sarif.contains(rule), "missing {rule} in:\n{sarif}");
    }
    check_golden("typestate.sarif", &sarif);
}
