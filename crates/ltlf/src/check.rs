//! Model checking a regular model against an LTLf claim.
//!
//! A *model* is any automaton whose language is the set of complete event
//! traces a system can produce (in Shelley, the integration automaton of a
//! composite class). A claim `φ` holds iff every model trace satisfies it:
//! `L(M) ⊆ L(φ)`, decided via emptiness of `L(M) ∩ L(¬φ)` with a shortest
//! violating trace as counterexample.
//!
//! The `¬φ` monitor is driven **lazily** through its
//! [`MonitorView`]: only the formula states reachable along the model's
//! traces are ever progressed, so an adversarial claim with an exponential
//! monitor DFA costs nothing beyond what the model can reach. The eager
//! compile-then-search pipeline ([`to_dfa`](crate::to_dfa) +
//! [`ops::shortest_joint_word`]) remains the differential-testing oracle.

use crate::automaton::MonitorView;
use crate::syntax::Formula;
use shelley_regular::lang::{self, Product};
use shelley_regular::{ops, Dfa, Nfa, Symbol, Word};
use std::collections::BTreeSet;

/// The result of checking one claim against a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// Every model trace satisfies the claim.
    Holds,
    /// Some model trace violates the claim; a shortest one is returned
    /// (marker symbols preserved where the model interleaves them).
    Violated {
        /// A shortest violating trace.
        counterexample: Word,
    },
}

impl ClaimOutcome {
    /// Whether the claim holds.
    pub fn holds(&self) -> bool {
        matches!(self, ClaimOutcome::Holds)
    }
}

/// Checks `L(model) ⊆ L(claim)`, ignoring the symbols in `markers` (they
/// advance the model but are invisible to the claim).
///
/// # Panics
///
/// Panics if `model`'s alphabet differs from the alphabet the claim monitor
/// is built over (they must share one `Alphabet`).
pub fn check_claim(model: &Nfa, claim: &Formula, markers: &BTreeSet<Symbol>) -> ClaimOutcome {
    let bad = MonitorView::new(&claim.negate(), model.alphabet().clone());
    match ops::shortest_joint_word(model, &bad, markers) {
        None => ClaimOutcome::Holds,
        Some(counterexample) => ClaimOutcome::Violated { counterexample },
    }
}

/// Checks a claim against a DFA model with no markers.
pub fn check_claim_dfa(model: &Dfa, claim: &Formula) -> ClaimOutcome {
    let bad = MonitorView::new(&claim.negate(), model.alphabet().clone());
    match lang::shortest_accepted(&Product::intersection(model, &bad)) {
        None => ClaimOutcome::Holds,
        Some(counterexample) => ClaimOutcome::Violated { counterexample },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use crate::semantics::eval;
    use shelley_regular::{parse_regex, Alphabet};
    use std::sync::Arc;

    #[test]
    fn claim_holds_on_conforming_model() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        // Model: b.open then a.open (conforming).
        let model_re = parse_regex("b.open ; a.open", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let model = Nfa::from_regex(&model_re, ab);
        assert!(check_claim(&model, &claim, &BTreeSet::new()).holds());
    }

    #[test]
    fn claim_violated_with_shortest_counterexample() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        // Model: either the long conforming trace or a short violating one.
        let model_re = parse_regex("(b.open ; a.open) + (a.test ; a.open)", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let model = Nfa::from_regex(&model_re, ab.clone());
        match check_claim(&model, &claim, &BTreeSet::new()) {
            ClaimOutcome::Violated { counterexample } => {
                assert_eq!(ab.render_word(&counterexample), "a.test, a.open");
                assert!(!eval(&claim, &counterexample));
            }
            ClaimOutcome::Holds => panic!("claim should be violated"),
        }
    }

    #[test]
    fn markers_are_invisible_to_the_claim() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("G !fail", &mut ab).unwrap();
        // Model with an interleaved marker `op` that must not confuse the
        // monitor: op ; ok is fine, op ; fail is not.
        let ok_model = parse_regex("op ; ok", &mut ab).unwrap();
        let bad_model = parse_regex("op ; fail", &mut ab).unwrap();
        let op = ab.lookup("op").unwrap();
        let fail = ab.lookup("fail").unwrap();
        let ab = Arc::new(ab);
        let markers = BTreeSet::from([op]);
        assert!(check_claim(&Nfa::from_regex(&ok_model, ab.clone()), &claim, &markers).holds());
        match check_claim(&Nfa::from_regex(&bad_model, ab), &claim, &markers) {
            ClaimOutcome::Violated { counterexample } => {
                // Marker preserved in the reported trace.
                assert_eq!(counterexample, vec![op, fail]);
            }
            ClaimOutcome::Holds => panic!("should be violated"),
        }
    }

    #[test]
    fn empty_model_satisfies_everything() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("F done", &mut ab).unwrap();
        let empty = parse_regex("void", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let model = Nfa::from_regex(&empty, ab);
        assert!(check_claim(&model, &claim, &BTreeSet::new()).holds());
    }

    #[test]
    fn lazy_check_matches_eager_oracle() {
        // The eager oracle: compile the ¬φ monitor DFA up front, then run
        // the same searches. Counterexamples must be byte-identical.
        let mut ab = Alphabet::new();
        let claim = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        let model_re =
            parse_regex("(b.open ; a.open) + (a.test ; a.open) + a.open", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let model = Nfa::from_regex(&model_re, ab.clone());
        let eager_bad = crate::automaton::to_dfa(&claim.negate(), ab.clone());
        let eager =
            match shelley_regular::ops::shortest_joint_word(&model, &eager_bad, &BTreeSet::new()) {
                None => ClaimOutcome::Holds,
                Some(counterexample) => ClaimOutcome::Violated { counterexample },
            };
        assert_eq!(check_claim(&model, &claim, &BTreeSet::new()), eager);

        let dfa_model = Dfa::from_nfa(&model);
        let eager_dfa = match dfa_model.intersect(&eager_bad).shortest_accepted() {
            None => ClaimOutcome::Holds,
            Some(counterexample) => ClaimOutcome::Violated { counterexample },
        };
        assert_eq!(check_claim_dfa(&dfa_model, &claim), eager_dfa);
    }

    #[test]
    fn dfa_variant_agrees() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("F b", &mut ab).unwrap();
        let model_re = parse_regex("a ; a", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let nfa = Nfa::from_regex(&model_re, ab);
        let dfa = Dfa::from_nfa(&nfa);
        let r1 = check_claim(&nfa, &claim, &BTreeSet::new());
        let r2 = check_claim_dfa(&dfa, &claim);
        assert_eq!(r1.holds(), r2.holds());
        assert!(!r1.holds());
    }
}
