//! Semantics-preserving formula simplification.
//!
//! Claims written by hand (and monitors produced by progression) often
//! contain redundancy; [`simplify`] applies a terminating set of
//! equivalences bottom-up until a fixpoint:
//!
//! * idempotence of `U`/`R` on equal arguments (`φ U φ ≡ nonempty ∧ φ`,
//!   `φ R φ ≡ empty ∨ φ` — the guards account for the empty trace);
//! * `F F φ ≡ F φ`, `G G φ ≡ G φ`;
//! * `F (φ ∨ ψ) ≡ F φ ∨ F ψ`, `G (φ ∧ ψ) ≡ G φ ∧ G ψ`;
//! * `X (φ ∧ ψ) ≡ X φ ∧ X ψ`, `X[!] (φ ∨ ψ) ≡ X[!] φ ∨ X[!] ψ`;
//! * boolean absorption `φ ∨ (φ ∧ ψ) ≡ φ` and `φ ∧ (φ ∨ ψ) ≡ φ`;
//! * complementary literals: `a ∧ ¬a ≡ false` and `a ∨ ¬a ≡ true` (the
//!   latter holds even on the empty remainder because `¬a` is the exact
//!   complement of `a`, see [`Formula::NotAtom`]);
//! * constant folding (already ensured by the smart constructors).
//!
//! Every rewrite is checked equivalence-preserving by the property suite.

use crate::syntax::Formula;

/// Simplifies `f` while preserving its language exactly.
///
/// Distribution rules (`F` over `∨`, `G` over `∧`, `X` over `∧`) may grow
/// the AST by a node or two, but they expose nested redundancy that the
/// collapsing rules then remove; the fixpoint loop terminates because each
/// pass either shrinks the formula or pushes temporal operators strictly
/// closer to the leaves.
pub fn simplify(f: &Formula) -> Formula {
    let mut current = f.clone();
    loop {
        let next = pass(&current);
        if next == current {
            return next;
        }
        current = next;
    }
}

fn pass(f: &Formula) -> Formula {
    match f {
        Formula::True
        | Formula::False
        | Formula::Empty
        | Formula::Nonempty
        | Formula::Atom(_)
        | Formula::NotAtom(_) => f.clone(),
        Formula::And(items) => {
            let simplified: Vec<Formula> = items.iter().map(pass).collect();
            // a ∧ ¬a ≡ false (an event cannot both be and not be `a`;
            // on the empty remainder `a` already fails).
            for item in &simplified {
                if let Formula::Atom(s) = item {
                    if simplified.contains(&Formula::NotAtom(*s)) {
                        return Formula::False;
                    }
                }
                if *item == Formula::Empty && simplified.contains(&Formula::Nonempty) {
                    return Formula::False;
                }
            }
            // Absorption: drop disjunctions that contain another conjunct.
            let kept: Vec<Formula> = simplified
                .iter()
                .filter(|item| match item {
                    Formula::Or(disjuncts) => !disjuncts
                        .iter()
                        .any(|d| simplified.iter().any(|other| other == d)),
                    _ => true,
                })
                .cloned()
                .collect();
            Formula::and_all(kept)
        }
        Formula::Or(items) => {
            let simplified: Vec<Formula> = items.iter().map(pass).collect();
            // a ∨ ¬a ≡ true (¬a covers the empty remainder too).
            for item in &simplified {
                if let Formula::Atom(s) = item {
                    if simplified.contains(&Formula::NotAtom(*s)) {
                        return Formula::True;
                    }
                }
                if *item == Formula::Empty && simplified.contains(&Formula::Nonempty) {
                    return Formula::True;
                }
            }
            let kept: Vec<Formula> = simplified
                .iter()
                .filter(|item| match item {
                    Formula::And(conjuncts) => !conjuncts
                        .iter()
                        .any(|c| simplified.iter().any(|other| other == c)),
                    _ => true,
                })
                .cloned()
                .collect();
            Formula::or_all(kept)
        }
        Formula::Next(g) => match pass(g) {
            // X (φ ∧ ψ) ≡ X φ ∧ X ψ.
            Formula::And(items) => Formula::and_all(items.into_iter().map(Formula::next)),
            g => Formula::next(g),
        },
        Formula::WeakNext(g) => match pass(g) {
            // X[!] (φ ∨ ψ) ≡ X[!] φ ∨ X[!] ψ.
            Formula::Or(items) => Formula::or_all(items.into_iter().map(Formula::weak_next)),
            g => Formula::weak_next(g),
        },
        Formula::Until(a, b) => {
            let a = pass(a);
            let b = pass(b);
            // φ U φ ≡ nonempty ∧ φ (U always needs a position; on the
            // empty trace U is false even when φ holds vacuously).
            if a == b {
                return Formula::and(Formula::Nonempty, a);
            }
            // F-specific rules (F φ = true U φ).
            if a == Formula::True {
                return match b {
                    // F F ψ ≡ F ψ.
                    Formula::Until(inner_a, inner_b) if *inner_a == Formula::True => {
                        Formula::until(Formula::True, *inner_b)
                    }
                    // F (φ ∨ ψ) ≡ F φ ∨ F ψ.
                    Formula::Or(items) => {
                        Formula::or_all(items.into_iter().map(Formula::eventually))
                    }
                    b => Formula::eventually(b),
                };
            }
            // φ U (φ U ψ) ≡ φ U ψ.
            if let Formula::Until(inner_a, inner_b) = &b {
                if **inner_a == a {
                    return Formula::until(a, (**inner_b).clone());
                }
            }
            Formula::until(a, b)
        }
        Formula::Release(a, b) => {
            let a = pass(a);
            let b = pass(b);
            // φ R φ ≡ empty ∨ φ (R is vacuously true on the empty trace).
            if a == b {
                return Formula::or(Formula::Empty, a);
            }
            // G-specific rules (G φ = false R φ).
            if a == Formula::False {
                return match b {
                    // G G ψ ≡ G ψ.
                    Formula::Release(inner_a, inner_b) if *inner_a == Formula::False => {
                        Formula::release(Formula::False, *inner_b)
                    }
                    // G (φ ∧ ψ) ≡ G φ ∧ G ψ.
                    Formula::And(items) => {
                        Formula::and_all(items.into_iter().map(Formula::globally))
                    }
                    b => Formula::globally(b),
                };
            }
            // φ R (φ R ψ) ≡ φ R ψ.
            if let Formula::Release(inner_a, inner_b) = &b {
                if **inner_a == a {
                    return Formula::release(a, (**inner_b).clone());
                }
            }
            Formula::release(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::eval;
    use shelley_regular::Alphabet;

    fn ab2() -> (Alphabet, shelley_regular::Symbol, shelley_regular::Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        (ab, a, b)
    }

    #[test]
    fn ff_collapses() {
        let (_, a, _) = ab2();
        let f = Formula::eventually(Formula::eventually(Formula::atom(a)));
        assert_eq!(simplify(&f), Formula::eventually(Formula::atom(a)));
    }

    #[test]
    fn gg_collapses() {
        let (_, a, _) = ab2();
        let f = Formula::globally(Formula::globally(Formula::atom(a)));
        assert_eq!(simplify(&f), Formula::globally(Formula::atom(a)));
    }

    #[test]
    fn until_idempotence() {
        let (_, a, _) = ab2();
        let f = Formula::until(Formula::atom(a), Formula::atom(a));
        // φ U φ ≡ nonempty ∧ φ; for an atom the nonempty guard is implied,
        // but the rewrite keeps it (it is semantically equal).
        let s = simplify(&f);
        for w in [vec![], vec![a]] {
            assert_eq!(
                crate::semantics::eval(&f, &w),
                crate::semantics::eval(&s, &w)
            );
        }
    }

    #[test]
    fn complementary_literals() {
        let (_, a, _) = ab2();
        let conj = Formula::and(Formula::atom(a), Formula::NotAtom(a));
        assert_eq!(simplify(&conj), Formula::False);
        let disj = Formula::or(Formula::atom(a), Formula::NotAtom(a));
        assert_eq!(simplify(&disj), Formula::True);
    }

    #[test]
    fn absorption() {
        let (_, a, b) = ab2();
        let f = Formula::or(
            Formula::atom(a),
            Formula::and(Formula::atom(a), Formula::atom(b)),
        );
        assert_eq!(simplify(&f), Formula::atom(a));
    }

    #[test]
    fn f_distributes_over_or() {
        let (_, a, b) = ab2();
        let f = Formula::eventually(Formula::or(Formula::atom(a), Formula::atom(b)));
        let s = simplify(&f);
        assert_eq!(
            s,
            Formula::or(
                Formula::eventually(Formula::atom(a)),
                Formula::eventually(Formula::atom(b))
            )
        );
    }

    #[test]
    fn simplification_preserves_semantics_on_samples() {
        let (_, a, b) = ab2();
        let formulas = [
            Formula::eventually(Formula::eventually(Formula::atom(a))),
            Formula::globally(Formula::and(
                Formula::NotAtom(a),
                Formula::or(Formula::atom(b), Formula::NotAtom(a)),
            )),
            Formula::until(
                Formula::atom(a),
                Formula::until(Formula::atom(a), Formula::atom(b)),
            ),
            Formula::next(Formula::and(Formula::atom(a), Formula::atom(b))),
            Formula::weak_until(Formula::NotAtom(a), Formula::atom(b)),
        ];
        let words: Vec<Vec<shelley_regular::Symbol>> = vec![
            vec![],
            vec![a],
            vec![b],
            vec![a, b],
            vec![b, a, b],
            vec![a, a, a],
        ];
        for f in &formulas {
            let s = simplify(f);
            for w in &words {
                assert_eq!(eval(f, w), eval(&s, w), "{f:?} vs {s:?} on {w:?}");
            }
        }
    }
}
