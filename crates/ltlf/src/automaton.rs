//! LTLf-to-DFA compilation via progression quotienting.
//!
//! States are normalized formulas; the transition on event `e` is
//! [`progress`](crate::progress); a state accepts iff
//! [`accepts_empty`](crate::accepts_empty). ACI normalization of `∧`/`∨`
//! (see [`Formula`]) keeps the reachable state space finite.
//!
//! The resulting automaton is a *monitor*: it accepts exactly the finite
//! traces satisfying the formula, so model checking `L(M) ⊆ L(φ)` reduces
//! to emptiness of `L(M) ∩ L(¬φ)` — the paper's future-work observation
//! that Shelley can work directly with regular languages instead of
//! encoding into ω-regular NuSMV models.

use crate::semantics::{accepts_empty, progress};
use crate::syntax::Formula;
use shelley_regular::{Alphabet, Dfa, Symbol};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Canonicalizes a progression state.
///
/// Progression rebuilds boolean structure around the temporal *closure*
/// formulas (the `U`/`R`/`X` subterms of the original claim), and two
/// semantically equal states can differ syntactically — left alone, the
/// state space would grow without bound. Converting every state to DNF
/// over closure literals (with absorption and complementary-literal
/// pruning) makes equality semantic enough for the quotient to stay
/// finite: literals always belong to the finite closure of the original
/// formula, so there are finitely many DNFs.
///
/// DNF conversion is exponential in the worst case, which is acceptable at
/// claim size (a few operators).
fn canonicalize(f: Formula) -> Formula {
    match &f {
        Formula::And(_) | Formula::Or(_) => {}
        _ => return f,
    }
    let clauses = dnf(&f);
    // Absorption: drop clauses that are supersets of another clause.
    let mut kept: Vec<&BTreeSet<Formula>> = Vec::new();
    for c in &clauses {
        if !clauses.iter().any(|d| d != c && d.is_subset(c)) {
            kept.push(c);
        }
    }
    Formula::or_all(
        kept.into_iter()
            .map(|c| Formula::and_all(c.iter().cloned())),
    )
}

/// DNF over non-boolean literals. Clauses with complementary or mutually
/// exclusive (distinct `Atom`) literals are dropped.
fn dnf(f: &Formula) -> BTreeSet<BTreeSet<Formula>> {
    match f {
        Formula::Or(items) => items.iter().flat_map(dnf).collect(),
        Formula::And(items) => {
            let mut acc: BTreeSet<BTreeSet<Formula>> = BTreeSet::from([BTreeSet::new()]);
            for item in items {
                let item_dnf = dnf(item);
                let mut next = BTreeSet::new();
                for clause in &acc {
                    for extra in &item_dnf {
                        let mut merged = clause.clone();
                        merged.extend(extra.iter().cloned());
                        if clause_consistent(&merged) {
                            next.insert(merged);
                        }
                    }
                }
                acc = next;
            }
            acc
        }
        lit => BTreeSet::from([BTreeSet::from([lit.clone()])]),
    }
}

/// Cheap unsatisfiability filter for a conjunction of literals.
fn clause_consistent(clause: &BTreeSet<Formula>) -> bool {
    let mut atom: Option<Symbol> = None;
    for lit in clause {
        match lit {
            // Two distinct event atoms can never hold at the same position.
            Formula::Atom(s) => {
                if let Some(prev) = atom {
                    if prev != *s {
                        return false;
                    }
                }
                atom = Some(*s);
            }
            Formula::NotAtom(s) if clause.contains(&Formula::Atom(*s)) => {
                return false;
            }
            Formula::Empty if clause.contains(&Formula::Nonempty) => {
                return false;
            }
            _ => {}
        }
    }
    if let Some(a) = atom {
        if clause.contains(&Formula::NotAtom(a)) || clause.contains(&Formula::Empty) {
            return false;
        }
    }
    true
}

/// Compiles `formula` into a complete DFA over `alphabet` accepting exactly
/// the satisfying traces.
///
/// Events mentioned by the formula but absent from `alphabet` are
/// impossible; callers should intern the formula's atoms into the alphabet
/// first (the claim parser does this automatically).
///
/// # Examples
///
/// ```
/// use shelley_ltlf::{parse_formula, to_dfa};
/// use shelley_regular::Alphabet;
/// use std::sync::Arc;
///
/// let mut ab = Alphabet::new();
/// let f = parse_formula("(!a.open) W b.open", &mut ab)?;
/// let a_open = ab.lookup("a.open").unwrap();
/// let b_open = ab.lookup("b.open").unwrap();
/// let dfa = to_dfa(&f, Arc::new(ab));
/// assert!(dfa.accepts(&[]));
/// assert!(dfa.accepts(&[b_open, a_open]));
/// assert!(!dfa.accepts(&[a_open]));
/// # Ok::<(), shelley_ltlf::ParseFormulaError>(())
/// ```
pub fn to_dfa(formula: &Formula, alphabet: Arc<Alphabet>) -> Dfa {
    let mut index: HashMap<Formula, usize> = HashMap::new();
    let mut states: Vec<Formula> = Vec::new();
    let mut table: Vec<Vec<usize>> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let nsyms = alphabet.len();

    let intern = |f: Formula,
                  states: &mut Vec<Formula>,
                  table: &mut Vec<Vec<usize>>,
                  accepting: &mut Vec<bool>,
                  index: &mut HashMap<Formula, usize>|
     -> usize {
        if let Some(&q) = index.get(&f) {
            return q;
        }
        let q = states.len();
        accepting.push(accepts_empty(&f));
        table.push(vec![usize::MAX; nsyms]);
        index.insert(f.clone(), q);
        states.push(f);
        q
    };

    let start = intern(
        canonicalize(formula.clone()),
        &mut states,
        &mut table,
        &mut accepting,
        &mut index,
    );
    let mut queue = vec![start];
    while let Some(q) = queue.pop() {
        for s in 0..nsyms {
            if table[q][s] != usize::MAX {
                continue;
            }
            let next = canonicalize(progress(&states[q], Symbol::from_index(s)));
            let was = states.len();
            let dst = intern(next, &mut states, &mut table, &mut accepting, &mut index);
            table[q][s] = dst;
            if dst == was {
                queue.push(dst);
            }
        }
    }
    Dfa::from_parts(alphabet, table, start, accepting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::eval;

    fn setup() -> (Arc<Alphabet>, Symbol, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        (Arc::new(ab), a, b, c)
    }

    #[test]
    fn dfa_agrees_with_eval_on_samples() {
        let (ab, a, b, c) = setup();
        let formulas = [
            Formula::globally(Formula::NotAtom(a)),
            Formula::eventually(Formula::atom(b)),
            Formula::weak_until(Formula::NotAtom(a), Formula::atom(b)),
            Formula::until(
                Formula::or(Formula::atom(a), Formula::atom(c)),
                Formula::atom(b),
            ),
            Formula::next(Formula::atom(c)),
            Formula::and(
                Formula::eventually(Formula::atom(a)),
                Formula::globally(Formula::NotAtom(b)),
            ),
        ];
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![a],
            vec![b],
            vec![c],
            vec![a, b],
            vec![b, a],
            vec![c, b, a],
            vec![a, a, b, c],
            vec![c, c, c],
        ];
        for f in &formulas {
            let dfa = to_dfa(f, ab.clone());
            for w in &words {
                assert_eq!(dfa.accepts(w), eval(f, w), "formula {f:?} word {w:?}");
            }
        }
    }

    #[test]
    fn monitor_of_negation_is_complement() {
        let (ab, a, b, _) = setup();
        let f = Formula::weak_until(Formula::NotAtom(a), Formula::atom(b));
        let pos = to_dfa(&f, ab.clone());
        let neg = to_dfa(&f.negate(), ab.clone());
        assert!(pos.equivalent(&neg.complement()).is_ok());
    }

    #[test]
    fn automaton_is_small_for_simple_claims() {
        let (ab, a, b, _) = setup();
        let f = Formula::weak_until(Formula::NotAtom(a), Formula::atom(b));
        let dfa = to_dfa(&f, ab).minimize();
        // !a W b has a 3-state minimal monitor (waiting / satisfied / failed).
        assert!(dfa.num_states() <= 3, "{} states", dfa.num_states());
    }

    #[test]
    fn true_and_false_monitors() {
        let (ab, a, _, _) = setup();
        let all = to_dfa(&Formula::tt(), ab.clone());
        assert!(all.accepts(&[]));
        assert!(all.accepts(&[a, a]));
        let none = to_dfa(&Formula::ff(), ab);
        assert!(none.is_empty());
    }
}
