//! LTLf monitors via progression quotienting.
//!
//! States are normalized formulas; the transition on event `e` is
//! [`progress`](crate::progress); a state accepts iff
//! [`accepts_empty`](crate::accepts_empty). ACI normalization of `∧`/`∨`
//! (see [`Formula`]) keeps the reachable state space finite.
//!
//! The monitor accepts exactly the finite traces satisfying the formula, so
//! model checking `L(M) ⊆ L(φ)` reduces to emptiness of `L(M) ∩ L(¬φ)` —
//! the paper's future-work observation that Shelley can work directly with
//! regular languages instead of encoding into ω-regular NuSMV models.
//!
//! Since the language-view refactor the monitor is primarily a *lazy* view:
//! [`MonitorView`] implements [`Lang`] directly by progression, so checks
//! explore only the formula states their model actually reaches. Compiling
//! the full DFA up front ([`to_dfa`], worst-case exponential in the
//! alphabet) survives as the [`materialize`](MonitorView::materialize)
//! escape hatch for export and as the oracle in differential tests.

use crate::semantics::{accepts_empty, progress};
use crate::syntax::Formula;
use shelley_regular::lang::{self, Lang};
use shelley_regular::{Alphabet, Dfa, Symbol};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Canonicalizes a progression state.
///
/// Progression rebuilds boolean structure around the temporal *closure*
/// formulas (the `U`/`R`/`X` subterms of the original claim), and two
/// semantically equal states can differ syntactically — left alone, the
/// state space would grow without bound. Converting every state to DNF
/// over closure literals (with absorption and complementary-literal
/// pruning) makes equality semantic enough for the quotient to stay
/// finite: literals always belong to the finite closure of the original
/// formula, so there are finitely many DNFs.
///
/// DNF conversion is exponential in the worst case, which is acceptable at
/// claim size (a few operators).
fn canonicalize(f: Formula) -> Formula {
    match &f {
        Formula::And(_) | Formula::Or(_) => {}
        _ => return f,
    }
    let clauses = dnf(&f);
    // Absorption: drop clauses that are supersets of another clause.
    let mut kept: Vec<&BTreeSet<Formula>> = Vec::new();
    for c in &clauses {
        if !clauses.iter().any(|d| d != c && d.is_subset(c)) {
            kept.push(c);
        }
    }
    Formula::or_all(
        kept.into_iter()
            .map(|c| Formula::and_all(c.iter().cloned())),
    )
}

/// DNF over non-boolean literals. Clauses with complementary or mutually
/// exclusive (distinct `Atom`) literals are dropped.
fn dnf(f: &Formula) -> BTreeSet<BTreeSet<Formula>> {
    match f {
        Formula::Or(items) => items.iter().flat_map(dnf).collect(),
        Formula::And(items) => {
            let mut acc: BTreeSet<BTreeSet<Formula>> = BTreeSet::from([BTreeSet::new()]);
            for item in items {
                let item_dnf = dnf(item);
                let mut next = BTreeSet::new();
                for clause in &acc {
                    for extra in &item_dnf {
                        let mut merged = clause.clone();
                        merged.extend(extra.iter().cloned());
                        if clause_consistent(&merged) {
                            next.insert(merged);
                        }
                    }
                }
                acc = next;
            }
            acc
        }
        lit => BTreeSet::from([BTreeSet::from([lit.clone()])]),
    }
}

/// Cheap unsatisfiability filter for a conjunction of literals.
fn clause_consistent(clause: &BTreeSet<Formula>) -> bool {
    let mut atom: Option<Symbol> = None;
    for lit in clause {
        match lit {
            // Two distinct event atoms can never hold at the same position.
            Formula::Atom(s) => {
                if let Some(prev) = atom {
                    if prev != *s {
                        return false;
                    }
                }
                atom = Some(*s);
            }
            Formula::NotAtom(s) if clause.contains(&Formula::Atom(*s)) => {
                return false;
            }
            Formula::Empty if clause.contains(&Formula::Nonempty) => {
                return false;
            }
            _ => {}
        }
    }
    if let Some(a) = atom {
        if clause.contains(&Formula::NotAtom(a)) || clause.contains(&Formula::Empty) {
            return false;
        }
    }
    true
}

/// A lazy LTLf monitor: the formula's language as a [`Lang`] view.
///
/// States *are* canonicalized formulas; stepping progresses the formula by
/// one event and re-canonicalizes. Nothing is compiled up front — a check
/// that only drives the monitor along its model's reachable traces touches
/// only those formula states, while the full monitor DFA can be exponential
/// in the alphabet.
///
/// [`materialize`](Self::materialize) (or the [`to_dfa`] wrapper) builds
/// the complete DFA when an export actually needs it.
///
/// # Examples
///
/// ```
/// use shelley_ltlf::{parse_formula, MonitorView};
/// use shelley_regular::lang::Lang;
/// use shelley_regular::Alphabet;
/// use std::sync::Arc;
///
/// let mut ab = Alphabet::new();
/// let f = parse_formula("G !fail", &mut ab)?;
/// let fail = ab.lookup("fail").unwrap();
/// let view = MonitorView::new(&f, Arc::new(ab));
/// let mut state = view.start();
/// assert!(view.is_accepting(&state));
/// state = view.step(&state, fail);
/// assert!(!view.is_accepting(&state));
/// # Ok::<(), shelley_ltlf::ParseFormulaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MonitorView {
    start: Formula,
    alphabet: Arc<Alphabet>,
}

impl MonitorView {
    /// A lazy monitor for `formula` over `alphabet`.
    ///
    /// Events mentioned by the formula but absent from `alphabet` are
    /// impossible; callers should intern the formula's atoms into the
    /// alphabet first (the claim parser does this automatically).
    pub fn new(formula: &Formula, alphabet: Arc<Alphabet>) -> Self {
        MonitorView {
            start: canonicalize(formula.clone()),
            alphabet,
        }
    }

    /// Compiles the complete monitor DFA (the eager escape hatch).
    pub fn materialize(&self) -> Dfa {
        lang::materialize(self)
    }
}

impl Lang for MonitorView {
    type State = Formula;

    fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    fn start(&self) -> Formula {
        self.start.clone()
    }

    fn step(&self, state: &Formula, symbol: Symbol) -> Formula {
        canonicalize(progress(state, symbol))
    }

    fn is_accepting(&self, state: &Formula) -> bool {
        accepts_empty(state)
    }
}

/// Compiles `formula` into a complete DFA over `alphabet` accepting exactly
/// the satisfying traces.
///
/// This is [`MonitorView::materialize`] — worst-case exponential in the
/// alphabet. Checks should drive the [`MonitorView`] lazily instead; the
/// DFA form exists for export (diagrams, NuSMV) and differential testing.
///
/// # Examples
///
/// ```
/// use shelley_ltlf::{parse_formula, to_dfa};
/// use shelley_regular::Alphabet;
/// use std::sync::Arc;
///
/// let mut ab = Alphabet::new();
/// let f = parse_formula("(!a.open) W b.open", &mut ab)?;
/// let a_open = ab.lookup("a.open").unwrap();
/// let b_open = ab.lookup("b.open").unwrap();
/// let dfa = to_dfa(&f, Arc::new(ab));
/// assert!(dfa.accepts(&[]));
/// assert!(dfa.accepts(&[b_open, a_open]));
/// assert!(!dfa.accepts(&[a_open]));
/// # Ok::<(), shelley_ltlf::ParseFormulaError>(())
/// ```
pub fn to_dfa(formula: &Formula, alphabet: Arc<Alphabet>) -> Dfa {
    MonitorView::new(formula, alphabet).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::eval;

    fn setup() -> (Arc<Alphabet>, Symbol, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        (Arc::new(ab), a, b, c)
    }

    #[test]
    fn dfa_agrees_with_eval_on_samples() {
        let (ab, a, b, c) = setup();
        let formulas = [
            Formula::globally(Formula::NotAtom(a)),
            Formula::eventually(Formula::atom(b)),
            Formula::weak_until(Formula::NotAtom(a), Formula::atom(b)),
            Formula::until(
                Formula::or(Formula::atom(a), Formula::atom(c)),
                Formula::atom(b),
            ),
            Formula::next(Formula::atom(c)),
            Formula::and(
                Formula::eventually(Formula::atom(a)),
                Formula::globally(Formula::NotAtom(b)),
            ),
        ];
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![a],
            vec![b],
            vec![c],
            vec![a, b],
            vec![b, a],
            vec![c, b, a],
            vec![a, a, b, c],
            vec![c, c, c],
        ];
        for f in &formulas {
            let dfa = to_dfa(f, ab.clone());
            for w in &words {
                assert_eq!(dfa.accepts(w), eval(f, w), "formula {f:?} word {w:?}");
            }
        }
    }

    #[test]
    fn monitor_of_negation_is_complement() {
        let (ab, a, b, _) = setup();
        let f = Formula::weak_until(Formula::NotAtom(a), Formula::atom(b));
        let pos = to_dfa(&f, ab.clone());
        let neg = to_dfa(&f.negate(), ab.clone());
        assert!(pos.equivalent(&neg.complement()).is_ok());
    }

    #[test]
    fn automaton_is_small_for_simple_claims() {
        let (ab, a, b, _) = setup();
        let f = Formula::weak_until(Formula::NotAtom(a), Formula::atom(b));
        let dfa = to_dfa(&f, ab).minimize();
        // !a W b has a 3-state minimal monitor (waiting / satisfied / failed).
        assert!(dfa.num_states() <= 3, "{} states", dfa.num_states());
    }

    #[test]
    fn view_agrees_with_materialized_dfa() {
        let (ab, a, b, c) = setup();
        let f = Formula::until(
            Formula::or(Formula::atom(a), Formula::atom(c)),
            Formula::atom(b),
        );
        let view = MonitorView::new(&f, ab.clone());
        let dfa = view.materialize();
        for w in [
            vec![],
            vec![a],
            vec![a, b],
            vec![c, b],
            vec![b, a],
            vec![a, c, b],
        ] {
            let mut state = view.start();
            for &s in &w {
                state = view.step(&state, s);
            }
            assert_eq!(view.is_accepting(&state), dfa.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn true_and_false_monitors() {
        let (ab, a, _, _) = setup();
        let all = to_dfa(&Formula::tt(), ab.clone());
        assert!(all.accepts(&[]));
        assert!(all.accepts(&[a, a]));
        let none = to_dfa(&Formula::ff(), ab);
        assert!(none.is_empty());
    }
}
