//! Parser for Shelley claim formulas.
//!
//! Grammar (loosest to tightest precedence; `U`, `W`, `R` are
//! right-associative):
//!
//! ```text
//! formula ::= or ('->' formula)?
//! or      ::= and (('|' | '||' | 'or') and)*
//! and     ::= until (('&' | '&&' | 'and') until)*
//! until   ::= unary (('U' | 'W' | 'R') until)?
//! unary   ::= ('!' | 'not') unary
//!           | 'X' '[!]'? unary | 'F' unary | 'G' unary
//!           | 'true' | 'false' | ATOM | '(' formula ')'
//! ATOM    ::= [A-Za-z_][A-Za-z0-9_.]*   (not a reserved operator name)
//! ```
//!
//! Atoms are event names (`a.open`) interned into the supplied alphabet.

use crate::syntax::Formula;
use shelley_regular::Alphabet;
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_formula`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "claim parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseFormulaError {}

/// Parses a claim formula, interning its atoms into `alphabet`.
///
/// # Errors
///
/// Returns [`ParseFormulaError`] on malformed syntax.
///
/// # Examples
///
/// The claim of Listing 2.2:
///
/// ```
/// use shelley_ltlf::{parse_formula, eval};
/// use shelley_regular::Alphabet;
///
/// let mut ab = Alphabet::new();
/// let f = parse_formula("(!a.open) W b.open", &mut ab)?;
/// let a_open = ab.lookup("a.open").unwrap();
/// let b_open = ab.lookup("b.open").unwrap();
/// assert!(!eval(&f, &[a_open, b_open]));
/// assert!(eval(&f, &[b_open, a_open]));
/// # Ok::<(), shelley_ltlf::ParseFormulaError>(())
/// ```
pub fn parse_formula(input: &str, alphabet: &mut Alphabet) -> Result<Formula, ParseFormulaError> {
    let mut p = Parser {
        input,
        chars: input.char_indices().collect(),
        pos: 0,
        alphabet,
    };
    p.skip_ws();
    let f = p.formula()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    input: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.input.len(), |&(o, _)| o)
    }

    fn error(&self, message: &str) -> ParseFormulaError {
        ParseFormulaError {
            offset: self.offset(),
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// Peeks the next identifier-like word without consuming it.
    fn peek_word(&self) -> Option<String> {
        let c = self.peek()?;
        if !(c.is_ascii_alphabetic() || c == '_') {
            return None;
        }
        let mut out = String::new();
        let mut i = self.pos;
        while let Some(&(_, c)) = self.chars.get(i) {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                out.push(c);
                i += 1;
            } else {
                break;
            }
        }
        Some(out)
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.peek_word().as_deref() == Some(word) {
            self.pos += word.chars().count();
            true
        } else {
            false
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let left = self.or()?;
        self.skip_ws();
        if self.peek() == Some('-') && self.chars.get(self.pos + 1).map(|&(_, c)| c) == Some('>') {
            self.pos += 2;
            self.skip_ws();
            let right = self.formula()?;
            return Ok(Formula::implies(left, right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut left = self.and()?;
        loop {
            self.skip_ws();
            let matched = if self.peek() == Some('|') {
                self.bump();
                if self.peek() == Some('|') {
                    self.bump();
                }
                true
            } else {
                self.eat_word("or")
            };
            if !matched {
                return Ok(left);
            }
            self.skip_ws();
            let right = self.and()?;
            left = Formula::or(left, right);
        }
    }

    fn and(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut left = self.until()?;
        loop {
            self.skip_ws();
            let matched = if self.peek() == Some('&') {
                self.bump();
                if self.peek() == Some('&') {
                    self.bump();
                }
                true
            } else {
                self.eat_word("and")
            };
            if !matched {
                return Ok(left);
            }
            self.skip_ws();
            let right = self.until()?;
            left = Formula::and(left, right);
        }
    }

    fn until(&mut self) -> Result<Formula, ParseFormulaError> {
        let left = self.unary()?;
        self.skip_ws();
        if self.eat_word("U") {
            self.skip_ws();
            let right = self.until()?;
            return Ok(Formula::until(left, right));
        }
        if self.eat_word("W") {
            self.skip_ws();
            let right = self.until()?;
            return Ok(Formula::weak_until(left, right));
        }
        if self.eat_word("R") {
            self.skip_ws();
            let right = self.until()?;
            return Ok(Formula::release(left, right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula, ParseFormulaError> {
        self.skip_ws();
        if self.peek() == Some('!') {
            self.bump();
            let f = self.unary()?;
            return Ok(f.negate());
        }
        if self.eat_word("not") {
            let f = self.unary()?;
            return Ok(f.negate());
        }
        if self.eat_word("X") {
            self.skip_ws();
            // X[!] is weak next (NuSMV-flavored spelling).
            if self.peek() == Some('[') {
                let save = self.pos;
                self.bump();
                if self.peek() == Some('!') {
                    self.bump();
                    if self.peek() == Some(']') {
                        self.bump();
                        let f = self.unary()?;
                        return Ok(Formula::weak_next(f));
                    }
                }
                self.pos = save;
            }
            let f = self.unary()?;
            return Ok(Formula::next(f));
        }
        if self.eat_word("F") {
            let f = self.unary()?;
            return Ok(Formula::eventually(f));
        }
        if self.eat_word("G") {
            let f = self.unary()?;
            return Ok(Formula::globally(f));
        }
        if self.eat_word("true") {
            return Ok(Formula::tt());
        }
        if self.eat_word("false") {
            return Ok(Formula::ff());
        }
        if self.peek() == Some('(') {
            self.bump();
            let f = self.formula()?;
            self.skip_ws();
            if self.peek() != Some(')') {
                return Err(self.error("expected ')'"));
            }
            self.bump();
            return Ok(f);
        }
        match self.peek_word() {
            Some(word) => {
                if matches!(
                    word.as_str(),
                    "U" | "W" | "R" | "X" | "F" | "G" | "not" | "and" | "or"
                ) {
                    return Err(self.error(&format!(
                        "`{word}` is a reserved operator, not an event name"
                    )));
                }
                self.pos += word.chars().count();
                Ok(Formula::atom(self.alphabet.intern(&word)))
            }
            None => Err(self.error("expected a formula")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::eval;

    #[test]
    fn parses_paper_claim() {
        let mut ab = Alphabet::new();
        let f = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        let a = ab.lookup("a.open").unwrap();
        let b = ab.lookup("b.open").unwrap();
        assert!(eval(&f, &[]));
        assert!(eval(&f, &[b]));
        assert!(eval(&f, &[b, a]));
        assert!(!eval(&f, &[a]));
        assert!(!eval(&f, &[a, b]));
    }

    #[test]
    fn operator_precedence() {
        let mut ab = Alphabet::new();
        // a | b & c parses as a | (b & c).
        let f = parse_formula("a | b & c", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        assert!(eval(&f, &[a]));
        // If it parsed as (a|b) & c, [a] would fail (c doesn't hold at 0).
    }

    #[test]
    fn implication() {
        let mut ab = Alphabet::new();
        let f = parse_formula("a -> F b", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        assert!(eval(&f, &[a, b]));
        assert!(!eval(&f, &[a, a]));
        // Vacuous: first event not a.
        assert!(eval(&f, &[b]));
    }

    #[test]
    fn temporal_unaries() {
        let mut ab = Alphabet::new();
        let f = parse_formula("G (req -> X ack)", &mut ab).unwrap();
        let req = ab.lookup("req").unwrap();
        let ack = ab.lookup("ack").unwrap();
        assert!(eval(&f, &[req, ack]));
        assert!(eval(&f, &[ack, ack]));
        assert!(!eval(&f, &[req, req]));
        // req at the last position has no next: X ack fails (strong next).
        assert!(!eval(&f, &[req]));
    }

    #[test]
    fn weak_next_spelling() {
        let mut ab = Alphabet::new();
        let f = parse_formula("G (req -> X[!] ack)", &mut ab).unwrap();
        let req = ab.lookup("req").unwrap();
        // Weak next: req at the end is fine.
        assert!(eval(&f, &[req]));
    }

    #[test]
    fn right_associative_until() {
        let mut ab = Alphabet::new();
        // a U b U c = a U (b U c).
        let f = parse_formula("a U b U c", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        assert!(eval(&f, &[a, a, b, b, c]));
        assert!(eval(&f, &[c]));
        assert!(!eval(&f, &[a, a]));
    }

    #[test]
    fn atoms_may_not_be_operator_names() {
        let mut ab = Alphabet::new();
        // `U` alone is not an atom: expect a parse error.
        assert!(parse_formula("U", &mut ab).is_err());
        // But `Upper` is a valid atom.
        assert!(parse_formula("Upper", &mut ab).is_ok());
    }

    #[test]
    fn errors_report_offset() {
        let mut ab = Alphabet::new();
        let err = parse_formula("(a ", &mut ab).unwrap_err();
        assert_eq!(err.offset, 3);
        assert!(parse_formula("a )", &mut ab).is_err());
    }

    #[test]
    fn not_keyword() {
        let mut ab = Alphabet::new();
        let f = parse_formula("G not a.open", &mut ab).unwrap();
        let a = ab.lookup("a.open").unwrap();
        assert!(!eval(&f, &[a]));
        assert!(eval(&f, &[]));
    }
}
