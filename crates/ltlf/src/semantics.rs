//! Finite-trace evaluation and formula progression.
//!
//! Two independent implementations of LTLf satisfaction are provided and
//! cross-checked by the property suite:
//!
//! * [`eval`] — direct positional evaluation `w, i ⊨ φ`;
//! * [`progress`] + [`accepts_empty`] — formula progression, the basis of
//!   the automaton construction: `e·w ⊨ φ ⇔ w ⊨ progress(φ, e)` and
//!   `ε ⊨ φ ⇔ accepts_empty(φ)`.
//!
//! Traces may be empty (a constrained object may legally never be used);
//! on the empty trace `G`/`R`/weak-next hold vacuously while
//! atoms/`F`/`U`/strong-next fail.

use crate::syntax::Formula;
use shelley_regular::Symbol;

/// Whether the empty trace satisfies `f`.
pub fn accepts_empty(f: &Formula) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Empty => true,
        Formula::Nonempty => false,
        Formula::Atom(_) => false,
        // The complement of an atom: holds when there is no current event.
        Formula::NotAtom(_) => true,
        Formula::And(items) => items.iter().all(accepts_empty),
        Formula::Or(items) => items.iter().any(accepts_empty),
        Formula::Next(_) => false,
        Formula::WeakNext(_) => true,
        Formula::Until(_, _) => false,
        Formula::Release(_, _) => true,
    }
}

/// The progression of `f` through one event: the formula that the rest of
/// the trace must satisfy.
pub fn progress(f: &Formula, event: Symbol) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Empty => Formula::False,
        Formula::Nonempty => Formula::True,
        Formula::Atom(s) => {
            if *s == event {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::NotAtom(s) => {
            if *s == event {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::And(items) => Formula::and_all(items.iter().map(|g| progress(g, event))),
        Formula::Or(items) => Formula::or_all(items.iter().map(|g| progress(g, event))),
        // After consuming one event, the "next position" of the original
        // trace is the first position of the remainder — which must exist
        // for strong next and may be absent for weak next.
        Formula::Next(g) => Formula::and(Formula::Nonempty, (**g).clone()),
        Formula::WeakNext(g) => Formula::or(Formula::Empty, (**g).clone()),
        Formula::Until(a, b) => {
            // φ U ψ ≡ ψ ∨ (φ ∧ X(φ U ψ))
            Formula::or(
                progress(b, event),
                Formula::and(progress(a, event), f.clone()),
            )
        }
        Formula::Release(a, b) => {
            // φ R ψ ≡ ψ ∧ (φ ∨ X[!](φ R ψ))
            Formula::and(
                progress(b, event),
                Formula::or(progress(a, event), f.clone()),
            )
        }
    }
}

/// Decides `trace ⊨ f` by iterated progression.
pub fn eval(f: &Formula, trace: &[Symbol]) -> bool {
    let mut cur = f.clone();
    for &e in trace {
        cur = progress(&cur, e);
        // Early exit on constants.
        match cur {
            Formula::True => return true,
            Formula::False => return false,
            _ => {}
        }
    }
    accepts_empty(&cur)
}

/// Decides `trace ⊨ f` by direct positional recursion (reference
/// implementation used for differential testing).
pub fn eval_direct(f: &Formula, trace: &[Symbol]) -> bool {
    eval_at(f, trace, 0)
}

fn eval_at(f: &Formula, trace: &[Symbol], i: usize) -> bool {
    let n = trace.len();
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Empty => i >= n,
        Formula::Nonempty => i < n,
        Formula::Atom(s) => i < n && trace[i] == *s,
        Formula::NotAtom(s) => i >= n || trace[i] != *s,
        Formula::And(items) => items.iter().all(|g| eval_at(g, trace, i)),
        Formula::Or(items) => items.iter().any(|g| eval_at(g, trace, i)),
        Formula::Next(g) => i + 1 < n && eval_at(g, trace, i + 1),
        Formula::WeakNext(g) => i + 1 >= n || eval_at(g, trace, i + 1),
        Formula::Until(a, b) => {
            (i..n).any(|k| eval_at(b, trace, k) && (i..k).all(|j| eval_at(a, trace, j)))
        }
        Formula::Release(a, b) => {
            (i..n).all(|k| eval_at(b, trace, k) || (i..k).any(|j| eval_at(a, trace, j)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_regular::Alphabet;

    fn setup() -> (Alphabet, Symbol, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        (ab, a, b, c)
    }

    #[test]
    fn atoms_hold_at_first_position() {
        let (_, a, b, _) = setup();
        assert!(eval(&Formula::atom(a), &[a]));
        assert!(!eval(&Formula::atom(a), &[b]));
        assert!(!eval(&Formula::atom(a), &[]));
        // An atom constrains only position 0.
        assert!(eval(&Formula::atom(a), &[a, b, b]));
    }

    #[test]
    fn globally_and_eventually() {
        let (_, a, b, _) = setup();
        let ga = Formula::globally(Formula::atom(a));
        assert!(eval(&ga, &[]));
        assert!(eval(&ga, &[a, a, a]));
        assert!(!eval(&ga, &[a, b]));
        let fb = Formula::eventually(Formula::atom(b));
        assert!(!eval(&fb, &[]));
        assert!(eval(&fb, &[a, a, b]));
        assert!(!eval(&fb, &[a, a]));
    }

    #[test]
    fn strong_vs_weak_next() {
        let (_, a, b, _) = setup();
        let xa = Formula::next(Formula::atom(b));
        let wxa = Formula::weak_next(Formula::atom(b));
        assert!(eval(&xa, &[a, b]));
        assert!(!eval(&xa, &[a]));
        assert!(!eval(&xa, &[]));
        assert!(eval(&wxa, &[a]));
        assert!(eval(&wxa, &[]));
        assert!(!eval(&wxa, &[a, a]));
        assert!(eval(&wxa, &[a, b]));
    }

    #[test]
    fn until_semantics() {
        let (_, a, b, _) = setup();
        let u = Formula::until(Formula::atom(a), Formula::atom(b));
        assert!(eval(&u, &[b]));
        assert!(eval(&u, &[a, a, b]));
        assert!(!eval(&u, &[a, a]));
        assert!(!eval(&u, &[]));
    }

    #[test]
    fn paper_weak_until_claim() {
        // (!a.open) W b.open — a.open must not occur until b.open does (or
        // never occurs at all).
        let mut ab = Alphabet::new();
        let a_open = ab.intern("a.open");
        let b_open = ab.intern("b.open");
        let a_test = ab.intern("a.test");
        let claim = Formula::weak_until(Formula::NotAtom(a_open), Formula::atom(b_open));
        // Satisfied: a.open never happens.
        assert!(eval(&claim, &[a_test, a_test]));
        assert!(eval(&claim, &[]));
        // Satisfied: b.open strictly before a.open.
        assert!(eval(&claim, &[a_test, b_open, a_open]));
        // Violated: a.open before b.open (the BadSector behavior).
        assert!(!eval(&claim, &[a_test, a_open, b_open]));
    }

    #[test]
    fn progression_agrees_with_direct() {
        let (_, a, b, c) = setup();
        let formulas = [
            Formula::globally(Formula::or(Formula::atom(a), Formula::atom(b))),
            Formula::until(Formula::NotAtom(c), Formula::atom(b)),
            Formula::weak_until(Formula::NotAtom(a), Formula::atom(c)),
            Formula::next(Formula::eventually(Formula::atom(a))),
            Formula::release(Formula::atom(a), Formula::NotAtom(b)),
        ];
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![a],
            vec![b, c],
            vec![a, b, c],
            vec![c, c, a, b],
            vec![b, b, b],
        ];
        for f in &formulas {
            for w in &words {
                assert_eq!(eval(f, w), eval_direct(f, w), "formula {f:?} word {w:?}");
            }
        }
    }
}
