//! LTLf formulas in negation normal form.
//!
//! Shelley's temporal claims (`@claim("(!a.open) W b.open")`) are linear
//! temporal logic on finite traces (LTLf, De Giacomo & Vardi 2013). A trace
//! here is a finite — possibly empty — word of events; an atom `a.open`
//! holds at a position iff the event at that position *is* `a.open`.
//!
//! Formulas are kept in **negation normal form** with ACI-normalized
//! (flattened, sorted, deduplicated) conjunctions and disjunctions. That
//! canonicalization is what makes the progression-based automaton
//! construction ([`crate::to_dfa`]) terminate: the reachable state space is
//! a finite set of normalized positive boolean combinations of subformulas.

use shelley_regular::{Alphabet, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// An LTLf formula in negation normal form.
///
/// `F φ` and `G φ` are provided as sugar ([`Formula::eventually`],
/// [`Formula::globally`]) over `U`/`R`; weak until `φ W ψ` desugars to
/// `(φ U ψ) ∨ G φ` exactly as the paper defines it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// `true`.
    True,
    /// `false`.
    False,
    /// The event at the current position is exactly this symbol.
    Atom(Symbol),
    /// The exact complement of [`Formula::Atom`]: either there is no
    /// current position (empty trace remainder) or the event at the current
    /// position differs from this symbol. Making `NotAtom` hold vacuously
    /// on the empty remainder is what keeps [`Formula::negate`] a true
    /// language complement even for empty traces.
    NotAtom(Symbol),
    /// Holds iff the remaining trace is empty (no current position).
    /// Produced by progression of [`Formula::WeakNext`]; not part of the
    /// claim surface syntax.
    Empty,
    /// Holds iff there is a current position (dual of [`Formula::Empty`]).
    /// Produced by progression of [`Formula::Next`].
    Nonempty,
    /// N-ary conjunction (normalized: flat, sorted, deduplicated).
    And(BTreeSet<Formula>),
    /// N-ary disjunction (normalized).
    Or(BTreeSet<Formula>),
    /// Strong next `X φ`: there is a next position and φ holds there.
    Next(Box<Formula>),
    /// Weak next `X[!] φ`: if there is a next position, φ holds there.
    WeakNext(Box<Formula>),
    /// `φ U ψ`: ψ eventually holds, and φ holds until then.
    Until(Box<Formula>, Box<Formula>),
    /// `φ R ψ`: ψ holds up to and including the first position where φ
    /// holds (or forever).
    Release(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// The constant `true`.
    pub fn tt() -> Formula {
        Formula::True
    }

    /// The constant `false`.
    pub fn ff() -> Formula {
        Formula::False
    }

    /// An event atom.
    pub fn atom(s: Symbol) -> Formula {
        Formula::Atom(s)
    }

    /// Conjunction with ACI normalization and constant folding.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::and_all([a, b])
    }

    /// N-ary conjunction with ACI normalization and constant folding.
    pub fn and_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut set = BTreeSet::new();
        for f in items {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => set.extend(inner),
                other => {
                    set.insert(other);
                }
            }
        }
        match set.len() {
            0 => Formula::True,
            1 => set.into_iter().next().expect("one element"),
            _ => Formula::And(set),
        }
    }

    /// Disjunction with ACI normalization and constant folding.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::or_all([a, b])
    }

    /// N-ary disjunction with ACI normalization and constant folding.
    pub fn or_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut set = BTreeSet::new();
        for f in items {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => set.extend(inner),
                other => {
                    set.insert(other);
                }
            }
        }
        match set.len() {
            0 => Formula::False,
            1 => set.into_iter().next().expect("one element"),
            _ => Formula::Or(set),
        }
    }

    /// Implication `a -> b` (classical, via NNF).
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::or(a.negate(), b)
    }

    /// Strong next.
    pub fn next(f: Formula) -> Formula {
        Formula::Next(Box::new(f))
    }

    /// Weak next.
    pub fn weak_next(f: Formula) -> Formula {
        Formula::WeakNext(Box::new(f))
    }

    /// `φ U ψ` with constant folding.
    ///
    /// The folds respect possibly-empty traces: `U` always requires at
    /// least one position, so `φ U true ≡ nonempty` (not `true`) and
    /// `false U ψ ≡ nonempty ∧ ψ`.
    pub fn until(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (_, Formula::False) => Formula::False,
            (_, Formula::True) => Formula::Nonempty,
            (Formula::False, _) => Formula::and(Formula::Nonempty, b),
            _ => Formula::Until(Box::new(a), Box::new(b)),
        }
    }

    /// `φ R ψ` with constant folding.
    ///
    /// Dually to [`Formula::until`], `R` holds vacuously on the empty
    /// trace: `φ R false ≡ empty` (not `false`) and
    /// `true R ψ ≡ empty ∨ ψ`.
    pub fn release(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (_, Formula::True) => Formula::True,
            (_, Formula::False) => Formula::Empty,
            (Formula::True, _) => Formula::or(Formula::Empty, b),
            _ => Formula::Release(Box::new(a), Box::new(b)),
        }
    }

    /// `F φ = true U φ`.
    pub fn eventually(f: Formula) -> Formula {
        Formula::until(Formula::True, f)
    }

    /// `G φ = false R φ`.
    pub fn globally(f: Formula) -> Formula {
        Formula::release(Formula::False, f)
    }

    /// Weak until, the paper's `φ₁ W φ₂ = (φ₁ U φ₂) ∨ G φ₁`.
    pub fn weak_until(a: Formula, b: Formula) -> Formula {
        Formula::or(Formula::until(a.clone(), b), Formula::globally(a))
    }

    /// The negation, pushed to NNF (every operator has a dual).
    pub fn negate(&self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Empty => Formula::Nonempty,
            Formula::Nonempty => Formula::Empty,
            Formula::Atom(s) => Formula::NotAtom(*s),
            Formula::NotAtom(s) => Formula::Atom(*s),
            Formula::And(items) => Formula::or_all(items.iter().map(Formula::negate)),
            Formula::Or(items) => Formula::and_all(items.iter().map(Formula::negate)),
            Formula::Next(f) => Formula::weak_next(f.negate()),
            Formula::WeakNext(f) => Formula::next(f.negate()),
            Formula::Until(a, b) => Formula::release(a.negate(), b.negate()),
            Formula::Release(a, b) => Formula::until(a.negate(), b.negate()),
        }
    }

    /// All atoms occurring in the formula.
    pub fn atoms(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Formula::True | Formula::False | Formula::Empty | Formula::Nonempty => {}
            Formula::Atom(s) | Formula::NotAtom(s) => {
                out.insert(*s);
            }
            Formula::And(items) | Formula::Or(items) => {
                for f in items {
                    f.collect_atoms(out);
                }
            }
            Formula::Next(f) | Formula::WeakNext(f) => f.collect_atoms(out),
            Formula::Until(a, b) | Formula::Release(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::True
            | Formula::False
            | Formula::Empty
            | Formula::Nonempty
            | Formula::Atom(_)
            | Formula::NotAtom(_) => 1,
            Formula::And(items) | Formula::Or(items) => {
                1 + items.iter().map(Formula::size).sum::<usize>()
            }
            Formula::Next(f) | Formula::WeakNext(f) => 1 + f.size(),
            Formula::Until(a, b) | Formula::Release(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Renders the formula with event names from `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> DisplayFormula<'a> {
        DisplayFormula {
            formula: self,
            alphabet,
        }
    }
}

/// Pretty-printer returned by [`Formula::display`].
#[derive(Debug)]
pub struct DisplayFormula<'a> {
    formula: &'a Formula,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayFormula<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_formula(f, self.formula, self.alphabet, false)
    }
}

fn write_formula(
    f: &mut fmt::Formatter<'_>,
    formula: &Formula,
    ab: &Alphabet,
    parens: bool,
) -> fmt::Result {
    let write_binary = |f: &mut fmt::Formatter<'_>,
                        op: &str,
                        a: &Formula,
                        b: &Formula,
                        parens: bool|
     -> fmt::Result {
        if parens {
            write!(f, "(")?;
        }
        write_formula(f, a, ab, true)?;
        write!(f, " {op} ")?;
        write_formula(f, b, ab, true)?;
        if parens {
            write!(f, ")")?;
        }
        Ok(())
    };
    match formula {
        Formula::True => write!(f, "true"),
        Formula::False => write!(f, "false"),
        Formula::Empty => write!(f, "empty"),
        Formula::Nonempty => write!(f, "nonempty"),
        Formula::Atom(s) => write!(f, "{}", ab.name(*s)),
        Formula::NotAtom(s) => write!(f, "!{}", ab.name(*s)),
        Formula::And(items) => {
            if parens {
                write!(f, "(")?;
            }
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write_formula(f, item, ab, true)?;
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Formula::Or(items) => {
            if parens {
                write!(f, "(")?;
            }
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_formula(f, item, ab, true)?;
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Formula::Next(g) => {
            write!(f, "X ")?;
            write_formula(f, g, ab, true)
        }
        Formula::WeakNext(g) => {
            write!(f, "X[!] ")?;
            write_formula(f, g, ab, true)
        }
        Formula::Until(a, b) => {
            if **a == Formula::True {
                write!(f, "F ")?;
                return write_formula(f, b, ab, true);
            }
            write_binary(f, "U", a, b, parens)
        }
        Formula::Release(a, b) => {
            if **a == Formula::False {
                write!(f, "G ")?;
                return write_formula(f, b, ab, true);
            }
            write_binary(f, "R", a, b, parens)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab2() -> (Alphabet, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a.open");
        let b = ab.intern("b.open");
        (ab, a, b)
    }

    #[test]
    fn and_normalizes() {
        let (_, a, b) = ab2();
        let f1 = Formula::and(Formula::atom(a), Formula::atom(b));
        let f2 = Formula::and(Formula::atom(b), Formula::atom(a));
        assert_eq!(f1, f2);
        assert_eq!(
            Formula::and(Formula::tt(), Formula::atom(a)),
            Formula::atom(a)
        );
        assert_eq!(Formula::and(Formula::ff(), Formula::atom(a)), Formula::ff());
        // Flattening: (a & (a & b)) == (a & b).
        let nested = Formula::and(Formula::atom(a), f1.clone());
        assert_eq!(nested, f1);
    }

    #[test]
    fn or_normalizes() {
        let (_, a, _) = ab2();
        assert_eq!(
            Formula::or(Formula::ff(), Formula::atom(a)),
            Formula::atom(a)
        );
        assert_eq!(Formula::or(Formula::tt(), Formula::atom(a)), Formula::tt());
        assert_eq!(
            Formula::or(Formula::atom(a), Formula::atom(a)),
            Formula::atom(a)
        );
    }

    #[test]
    fn negation_is_involutive() {
        let (_, a, b) = ab2();
        let f = Formula::weak_until(Formula::atom(a).negate(), Formula::atom(b));
        assert_eq!(f.negate().negate(), f);
    }

    #[test]
    fn duals() {
        let (_, a, _) = ab2();
        let f = Formula::globally(Formula::atom(a));
        // ¬G a = F ¬a.
        assert_eq!(f.negate(), Formula::eventually(Formula::NotAtom(a)));
        let x = Formula::next(Formula::atom(a));
        assert_eq!(x.negate(), Formula::weak_next(Formula::NotAtom(a)));
    }

    #[test]
    fn display_claim() {
        let (ab, a, b) = ab2();
        let f = Formula::weak_until(Formula::NotAtom(a), Formula::atom(b));
        let s = f.display(&ab).to_string();
        // W desugars to (¬a U b) ∨ G ¬a.
        assert!(s.contains("U"), "{s}");
        assert!(s.contains("G"), "{s}");
        assert!(s.contains("!a.open"), "{s}");
    }

    #[test]
    fn atoms_collected() {
        let (_, a, b) = ab2();
        let f = Formula::until(Formula::atom(a), Formula::next(Formula::atom(b)));
        assert_eq!(f.atoms(), BTreeSet::from([a, b]));
    }
}
