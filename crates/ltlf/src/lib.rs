//! # shelley-ltlf
//!
//! Linear temporal logic on finite traces (LTLf) for Shelley's temporal
//! claims (*Formalizing Model Inference of MicroPython*, DSN-W 2023, §2.2).
//!
//! Shelley checks annotations such as
//! `@claim("(!a.open) W b.open")` — "valve `a` stays closed at least until
//! valve `b` opens" — against the regular language of behaviors extracted
//! from a composite class. This crate provides:
//!
//! * [`Formula`] — NNF formulas with ACI-normalized boolean connectives
//!   and the full operator set (`X`, weak `X[!]`, `F`, `G`, `U`, `R`, and
//!   the paper's weak-until `W = (φ U ψ) ∨ G φ`);
//! * [`parse_formula`] — the claim syntax;
//! * [`eval`] / [`progress`] / [`accepts_empty`] — finite-trace semantics
//!   by direct evaluation and by formula progression;
//! * [`MonitorView`] — the formula's monitor as a *lazy*
//!   [`Lang`](shelley_regular::lang::Lang) view driven by progression, with
//!   [`to_dfa`] (= [`MonitorView::materialize`]) as the eager escape hatch;
//! * [`check_claim`] — language-inclusion model checking with shortest
//!   counterexamples, marker-aware so Shelley's annotated traces
//!   (`open_a, a.test, a.open`) survive into error messages; the monitor is
//!   never compiled up front.
//!
//! # Example
//!
//! ```
//! use shelley_ltlf::{parse_formula, check_claim, ClaimOutcome};
//! use shelley_regular::{parse_regex, Alphabet, Nfa};
//! use std::{collections::BTreeSet, sync::Arc};
//!
//! let mut ab = Alphabet::new();
//! let claim = parse_formula("(!a.open) W b.open", &mut ab)?;
//! let model = parse_regex("a.test ; a.open ; b.open", &mut ab).unwrap();
//! let nfa = Nfa::from_regex(&model, Arc::new(ab));
//! let outcome = check_claim(&nfa, &claim, &BTreeSet::new());
//! assert!(!outcome.holds()); // a.open happens before b.open
//! # Ok::<(), shelley_ltlf::ParseFormulaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod check;
mod parser;
mod semantics;
mod simplify;
mod syntax;

pub use automaton::{to_dfa, MonitorView};
pub use check::{check_claim, check_claim_dfa, ClaimOutcome};
pub use parser::{parse_formula, ParseFormulaError};
pub use semantics::{accepts_empty, eval, eval_direct, progress};
pub use simplify::simplify;
pub use syntax::{DisplayFormula, Formula};
