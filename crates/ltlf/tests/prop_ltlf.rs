//! Property tests for LTLf: progression vs direct evaluation vs the
//! compiled monitor DFA, negation as complement, and operator laws.

use proptest::prelude::*;
use shelley_ltlf::{accepts_empty, eval, eval_direct, progress, to_dfa, Formula};
use shelley_regular::{Alphabet, Symbol};
use std::sync::Arc;

const NSYMS: usize = 3;

fn alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::from_names(["a", "b", "c"]))
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::tt()),
        Just(Formula::ff()),
        (0..NSYMS).prop_map(|i| Formula::atom(Symbol::from_index(i))),
        (0..NSYMS).prop_map(|i| Formula::NotAtom(Symbol::from_index(i))),
    ];
    // Progression-quotient monitors are exponential in the worst case, so
    // the generator stays at claim-like sizes (the paper's claims have
    // 2-4 operators).
    leaf.prop_recursive(3, 14, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            inner.clone().prop_map(Formula::next),
            inner.clone().prop_map(Formula::weak_next),
            inner.clone().prop_map(Formula::eventually),
            inner.clone().prop_map(Formula::globally),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::until(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::release(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::weak_until(a, b)),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec((0..NSYMS).prop_map(Symbol::from_index), 0..7)
}

proptest! {
    /// Progression-based and direct evaluation agree.
    #[test]
    fn eval_implementations_agree(f in arb_formula(), w in arb_word()) {
        prop_assert_eq!(eval(&f, &w), eval_direct(&f, &w));
    }

    /// The compiled monitor accepts exactly the satisfying traces.
    #[test]
    fn monitor_agrees_with_eval(f in arb_formula(), w in arb_word()) {
        let dfa = to_dfa(&f, alphabet());
        prop_assert_eq!(dfa.accepts(&w), eval(&f, &w));
    }

    /// Negation is a true language complement (including the empty trace).
    #[test]
    fn negation_is_complement(f in arb_formula(), w in arb_word()) {
        prop_assert_eq!(eval(&f.negate(), &w), !eval(&f, &w));
    }

    /// Negation is involutive.
    #[test]
    fn negation_involutive(f in arb_formula(), w in arb_word()) {
        prop_assert_eq!(eval(&f.negate().negate(), &w), eval(&f, &w));
    }

    /// The fundamental progression equation: e·w ⊨ φ ⇔ w ⊨ progress(φ, e).
    #[test]
    fn progression_equation(
        f in arb_formula(),
        e in (0..NSYMS).prop_map(Symbol::from_index),
        w in arb_word()
    ) {
        let mut ew = vec![e];
        ew.extend_from_slice(&w);
        prop_assert_eq!(eval(&f, &ew), eval(&progress(&f, e), &w));
    }

    /// ε ⊨ φ ⇔ accepts_empty(φ).
    #[test]
    fn empty_trace_base_case(f in arb_formula()) {
        prop_assert_eq!(eval(&f, &[]), accepts_empty(&f));
    }

    /// Expansion law: φ U ψ ≡ ψ ∨ (φ ∧ X(φ U ψ)) — at real positions only:
    /// on the empty trace U is false by definition while ψ may hold
    /// vacuously, so the law is stated for nonempty traces.
    #[test]
    fn until_expansion(f in arb_formula(), g in arb_formula(), w in arb_word()) {
        prop_assume!(!w.is_empty());
        let u = Formula::until(f.clone(), g.clone());
        let expanded = Formula::or(
            g,
            Formula::and(f, Formula::next(u.clone())),
        );
        prop_assert_eq!(eval(&u, &w), eval(&expanded, &w));
    }

    /// Expansion law: φ R ψ ≡ ψ ∧ (φ ∨ X[!](φ R ψ)) — nonempty traces
    /// only, dually to `until_expansion`.
    #[test]
    fn release_expansion(f in arb_formula(), g in arb_formula(), w in arb_word()) {
        prop_assume!(!w.is_empty());
        let r = Formula::release(f.clone(), g.clone());
        let expanded = Formula::and(
            g,
            Formula::or(f, Formula::weak_next(r.clone())),
        );
        prop_assert_eq!(eval(&r, &w), eval(&expanded, &w));
    }

    /// The paper's definition: φ W ψ ≡ (φ U ψ) ∨ G φ.
    #[test]
    fn weak_until_definition(f in arb_formula(), g in arb_formula(), w in arb_word()) {
        let w_formula = Formula::weak_until(f.clone(), g.clone());
        let manual = Formula::or(
            Formula::until(f.clone(), g),
            Formula::globally(f),
        );
        prop_assert_eq!(eval(&w_formula, &w), eval(&manual, &w));
    }

    /// Monitor DFAs stay small after minimization (sanity bound: the
    /// progression-state space of our bounded-depth formulas).
    #[test]
    fn monitors_minimize(f in arb_formula()) {
        let dfa = to_dfa(&f, alphabet());
        let min = dfa.minimize();
        prop_assert!(min.num_states() <= dfa.num_states());
        prop_assert!(min.equivalent(&dfa).is_ok());
    }
}

proptest! {
    /// Stepping the lazy [`MonitorView`] by progression agrees with direct
    /// evaluation at every prefix of the word.
    #[test]
    fn monitor_view_tracks_eval(f in arb_formula(), w in arb_word()) {
        use shelley_ltlf::MonitorView;
        use shelley_regular::lang::Lang;
        let view = MonitorView::new(&f, alphabet());
        let mut state = view.start();
        let mut prefix = Vec::new();
        prop_assert_eq!(view.is_accepting(&state), eval(&f, &prefix));
        for &e in &w {
            state = view.step(&state, e);
            prefix.push(e);
            prop_assert_eq!(view.is_accepting(&state), eval(&f, &prefix));
        }
    }

    /// Materializing the lazy monitor view reproduces the eager monitor
    /// DFA exactly (same construction, same numbering).
    #[test]
    fn monitor_view_materializes_to_the_eager_dfa(f in arb_formula(), w in arb_word()) {
        use shelley_ltlf::MonitorView;
        let dfa = MonitorView::new(&f, alphabet()).materialize();
        let eager = to_dfa(&f, alphabet());
        prop_assert_eq!(dfa.num_states(), eager.num_states());
        prop_assert_eq!(dfa.accepts(&w), eager.accepts(&w));
    }

    /// The lazy claim check and the eager compile-then-search oracle
    /// return byte-identical outcomes (including the counterexample
    /// trace) on generated formulas and regular models.
    #[test]
    fn lazy_claim_check_matches_eager_oracle(
        f in arb_formula(),
        w1 in arb_word(),
        w2 in arb_word()
    ) {
        use shelley_ltlf::{check_claim, check_claim_dfa, ClaimOutcome};
        use shelley_regular::{ops, Dfa, Nfa, Regex};
        use std::collections::BTreeSet;
        let ab = alphabet();
        // A small model: the union of two concrete traces.
        let model_re = Regex::union(Regex::word(&w1), Regex::word(&w2));
        let model = Nfa::from_regex(&model_re, ab.clone());
        let markers = BTreeSet::new();

        let eager_bad = to_dfa(&f.negate(), ab.clone());
        let eager = match ops::shortest_joint_word(&model, &eager_bad, &markers) {
            None => ClaimOutcome::Holds,
            Some(counterexample) => ClaimOutcome::Violated { counterexample },
        };
        prop_assert_eq!(check_claim(&model, &f, &markers), eager);

        let dfa_model = Dfa::from_nfa(&model);
        let eager_dfa = match dfa_model.intersect(&eager_bad).shortest_accepted() {
            None => ClaimOutcome::Holds,
            Some(counterexample) => ClaimOutcome::Violated { counterexample },
        };
        prop_assert_eq!(check_claim_dfa(&dfa_model, &f), eager_dfa);
    }

    /// The bitset engine underneath the ltlf pipeline is invisible: claim
    /// checks against a model determinized on the bitset subset
    /// construction and against the same model determinized on the
    /// `BTreeSet` reference engine return byte-identical outcomes,
    /// counterexample traces included.
    #[test]
    fn claim_checks_agree_across_state_engines(
        f in arb_formula(),
        w1 in arb_word(),
        w2 in arb_word()
    ) {
        use shelley_ltlf::check_claim_dfa;
        use shelley_regular::lang::{self, NfaViewRef};
        use shelley_regular::{Dfa, Nfa, Regex};
        let ab = alphabet();
        let model_re = Regex::union(Regex::word(&w1), Regex::word(&w2));
        let model = Nfa::from_regex(&model_re, ab);
        // Bitset subset construction vs the reference `BTreeSet` engine:
        // identical numbering makes downstream products step identically.
        let bitset_model = Dfa::from_nfa(&model);
        let reference_model = lang::materialize(&NfaViewRef::new(&model));
        prop_assert_eq!(
            check_claim_dfa(&bitset_model, &f),
            check_claim_dfa(&reference_model, &f)
        );
    }

    /// Simplification preserves the language exactly.
    #[test]
    fn simplify_preserves_semantics(f in arb_formula(), w in arb_word()) {
        let s = shelley_ltlf::simplify(&f);
        prop_assert_eq!(eval(&f, &w), eval(&s, &w));
    }

    /// Simplification is idempotent.
    #[test]
    fn simplify_idempotent(f in arb_formula()) {
        let s1 = shelley_ltlf::simplify(&f);
        let s2 = shelley_ltlf::simplify(&s1);
        prop_assert_eq!(s1, s2);
    }
}
