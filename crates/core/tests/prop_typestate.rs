//! Differential property suite: the typestate dataflow analysis never
//! contradicts full product-construction verification.
//!
//! Mirrors the engine-vs-engine pinning pattern of `prop_core.rs`: random
//! dependency protocols and random composite bodies (straight-line calls,
//! branches, helper self-calls, loops), with the analysis verdict held
//! against [`verify_system`] run *without* the fast path:
//!
//! * **No false definite violations** — an `E009` finding implies the
//!   full check rejects the class too.
//! * **Fast-path skips are sound** — a field the analysis proves
//!   conforming passes the full projected-subset check.
//! * The lint layer and the raw report agree on which codes fire.

use proptest::prelude::*;
use shelley_core::analyze_class;
use shelley_core::annotations::OpKind;
use shelley_core::pipeline::verify_system;
use shelley_core::spec::{ClassSpec, ExitSpec, OperationSpec};
use shelley_core::system::build_systems;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A random, structurally sane spec, as in `prop_core.rs`: `n` operations
/// with next-sets over defined operations; op 0 initial, last op final.
fn arb_spec() -> impl Strategy<Value = ClassSpec> {
    (2usize..6)
        .prop_flat_map(|n| {
            let exits = proptest::collection::vec(proptest::collection::vec(0..n, 0..3), n);
            (Just(n), exits)
        })
        .prop_map(|(n, exit_targets)| {
            let operations = (0..n)
                .map(|i| {
                    let kind = if i == 0 && i == n - 1 {
                        OpKind::InitialFinal
                    } else if i == 0 {
                        OpKind::Initial
                    } else if i == n - 1 {
                        OpKind::Final
                    } else {
                        OpKind::Middle
                    };
                    let next: Vec<String> =
                        exit_targets[i].iter().map(|&t| format!("op{t}")).collect();
                    OperationSpec {
                        name: format!("op{i}"),
                        kind,
                        exits: vec![ExitSpec {
                            next,
                            span: None,
                            implicit: false,
                        }],
                        span: None,
                    }
                })
                .collect();
            ClassSpec {
                name: "Gen".into(),
                operations,
            }
        })
}

/// One statement of the generated composite body.
#[derive(Debug, Clone)]
enum Item {
    /// `self.x.op{i}()`
    Call(usize),
    /// `if c: <calls> else: <calls>` — branch divergence.
    Branch(Vec<usize>, Vec<usize>),
    /// `self.aux()` — routes through the interprocedural summary.
    Helper,
    /// `while c: self.x.op{i}()` — exercises the loop/widening path.
    Loop(usize),
}

fn arb_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        4 => (0usize..6).prop_map(Item::Call),
        2 => (
            proptest::collection::vec(0usize..6, 0..3),
            proptest::collection::vec(0usize..6, 0..3),
        )
            .prop_map(|(t, e)| Item::Branch(t, e)),
        1 => Just(Item::Helper),
        1 => (0usize..6).prop_map(Item::Loop),
    ]
}

/// Renders a [`ClassSpec`] back to annotated MicroPython source.
fn render_spec_class(spec: &ClassSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "@sys");
    let _ = writeln!(out, "class {}:", spec.name);
    for op in &spec.operations {
        let dec = match (op.kind.is_initial(), op.kind.is_final()) {
            (true, true) => "@op_initial_final",
            (true, false) => "@op_initial",
            (false, true) => "@op_final",
            (false, false) => "@op",
        };
        let _ = writeln!(out, "    {dec}");
        let _ = writeln!(out, "    def {}(self):", op.name);
        for exit in &op.exits {
            let items: Vec<String> = exit.next.iter().map(|n| format!("\"{n}\"")).collect();
            let _ = writeln!(out, "        return [{}]", items.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the random composite: one `@op_initial_final` body built from
/// `items` plus an undecorated helper making `helper` calls.
fn render_user(n_ops: usize, items: &[Item], helper: &[usize]) -> String {
    let call = |out: &mut String, indent: &str, i: usize| {
        let _ = writeln!(out, "{indent}self.x.op{}()", i % n_ops);
    };
    let mut out = String::new();
    let _ = writeln!(out, "@sys([\"x\"])");
    let _ = writeln!(out, "class User:");
    let _ = writeln!(out, "    def __init__(self):");
    let _ = writeln!(out, "        self.x = Gen()");
    let _ = writeln!(out);
    let _ = writeln!(out, "    @op_initial_final");
    let _ = writeln!(out, "    def run(self):");
    if items.is_empty() {
        let _ = writeln!(out, "        pass");
    }
    for item in items {
        match item {
            Item::Call(i) => call(&mut out, "        ", *i),
            Item::Branch(then, orelse) => {
                let _ = writeln!(out, "        if cond:");
                if then.is_empty() {
                    let _ = writeln!(out, "            pass");
                }
                for &i in then {
                    call(&mut out, "            ", i);
                }
                let _ = writeln!(out, "        else:");
                if orelse.is_empty() {
                    let _ = writeln!(out, "            pass");
                }
                for &i in orelse {
                    call(&mut out, "            ", i);
                }
            }
            Item::Helper => {
                let _ = writeln!(out, "        self.aux()");
            }
            Item::Loop(i) => {
                let _ = writeln!(out, "        while cond:");
                call(&mut out, "            ", *i);
            }
        }
    }
    let _ = writeln!(out, "        return []");
    let _ = writeln!(out);
    let _ = writeln!(out, "    def aux(self):");
    if helper.is_empty() {
        let _ = writeln!(out, "        pass");
    }
    for &i in helper {
        call(&mut out, "        ", i);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn typestate_never_contradicts_full_verification(
        spec in arb_spec(),
        items in proptest::collection::vec(arb_item(), 0..6),
        helper in proptest::collection::vec(0usize..6, 0..3),
    ) {
        let src = format!(
            "{}\n{}",
            render_spec_class(&spec),
            render_user(spec.operations.len(), &items, &helper)
        );
        let module = micropython_parser::parse_module(&src).expect("generated source parses");
        let (systems, _) = build_systems(&module);
        let Some(user) = systems.get("User") else {
            return Ok(()); // spec failed validation; nothing to compare
        };
        let class = module.class("User").expect("class present");
        let Some(report) = analyze_class(class, user, &systems) else {
            return Ok(());
        };

        // The oracle: full verification with the fast path disabled.
        let verdict = verify_system(user, &systems, &BTreeSet::new(), shelley_core::Backend::Auto);
        let full_check_passes = verdict.usage_violations.is_empty();

        // 1. No definite-violation false positives: E009 implies the full
        //    check also rejects the class.
        let definite = report.findings.iter().any(|f| f.definite);
        if definite {
            prop_assert!(
                !full_check_passes,
                "definite finding on a class full verification accepts:\n{src}\n{:#?}",
                report.findings
            );
        }

        // 2. Fast-path soundness: a proven field passes the full check.
        if report.proven.contains("x") {
            prop_assert!(
                full_check_passes,
                "field `x` proven conforming but full verification rejects:\n{src}"
            );
            prop_assert!(
                report.findings.iter().all(|f| !f.definite),
                "proven field with a definite finding:\n{src}"
            );
        }

        // 3. Every witness trace a definite finding carries is nonempty
        //    prose, never an unrendered placeholder.
        for f in report.findings.iter().filter(|f| f.definite) {
            if let Some(w) = &f.witness {
                prop_assert!(!w.is_empty());
            }
        }
    }
}
