//! The workspace engine's contract: incrementality you can observe in the
//! stats counters, fingerprint invalidation that follows the subsystem
//! graph, and byte-identical reports across cold/incremental/parallel
//! runs.

use proptest::prelude::*;
use shelley_core::annotations::OpKind;
use shelley_core::pipeline::check_module_direct;
use shelley_core::spec::{ClassSpec, ExitSpec, OperationSpec};
use shelley_core::{Checked, Checker, LintConfig, ProjectFile, INPUT_NAME};
use std::fmt::Write as _;

const VALVE_PY: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

const LED_PY: &str = r#"
@sys
class Led:
    @op_initial
    def on(self):
        return ["off"]

    @op_final
    def off(self):
        return ["on"]
"#;

const SECTOR_A_PY: &str = r#"
@sys(["a"])
class SectorA:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;

const SECTOR_B_PY: &str = r#"
@sys(["l"])
class SectorB:
    def __init__(self):
        self.l = Led()

    @op_initial_final
    def blink(self):
        self.l.on()
        self.l.off()
        return []
"#;

/// Listings 2.1 + 2.2 of the paper: one base system plus a composite that
/// violates both the subsystem protocol and its temporal claim.
const PAPER_SOURCE: &str = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
"#;

/// Everything a report can say, rendered to one comparable string.
fn fingerprint_report(checked: &Checked) -> String {
    let mut out = checked.report.render(None);
    out.push_str(&checked.report.diagnostics.render_json(None));
    let names: Vec<&str> = checked.systems.iter().map(|s| s.name.as_str()).collect();
    let _ = writeln!(out, "systems: {names:?}");
    let integs: Vec<&str> = checked
        .integrations
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    let _ = writeln!(out, "integrations: {integs:?}");
    out
}

#[test]
fn counters_prove_incrementality_after_one_class_edit() {
    let mut ws = Checker::new().jobs(1).into_workspace();
    ws.set_file("valve.py", VALVE_PY);
    ws.set_file("led.py", LED_PY);
    ws.set_file("sector_a.py", SECTOR_A_PY);
    ws.set_file("sector_b.py", SECTOR_B_PY);

    // Cold round: everything is a miss.
    let cold = ws.check().unwrap();
    assert!(cold.report.passed(), "{}", cold.report.render(None));
    assert_eq!(ws.last_round().files_parsed, 4);
    assert_eq!(ws.last_round().extracted, 4);
    assert_eq!(ws.last_round().verified, 4);
    assert_eq!(ws.last_round().verify_cache_hits, 0);

    // Unchanged round: everything is a hit.
    ws.check().unwrap();
    assert_eq!(ws.last_round().files_parsed, 0);
    assert_eq!(ws.last_round().parse_cache_hits, 4);
    assert_eq!(ws.last_round().extracted, 0);
    assert_eq!(ws.last_round().extract_cache_hits, 4);
    assert_eq!(ws.last_round().verified, 0);
    assert_eq!(ws.last_round().verify_cache_hits, 4);

    // Cosmetic edit to Valve: its fingerprint changes, so Valve re-runs
    // every stage and SectorA (whose dependency fingerprint includes
    // Valve's) re-verifies — but Led and SectorB stay cached.
    ws.set_file("valve.py", VALVE_PY.replace("if ok:", "if ready:"));
    let warm = ws.check().unwrap();
    assert!(warm.report.passed());
    assert_eq!(ws.last_round().files_parsed, 1);
    assert_eq!(ws.last_round().parse_cache_hits, 3);
    assert_eq!(ws.last_round().extracted, 1);
    assert_eq!(ws.last_round().extract_cache_hits, 3);
    assert_eq!(ws.last_round().verified, 2, "Valve + SectorA re-verified");
    assert_eq!(ws.last_round().verify_cache_hits, 2, "Led + SectorB cached");

    // Lifetime totals accumulate across rounds.
    assert_eq!(ws.stats().rounds, 3);
    assert_eq!(ws.stats().verified, 6);
    assert_eq!(ws.stats().verify_cache_hits, 6);
}

#[test]
fn editing_a_subsystem_invalidates_composites_but_not_grandparents() {
    // a <- b <- c: editing `A` re-verifies A and B (B's dependency
    // fingerprint includes A's class fingerprint), but C depends only on
    // B's *spec*, which is a function of B's unchanged text — so C is a
    // cache hit.
    const A_PY: &str = r#"
@sys
class A:
    @op_initial_final
    def go(self):
        return []
"#;
    const B_PY: &str = r#"
@sys(["a"])
class B:
    def __init__(self):
        self.a = A()

    @op_initial_final
    def run(self):
        self.a.go()
        return []
"#;
    const C_PY: &str = r#"
@sys(["b"])
class C:
    def __init__(self):
        self.b = B()

    @op_initial_final
    def drive(self):
        self.b.run()
        return []
"#;
    let mut ws = Checker::new().jobs(1).into_workspace();
    ws.set_file("a.py", A_PY);
    ws.set_file("b.py", B_PY);
    ws.set_file("c.py", C_PY);
    let checked = ws.check().unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));

    // A whitespace-only edit would not change the printed AST (the
    // fingerprint ignores formatting), so add a harmless statement.
    ws.set_file(
        "a.py",
        A_PY.replace("        return []", "        x = 1\n        return []"),
    );
    ws.check().unwrap();
    assert_eq!(ws.last_round().extracted, 1, "only A re-extracted");
    assert_eq!(ws.last_round().verified, 2, "A and B re-verified");
    assert_eq!(ws.last_round().verify_cache_hits, 1, "C stays cached");
}

#[test]
fn parallel_and_incremental_match_the_direct_pipeline_on_the_paper_example() {
    let module = micropython_parser::parse_module(PAPER_SOURCE).unwrap();
    let reference = fingerprint_report(&check_module_direct(&module, &LintConfig::default()));

    // Sequential workspace, cold.
    let sequential = Checker::new().jobs(1).check_source(PAPER_SOURCE).unwrap();
    assert_eq!(fingerprint_report(&sequential), reference);

    // Parallel workspace, cold.
    let parallel = Checker::new().jobs(4).check_source(PAPER_SOURCE).unwrap();
    assert_eq!(fingerprint_report(&parallel), reference);

    // Incremental: detour through an edited file, then back.
    let mut ws = Checker::new().jobs(2).into_workspace();
    ws.set_file(INPUT_NAME, PAPER_SOURCE);
    ws.check().unwrap();
    ws.set_file(INPUT_NAME, PAPER_SOURCE.replace("W b.open", "W b.test"));
    ws.check().unwrap();
    ws.set_file(INPUT_NAME, PAPER_SOURCE);
    let incremental = ws.check().unwrap();
    assert_eq!(fingerprint_report(&incremental), reference);
}

#[test]
fn fast_path_counter_tracks_typestate_proven_subsystems() {
    let mut ws = Checker::new().jobs(1).into_workspace();
    ws.set_file("valve.py", VALVE_PY);
    ws.set_file("sector_a.py", SECTOR_A_PY);
    let checked = ws.check().unwrap();
    assert!(checked.report.passed(), "{}", checked.report.render(None));
    assert_eq!(
        ws.last_round().fast_path_proven,
        1,
        "SectorA's `a` is proven conforming by the typestate analysis"
    );
    assert!(ws.last_round().render().contains("(1 fast-path)"));

    // Cached rounds don't re-verify, so they report no fresh skips; the
    // lifetime total keeps the cold round's count.
    ws.check().unwrap();
    assert_eq!(ws.last_round().fast_path_proven, 0);
    assert_eq!(ws.stats().fast_path_proven, 1);

    // The paper's BadSector must never ride the fast path: its violation
    // still surfaces through the full check.
    ws.set_file(INPUT_NAME, PAPER_SOURCE);
    let checked = ws.check().unwrap();
    assert!(!checked.report.passed());
    assert_eq!(checked.report.usage_violations.len(), 1);
}

#[test]
fn disk_cache_round_trip_restores_verification_byte_identically() {
    let dir = std::env::temp_dir().join(format!("shelley-ws-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("verify.ndjson");

    // Cold process: check a mixed project (passing composites plus the
    // paper's failing BadSector) and persist the verify cache.
    let mut cold_ws = Checker::new().jobs(2).into_workspace();
    cold_ws.set_file("valve.py", VALVE_PY);
    cold_ws.set_file("led.py", LED_PY);
    cold_ws.set_file("sector_a.py", SECTOR_A_PY);
    cold_ws.set_file("sector_b.py", SECTOR_B_PY);
    let paper = PAPER_SOURCE.replace("Valve", "PaperValve");
    cold_ws.set_file("paper.py", paper.clone());
    let cold = cold_ws.check().unwrap();
    assert!(!cold.report.passed(), "BadSector must fail");
    let written = cold_ws.save_disk_cache(&cache).unwrap();
    assert_eq!(written, 6, "one record per live class");

    // "Restarted" process: a fresh workspace with the same sources and
    // the saved cache skips the expensive analyses for every class but
    // still produces a byte-identical report and identical stats.
    let mut warm_ws = Checker::new().jobs(2).into_workspace();
    let outcome = warm_ws.load_disk_cache(&cache);
    assert!(outcome.rejected.is_none(), "{:?}", outcome.rejected);
    assert_eq!(outcome.entries.len(), 6);
    warm_ws.set_file("valve.py", VALVE_PY);
    warm_ws.set_file("led.py", LED_PY);
    warm_ws.set_file("sector_a.py", SECTOR_A_PY);
    warm_ws.set_file("sector_b.py", SECTOR_B_PY);
    warm_ws.set_file("paper.py", paper);
    let warm = warm_ws.check().unwrap();
    assert_eq!(fingerprint_report(&warm), fingerprint_report(&cold));
    assert_eq!(warm_ws.last_round().verify_disk_hits, 6);
    assert_eq!(
        warm_ws.last_round().verified,
        6,
        "disk hits count as verified"
    );
    assert_eq!(
        warm_ws.last_round().fast_path_proven,
        cold_ws.last_round().fast_path_proven,
        "replayed fast-path skips keep the stats line identical"
    );
    let strip_time = |s: String| s.rsplit_once(" in ").map(|(head, _)| head.to_owned());
    assert_eq!(
        strip_time(warm_ws.last_round().render()),
        strip_time(cold_ws.last_round().render()),
        "the watch-mode round marker (minus wall time) is stable across a restart"
    );

    // An edit after restore falls back to full verification for the
    // touched class only; the disk entries keep serving the rest.
    warm_ws.set_file("valve.py", VALVE_PY.replace("if ok:", "if ready:"));
    let edited = warm_ws.check().unwrap();
    assert!(!edited.report.passed());
    assert_eq!(
        warm_ws.last_round().verify_disk_hits,
        0,
        "Valve+SectorA recomputed"
    );
    assert_eq!(warm_ws.last_round().verified, 2);
    assert_eq!(warm_ws.last_round().verify_cache_hits, 4);
}

#[test]
fn check_source_errors_carry_the_synthetic_input_name() {
    let err = Checker::new().check_source("def broken(:\n").unwrap_err();
    assert_eq!(err.file, INPUT_NAME);
    assert!(err.to_string().starts_with("<input>: "));
}

#[test]
fn removing_a_file_drops_its_classes() {
    let mut ws = Checker::new().into_workspace();
    ws.set_file("valve.py", VALVE_PY);
    ws.set_file("led.py", LED_PY);
    assert_eq!(ws.check().unwrap().systems.len(), 2);
    assert!(ws.remove_file("led.py"));
    assert!(!ws.remove_file("led.py"));
    let checked = ws.check().unwrap();
    assert_eq!(checked.systems.len(), 1);
    assert!(checked.systems.get("Valve").is_some());
}

#[test]
fn class_stats_are_cached_per_fingerprint() {
    let mut ws = Checker::new().jobs(1).into_workspace();
    ws.set_file("valve.py", VALVE_PY);
    ws.set_file("sector_a.py", SECTOR_A_PY);
    assert!(ws.class_stats("Valve").is_none(), "no round has run yet");
    ws.check().unwrap();

    let first = ws.class_stats("SectorA").unwrap();
    assert!(first.composite);
    assert_eq!(ws.stats().stats_computed, 1);
    assert_eq!(ws.stats().stats_cache_hits, 0);

    // Repeat queries and an unchanged re-check hit the cache.
    let again = ws.class_stats("SectorA").unwrap();
    assert_eq!(*first, *again);
    ws.check().unwrap();
    ws.class_stats("SectorA").unwrap();
    assert_eq!(ws.stats().stats_computed, 1);
    assert_eq!(ws.stats().stats_cache_hits, 2);

    // Editing the subsystem changes SectorA's dependency fingerprint, so
    // its stats are recomputed; unknown names stay None.
    ws.set_file(
        "valve.py",
        VALVE_PY.replace("\"close\"", "\"close\", \"clean\""),
    );
    ws.check().unwrap();
    ws.class_stats("SectorA").unwrap();
    assert_eq!(ws.stats().stats_computed, 2);
    assert!(ws.class_stats("NoSuchClass").is_none());

    // The cached value matches a fresh computation.
    let direct = shelley_core::system_stats(ws.check().unwrap().systems.get("Valve").unwrap());
    assert_eq!(*ws.class_stats("Valve").unwrap(), direct);
}

#[test]
fn check_files_matches_per_file_workspace_rounds() {
    let files = [
        ProjectFile::new("valve.py", VALVE_PY),
        ProjectFile::new("sector_a.py", SECTOR_A_PY),
    ];
    let one_shot = Checker::new().jobs(1).check_files(&files).unwrap();
    let mut ws = Checker::new().jobs(3).into_workspace();
    for f in &files {
        ws.set_file(f.name.clone(), f.source.clone());
    }
    let incremental = ws.check().unwrap();
    assert_eq!(
        fingerprint_report(&incremental),
        fingerprint_report(&one_shot)
    );
}

/// A random, structurally sane spec: `n` operations, each with one exit
/// whose next-set references defined operations; op 0 is initial, the
/// last op is final.
fn arb_spec(class: &'static str) -> impl Strategy<Value = ClassSpec> {
    (2usize..6)
        .prop_flat_map(|n| {
            let exits = proptest::collection::vec(proptest::collection::vec(0..n, 0..3), n);
            (Just(n), exits)
        })
        .prop_map(move |(n, exit_targets)| {
            let operations = (0..n)
                .map(|i| {
                    let kind = if i == 0 && i == n - 1 {
                        OpKind::InitialFinal
                    } else if i == 0 {
                        OpKind::Initial
                    } else if i == n - 1 {
                        OpKind::Final
                    } else {
                        OpKind::Middle
                    };
                    let next: Vec<String> =
                        exit_targets[i].iter().map(|&t| format!("op{t}")).collect();
                    OperationSpec {
                        name: format!("op{i}"),
                        kind,
                        exits: vec![ExitSpec {
                            next,
                            span: None,
                            implicit: false,
                        }],
                        span: None,
                    }
                })
                .collect();
            ClassSpec {
                name: class.into(),
                operations,
            }
        })
}

/// Renders a [`ClassSpec`] back to annotated MicroPython source.
fn render_spec_class(spec: &ClassSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "@sys");
    let _ = writeln!(out, "class {}:", spec.name);
    for op in &spec.operations {
        let dec = match (op.kind.is_initial(), op.kind.is_final()) {
            (true, true) => "@op_initial_final",
            (true, false) => "@op_initial",
            (false, true) => "@op_final",
            (false, false) => "@op",
        };
        let _ = writeln!(out, "    {dec}");
        let _ = writeln!(out, "    def {}(self):", op.name);
        for exit in &op.exits {
            let items: Vec<String> = exit.next.iter().map(|n| format!("\"{n}\"")).collect();
            let _ = writeln!(out, "        return [{}]", items.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}

/// A composite exercising the first operation chain of `dep`.
fn render_user_class(dep: &ClassSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "@sys([\"x\"])");
    let _ = writeln!(out, "class User:");
    let _ = writeln!(out, "    def __init__(self):");
    let _ = writeln!(out, "        self.x = {}()", dep.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "    @op_initial_final");
    let _ = writeln!(out, "    def run(self):");
    let _ = writeln!(out, "        self.x.{}()", dep.operations[0].name);
    let _ = writeln!(out, "        return []");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Editing one file of a two-file project and re-checking produces
    /// byte-identical output to checking the edited project from scratch —
    /// whatever the generated protocols are, and whether or not the edit
    /// introduces violations.
    #[test]
    fn incremental_recheck_equals_from_scratch(
        before in arb_spec("Gen"),
        after in arb_spec("Gen"),
    ) {
        let user = render_user_class(&before);
        let mut ws = Checker::new().jobs(1).into_workspace();
        ws.set_file("gen.py", render_spec_class(&before));
        ws.set_file("user.py", user.clone());
        ws.check().unwrap();

        // Edit the subsystem file, re-check incrementally.
        ws.set_file("gen.py", render_spec_class(&after));
        let incremental = ws.check().unwrap();

        // From scratch, same final file set.
        let scratch = Checker::new().jobs(1).check_files(&[
            ProjectFile::new("gen.py", render_spec_class(&after)),
            ProjectFile::new("user.py", user),
        ]).unwrap();

        prop_assert_eq!(
            fingerprint_report(&incremental),
            fingerprint_report(&scratch)
        );
    }

    /// Job-count never changes the output: a parallel check of a random
    /// single-module project is byte-identical to the sequential direct
    /// pipeline on the same source.
    #[test]
    fn parallel_check_equals_direct_pipeline(spec in arb_spec("Gen")) {
        let src = format!("{}\n{}", render_spec_class(&spec), render_user_class(&spec));
        let module = micropython_parser::parse_module(&src).unwrap();
        let reference = fingerprint_report(&check_module_direct(&module, &LintConfig::default()));
        let parallel = Checker::new().jobs(4).check_source(&src).unwrap();
        prop_assert_eq!(fingerprint_report(&parallel), reference);
    }
}
