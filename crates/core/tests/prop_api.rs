//! Property tests over the serde wire surface: every API type must
//! survive a JSON round trip unchanged, whatever its contents — the
//! invariant the daemon, `--format json`, and the disk cache all lean on.

use micropython_parser::Span;
use proptest::prelude::*;
use serde::json;
use shelley_core::api::{CheckSummary, ParseFailure};
use shelley_core::{Diagnostic, Method, Reply, ReplyBody, Request, WorkspaceStats, REGISTRY};
use std::time::Duration;

fn arb_stats() -> impl Strategy<Value = WorkspaceStats> {
    (
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        ),
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        ),
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        (0u64..u64::MAX, 0u64..u64::MAX),
        proptest::collection::vec(0u32..u32::MAX, 4),
    )
        .prop_map(|(a, b, c, d, nanos)| WorkspaceStats {
            rounds: a.0,
            files_parsed: a.1,
            parse_cache_hits: a.2,
            extracted: a.3,
            extract_cache_hits: b.0,
            verified: b.1,
            verify_cache_hits: b.2,
            verify_disk_hits: b.3,
            fast_path_proven: c.0,
            antichain_frontier: d.0,
            antichain_pruned: d.1,
            stats_computed: c.1,
            stats_cache_hits: c.2,
            parse_time: Duration::from_nanos(u64::from(nanos[0])),
            extract_time: Duration::from_nanos(u64::from(nanos[1])),
            verify_time: Duration::from_nanos(u64::from(nanos[2])),
            assemble_time: Duration::from_nanos(u64::from(nanos[3])),
        })
}

fn arb_diagnostic() -> impl Strategy<Value = Diagnostic> {
    (
        0..REGISTRY.len(),
        (0u8..2).prop_map(|b| b == 1),
        "[ -~]{0,40}",
        proptest::collection::vec("[ -~]{0,20}", 0..3),
        proptest::option::of("[a-z]{1,8}\\.py"),
        proptest::option::of((0usize..10_000, 0usize..100)),
    )
        .prop_map(|(code, warn, message, notes, file, span)| {
            let info = &REGISTRY[code];
            let mut d = if warn {
                Diagnostic::warning(info.code, message)
            } else {
                Diagnostic::error(info.code, message)
            };
            for note in notes {
                d = d.with_note(note);
            }
            if let Some(name) = file {
                d = d.with_file(name);
            }
            if let Some((start, len)) = span {
                d = d.with_span(Span::new(start, start + len));
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Workspace stats — the struct behind `stats` replies and the
    /// `# round` marker — round-trip exactly, durations included.
    #[test]
    fn workspace_stats_round_trip(stats in arb_stats()) {
        let back: WorkspaceStats = json::from_str(&json::to_string(&stats)).unwrap();
        prop_assert_eq!(back, stats);
    }

    /// Diagnostics with any combination of code, severity, notes, file,
    /// and span survive the wire.
    #[test]
    fn diagnostic_round_trip(d in arb_diagnostic()) {
        let back: Diagnostic = json::from_str(&json::to_string(&d)).unwrap();
        prop_assert_eq!(back, d);
    }

    /// Full request/reply envelopes round-trip, including summaries that
    /// carry the generated diagnostics and stats.
    #[test]
    fn envelope_round_trip(
        id in 0u64..u64::MAX,
        version in 0u32..u32::MAX,
        stats in arb_stats(),
        diags in proptest::collection::vec(arb_diagnostic(), 0..4),
        passed in (0u8..2).prop_map(|b| b == 1),
    ) {
        let request = Request { id, method: Method::Hello { version } };
        let back: Request = json::from_str(&json::to_string(&request)).unwrap();
        prop_assert_eq!(back, request);

        let summary = CheckSummary {
            passed,
            systems: vec!["A".to_string(), "B".to_string()],
            usage_violations: Vec::new(),
            claim_violations: Vec::new(),
            diagnostics: diags,
            parse_error: passed.then(|| ParseFailure {
                file: "x.py".to_string(),
                message: "syntax error at 0..1: boom".to_string(),
                line: Some(1),
                column: Some(2),
            }),
            stats,
        };
        let reply = Reply { id, body: ReplyBody::Check { summary } };
        let back: Reply = json::from_str(&json::to_string(&reply)).unwrap();
        prop_assert_eq!(back, reply);
    }
}
