//! Property tests over randomly generated specifications and composites.
//!
//! The invariants: every word of a spec automaton is a legal usage
//! (starts initial, follows next-sets, ends final); conforming generated
//! composites always verify; and mutations that break the protocol are
//! always caught.

use proptest::prelude::*;
use shelley_core::annotations::OpKind;
use shelley_core::spec::{intern_spec_events, spec_automaton, ClassSpec, ExitSpec, OperationSpec};
use shelley_core::{build_integration, Checker};
use shelley_regular::{Alphabet, Dfa};
use std::fmt::Write as _;
use std::sync::Arc;

/// A random, *structurally sane* spec: `n` operations, each with 1–2 exits
/// whose next-sets reference defined operations; op 0 is initial, the last
/// op is final.
fn arb_spec() -> impl Strategy<Value = ClassSpec> {
    (2usize..6)
        .prop_flat_map(|n| {
            let exits = proptest::collection::vec(proptest::collection::vec(0..n, 0..3), n);
            (Just(n), exits)
        })
        .prop_map(|(n, exit_targets)| {
            let operations = (0..n)
                .map(|i| {
                    let kind = if i == 0 && i == n - 1 {
                        OpKind::InitialFinal
                    } else if i == 0 {
                        OpKind::Initial
                    } else if i == n - 1 {
                        OpKind::Final
                    } else {
                        OpKind::Middle
                    };
                    let next: Vec<String> =
                        exit_targets[i].iter().map(|&t| format!("op{t}")).collect();
                    OperationSpec {
                        name: format!("op{i}"),
                        kind,
                        exits: vec![ExitSpec {
                            next,
                            span: None,
                            implicit: false,
                        }],
                        span: None,
                    }
                })
                .collect();
            ClassSpec {
                name: "Gen".into(),
                operations,
            }
        })
}

proptest! {
    /// Every accepted word of the spec automaton is a legal usage: first
    /// operation initial, consecutive operations allowed by some exit of
    /// the predecessor, last operation final.
    #[test]
    fn spec_words_are_legal_usages(spec in arb_spec()) {
        let mut ab = Alphabet::new();
        intern_spec_events(&spec, None, &mut ab);
        let ab = Arc::new(ab);
        let auto = spec_automaton(&spec, None, ab.clone());
        let dfa = Dfa::from_nfa(auto.nfa());
        for word in dfa.enumerate_words(5, 200) {
            if word.is_empty() {
                continue; // zero usage always legal
            }
            let names: Vec<&str> = word.iter().map(|&s| ab.name(s)).collect();
            // First must be initial.
            let first = spec.operation(names[0]).expect("known op");
            prop_assert!(first.kind.is_initial(), "{names:?}");
            // Each step allowed by some exit of the previous op.
            for pair in names.windows(2) {
                let prev = spec.operation(pair[0]).expect("known");
                let allowed = prev
                    .exits
                    .iter()
                    .any(|e| e.next.iter().any(|n| n == pair[1]));
                prop_assert!(allowed, "{:?} then {:?}", pair[0], pair[1]);
            }
            // Last must be final.
            let last = spec.operation(names[names.len() - 1]).expect("known");
            prop_assert!(last.kind.is_final(), "{names:?}");
        }
    }

    /// A composite that walks any DFA-accepted word of its subsystem's spec
    /// verifies successfully.
    #[test]
    fn conforming_composites_verify(spec in arb_spec()) {
        let mut ab = Alphabet::new();
        intern_spec_events(&spec, None, &mut ab);
        let auto = spec_automaton(&spec, None, Arc::new(ab.clone()));
        let dfa = Dfa::from_nfa(auto.nfa());
        // Pick a short nonempty accepted usage, if any.
        let Some(word) = dfa
            .enumerate_words(4, 50)
            .into_iter()
            .find(|w| !w.is_empty())
        else {
            return Ok(());
        };
        let usage: Vec<String> = word
            .iter()
            .map(|&s| format!("        self.x.{}()", ab.name(s)))
            .collect();

        let mut src = String::new();
        let _ = writeln!(src, "{}", render_spec_class(&spec));
        let _ = writeln!(src, "@sys([\"x\"])");
        let _ = writeln!(src, "class User:");
        let _ = writeln!(src, "    def __init__(self):");
        let _ = writeln!(src, "        self.x = Gen()");
        let _ = writeln!(src);
        let _ = writeln!(src, "    @op_initial_final");
        let _ = writeln!(src, "    def run(self):");
        for line in &usage {
            let _ = writeln!(src, "{line}");
        }
        let _ = writeln!(src, "        return []");

        let checked = Checker::new().check_source(&src).expect("generated source parses");
        prop_assert!(
            checked.report.usage_violations.is_empty(),
            "usage {:?} rejected:\n{}",
            word,
            checked.report.render(None)
        );
    }

    /// Truncating a conforming usage to end on a non-final operation is
    /// always caught.
    #[test]
    fn truncated_usages_are_caught(spec in arb_spec()) {
        let mut ab = Alphabet::new();
        intern_spec_events(&spec, None, &mut ab);
        let auto = spec_automaton(&spec, None, Arc::new(ab.clone()));
        let dfa = Dfa::from_nfa(auto.nfa());
        // Find an accepted word with a strict prefix ending on a non-final
        // operation.
        let words = dfa.enumerate_words(4, 100);
        let target = words.iter().find_map(|w| {
            (1..w.len()).rev().find_map(|k| {
                let prefix = &w[..k];
                let last = ab.name(prefix[prefix.len() - 1]);
                let op = spec.operation(last).expect("known");
                (!op.kind.is_final()).then(|| prefix.to_vec())
            })
        });
        let Some(prefix) = target else { return Ok(()); };

        let mut src = String::new();
        let _ = writeln!(src, "{}", render_spec_class(&spec));
        let _ = writeln!(src, "@sys([\"x\"])");
        let _ = writeln!(src, "class User:");
        let _ = writeln!(src, "    def __init__(self):");
        let _ = writeln!(src, "        self.x = Gen()");
        let _ = writeln!(src);
        let _ = writeln!(src, "    @op_initial_final");
        let _ = writeln!(src, "    def run(self):");
        for &s in &prefix {
            let _ = writeln!(src, "        self.x.{}()", ab.name(s));
        }
        let _ = writeln!(src, "        return []");

        let checked = Checker::new().check_source(&src).expect("generated source parses");
        prop_assert!(
            !checked.report.usage_violations.is_empty(),
            "truncated usage {:?} was not caught",
            prefix
        );
    }

    /// The lazy usage check (spec driven as an on-the-fly subset view) and
    /// the eager oracle (spec determinized up front) give byte-identical
    /// verdicts and counterexamples on generated composites — conforming
    /// or not.
    #[test]
    fn lazy_usage_check_matches_eager_oracle(
        spec in arb_spec(),
        calls in proptest::collection::vec(0usize..6, 0..5)
    ) {
        use shelley_core::spec::spec_automaton as build_auto;
        use shelley_regular::ops;
        use std::collections::BTreeSet;
        // An arbitrary call sequence over the spec's operations: it may be
        // a legal usage, an ordering violation, or an incomplete trace.
        let n = spec.operations.len();
        let mut src = String::new();
        let _ = writeln!(src, "{}", render_spec_class(&spec));
        let _ = writeln!(src, "@sys([\"x\"])");
        let _ = writeln!(src, "class User:");
        let _ = writeln!(src, "    def __init__(self):");
        let _ = writeln!(src, "        self.x = Gen()");
        let _ = writeln!(src, "    @op_initial_final");
        let _ = writeln!(src, "    def run(self):");
        for &c in &calls {
            let _ = writeln!(src, "        self.x.op{}()", c % n);
        }
        let _ = writeln!(src, "        return []");

        let checked = Checker::new().check_source(&src).expect("parses");
        let user = checked.systems.get("User").expect("built");
        let integration = build_integration(user);
        let alphabet = integration.nfa.alphabet().clone();
        let gen = checked.systems.get("Gen").expect("built");
        let auto = build_auto(&gen.spec, Some("x"), alphabet.clone());
        let sub_events: BTreeSet<_> = gen
            .spec
            .operations
            .iter()
            .filter_map(|op| alphabet.lookup(&format!("x.{}", op.name)))
            .collect();
        let invisible: BTreeSet<_> = alphabet
            .symbols()
            .filter(|s| !sub_events.contains(s))
            .collect();

        let lazy = ops::projected_subset(&integration.nfa, &auto.view(), &invisible);
        let eager = ops::projected_subset(
            &integration.nfa,
            &Dfa::from_nfa(auto.nfa()),
            &invisible,
        );
        prop_assert_eq!(&lazy, &eager, "engines disagree on:\n{}", src);
        // Third engine: the retained `BTreeSet` reference view. The lazy
        // path above runs on the bitset `StateSet` engine; both must
        // produce byte-identical verdicts and counterexamples.
        let reference = ops::projected_subset(
            &integration.nfa,
            &shelley_regular::lang::NfaViewRef::new(auto.nfa()),
            &invisible,
        );
        prop_assert_eq!(&lazy, &reference, "bitset vs reference on:\n{}", src);
        // Fourth engine: the antichain-pruned joint search that the
        // verification hot path actually runs. Same verdict; on a
        // violation, a witness exactly as short as the classic one that
        // replays against the integration automaton.
        let pruned =
            shelley_regular::antichain::projected_subset(&integration.nfa, &auto.view(), &invisible);
        match (&lazy, &pruned) {
            (Ok(()), Ok(())) => {}
            (Err(c), Err(p)) => {
                prop_assert_eq!(c.len(), p.len(), "witness lengths diverge on:\n{}", src);
                prop_assert!(
                    integration.nfa.accepts(p),
                    "antichain witness does not replay on:\n{}",
                    src
                );
            }
            (c, p) => {
                prop_assert!(false, "classic vs antichain: {:?} vs {:?} on:\n{}", c, p, src);
            }
        }
        // The pipeline's own verdict matches the dual-engine result.
        prop_assert_eq!(
            checked.report.usage_violations.is_empty(),
            lazy.is_ok(),
            "report disagrees with direct check on:\n{}",
            src
        );
        if let (Err(w), Some((_, v))) =
            (&lazy, checked.report.usage_violations.first())
        {
            prop_assert_eq!(w, &v.counterexample);
        }
    }

    /// The integration automaton of a conforming single-call composite
    /// accepts exactly marker-then-events words.
    #[test]
    fn integration_words_start_with_markers(spec in arb_spec()) {
        let mut ab = Alphabet::new();
        intern_spec_events(&spec, None, &mut ab);
        let auto = spec_automaton(&spec, None, Arc::new(ab.clone()));
        let dfa = Dfa::from_nfa(auto.nfa());
        let Some(word) = dfa
            .enumerate_words(3, 50)
            .into_iter()
            .find(|w| !w.is_empty())
        else {
            return Ok(());
        };
        let mut src = String::new();
        let _ = writeln!(src, "{}", render_spec_class(&spec));
        let _ = writeln!(src, "@sys([\"x\"])");
        let _ = writeln!(src, "class User:");
        let _ = writeln!(src, "    def __init__(self):");
        let _ = writeln!(src, "        self.x = Gen()");
        let _ = writeln!(src, "    @op_initial_final");
        let _ = writeln!(src, "    def run(self):");
        for &s in &word {
            let _ = writeln!(src, "        self.x.{}()", ab.name(s));
        }
        let _ = writeln!(src, "        return []");
        let checked = Checker::new().check_source(&src).expect("parses");
        let user = checked.systems.get("User").expect("built");
        let integration = build_integration(user);
        let idfa = Dfa::from_nfa(&integration.nfa);
        for w in idfa.enumerate_words(4, 100) {
            if let Some(&first) = w.first() {
                prop_assert!(
                    integration.markers.contains(&first),
                    "integration word {:?} does not start with a marker",
                    w
                );
            }
        }
    }
}

/// Renders a [`ClassSpec`] back to annotated MicroPython source.
fn render_spec_class(spec: &ClassSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "@sys");
    let _ = writeln!(out, "class {}:", spec.name);
    for op in &spec.operations {
        let dec = match (op.kind.is_initial(), op.kind.is_final()) {
            (true, true) => "@op_initial_final",
            (true, false) => "@op_initial",
            (false, true) => "@op_final",
            (false, false) => "@op",
        };
        let _ = writeln!(out, "    {dec}");
        let _ = writeln!(out, "    def {}(self):", op.name);
        for exit in &op.exits {
            let items: Vec<String> = exit.next.iter().map(|n| format!("\"{n}\"")).collect();
            let _ = writeln!(out, "        return [{}]", items.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}
