//! Backend golden suite over the `examples_py` corpus: the SMV evaluator
//! (and the symbolic BDD engine) must agree with the explicit checker on
//! **every class** of every example, not just on the classes that declare
//! claims.
//!
//! Two layers:
//!
//! * the declared `@claim`s of each example are decided under all four
//!   backend selections through [`check_claims`], with identical verdicts;
//! * every class's model — the spec automaton for base classes, the
//!   marker-erased integration automaton for composites — is probed with a
//!   synthesized battery of claims over its own alphabet, and the three
//!   engines are held verdict- and witness-length-identical.

use shelley_core::spec::{intern_spec_events, spec_automaton};
use shelley_core::{check_claims, Backend, Checker, Diagnostics, ProjectFile, SystemKind};
use shelley_ltlf::{check_claim, eval, parse_formula, ClaimOutcome};
use shelley_regular::{Nfa, Symbol};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const EXAMPLES: [&str; 3] = ["greenhouse.py", "paper.py", "sector.py"];

fn example_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples_py")
        .join(name)
}

fn check_example(name: &str) -> shelley_core::Checked {
    let text = std::fs::read_to_string(example_path(name)).unwrap();
    let files = [ProjectFile::new(name, &text)];
    Checker::new().check_files(&files).unwrap()
}

/// Every class's claim model with markers projected out, so the three
/// engines see the same visible language.
fn class_models(checked: &shelley_core::Checked) -> Vec<(String, Nfa)> {
    let mut models = Vec::new();
    for system in checked.systems.iter() {
        let model = match &system.kind {
            SystemKind::Composite(_) => {
                let (_, integration) = checked
                    .integrations
                    .iter()
                    .find(|(n, _)| n == &system.name)
                    .expect("composites that verify have an integration");
                integration.nfa.erase_symbols(&integration.markers)
            }
            SystemKind::Base => {
                let mut ab = shelley_regular::Alphabet::new();
                intern_spec_events(&system.spec, None, &mut ab);
                spec_automaton(&system.spec, None, Arc::new(ab))
                    .nfa()
                    .clone()
            }
        };
        models.push((system.name.clone(), model));
    }
    models
}

/// Decides `claim` on `model` through the emitted SMV encoding.
fn smv_check(model: &Nfa, claim: &shelley_ltlf::Formula) -> ClaimOutcome {
    let smv = shelley_smv::nfa_to_smv(model, "golden", std::slice::from_ref(claim));
    let outcome = shelley_smv::eval_spec(&smv, &smv.ltlspecs[1]).expect("emitted specs evaluate");
    if outcome.holds {
        return ClaimOutcome::Holds;
    }
    let mut by_smv_name: BTreeMap<String, Symbol> = BTreeMap::new();
    for (symbol, name) in model.alphabet().iter() {
        by_smv_name
            .entry(shelley_smv::sanitize(name))
            .or_insert(symbol);
    }
    let counterexample = outcome
        .counterexample
        .expect("violations carry a witness")
        .iter()
        .map(|n| by_smv_name[n])
        .collect();
    ClaimOutcome::Violated { counterexample }
}

#[test]
fn declared_claims_agree_across_backends_on_every_example() {
    for example in EXAMPLES {
        let checked = check_example(example);
        for system in checked.systems.iter() {
            let integration = checked
                .integrations
                .iter()
                .find(|(n, _)| n == &system.name)
                .map(|(_, i)| i);
            let reference: Vec<String> = {
                let mut diagnostics = Diagnostics::default();
                check_claims(system, integration, Backend::Explicit, &mut diagnostics)
                    .into_iter()
                    .map(|v| v.formula)
                    .collect()
            };
            for backend in [Backend::Auto, Backend::Symbolic, Backend::Smv] {
                let mut diagnostics = Diagnostics::default();
                let violated: Vec<String> =
                    check_claims(system, integration, backend, &mut diagnostics)
                        .into_iter()
                        .map(|v| v.formula)
                        .collect();
                assert_eq!(
                    violated, reference,
                    "{example}/{}: {backend} disagrees with the explicit engine",
                    system.name
                );
            }
        }
        // The corpus exercises both verdicts: paper.py's BadSector claim is
        // the paper's violation, greenhouse.py's two claims hold.
        let failed = !checked.report.claim_violations.is_empty();
        assert_eq!(failed, example == "paper.py", "{example}");
    }
}

#[test]
fn smv_evaluator_matches_the_explicit_checker_on_every_class() {
    let no_markers = BTreeSet::new();
    let mut classes = 0;
    for example in EXAMPLES {
        let checked = check_example(example);
        for (class, model) in class_models(&checked) {
            classes += 1;
            let names: Vec<String> = model
                .alphabet()
                .iter()
                .map(|(_, name)| name.to_owned())
                .collect();
            let mut battery: Vec<String> = Vec::new();
            for n in &names {
                battery.push(format!("F {n}"));
                battery.push(format!("G (! {n})"));
            }
            for pair in names.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                battery.push(format!("({a} U {b})"));
                battery.push(format!("(! {a}) W {b}"));
                battery.push(format!("G ({a} -> X {b})"));
            }
            for text in battery {
                let mut ab = (**model.alphabet()).clone();
                let claim = parse_formula(&text, &mut ab).expect("battery formulas parse");
                let explicit = check_claim(&model, &claim, &no_markers);
                let symbolic = shelley_symbolic::check_claim(&model, &claim, &no_markers);
                let smv = smv_check(&model, &claim);
                match (&explicit, &symbolic, &smv) {
                    (ClaimOutcome::Holds, ClaimOutcome::Holds, ClaimOutcome::Holds) => {}
                    (
                        ClaimOutcome::Violated { counterexample: e },
                        ClaimOutcome::Violated { counterexample: s },
                        ClaimOutcome::Violated { counterexample: v },
                    ) => {
                        assert_eq!(e.len(), s.len(), "{example}/{class}: `{text}`");
                        assert_eq!(e.len(), v.len(), "{example}/{class}: `{text}`");
                        for (engine, word) in [("explicit", e), ("symbolic", s), ("smv", v)] {
                            assert!(
                                model.accepts(word),
                                "{example}/{class}: {engine} witness for `{text}` rejected"
                            );
                            assert!(
                                !eval(&claim, word),
                                "{example}/{class}: {engine} witness for `{text}` satisfies"
                            );
                        }
                    }
                    _ => panic!(
                        "{example}/{class}: verdicts differ on `{text}`\n  explicit: \
                         {explicit:?}\n  symbolic: {symbolic:?}\n  smv: {smv:?}"
                    ),
                }
            }
        }
    }
    assert_eq!(classes, 9, "every examples_py class is covered");
}
