//! The persistent on-disk verification cache.
//!
//! A long-lived [`Workspace`](crate::workspace::Workspace) already reuses
//! verify-stage products across rounds through in-memory fingerprint
//! caches; this module carries those products across *process restarts*.
//! `shelleyc serve` loads the cache on startup and saves it on shutdown,
//! so a restarted daemon re-verifies only classes whose content (or whose
//! dependencies' content) actually changed.
//!
//! # What is persisted
//!
//! One [`SavedVerify`] per `(class fingerprint, dependency fingerprint)`
//! pair — the same content-addressed key the in-memory verify cache uses.
//! The record stores the *analysis results* (lint diagnostics, verdict
//! diagnostics, usage/claim violations, fast-path counts) but not the
//! resolved [`System`](crate::system::System) or integration automaton:
//! those are cheap, deterministic functions of the source and are rebuilt
//! on restore, which keeps the file format small and free of automaton
//! internals. The expensive passes — lints, the typestate analysis,
//! language-inclusion usage checking, and LTLf claim checking — are
//! skipped entirely on a hit.
//!
//! # File format
//!
//! Newline-delimited JSON with a versioned header:
//!
//! ```text
//! {"magic":"shelleyc-cache","format":1}
//! {"class_fp":123,"dep_fp":456,"saved":{...}}
//! {"class_fp":789,"dep_fp":101,"saved":{...}}
//! ```
//!
//! Saving writes to a temporary file in the same directory and renames it
//! into place, so readers never observe a half-written cache. Loading is
//! corruption-tolerant: a missing file or foreign header yields an empty
//! cache, and a malformed record line stops the scan while keeping every
//! record before it — with atomic saves, a torn tail is the only
//! realistic corruption, and a stale or empty cache only costs
//! re-verification, never correctness.

use crate::diagnostics::Diagnostics;
use crate::verify::claims::ClaimViolation;
use crate::verify::usage::UsageViolation;
use serde::json;
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// First-line marker distinguishing cache files from arbitrary JSON.
pub const CACHE_MAGIC: &str = "shelleyc-cache";

/// On-disk format version; bump on any incompatible record change.
///
/// A loaded file with a different version is ignored wholesale — the
/// cache is a pure accelerator, so "ignore and rebuild" is always safe.
pub const CACHE_FORMAT: u32 = 1;

/// The persisted verify-stage products of one class.
///
/// Restoring an entry replays these results after re-running only the
/// cheap, deterministic resolution step (and integration construction for
/// composites) — see
/// [`Workspace::check`](crate::workspace::Workspace::check).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SavedVerify {
    /// Per-class lint diagnostics (including typestate findings).
    pub lint_diags: Diagnostics,
    /// Verification diagnostics (`E100`/`E101` blocks, claim-parse errors).
    pub verdict_diags: Diagnostics,
    /// `INVALID SUBSYSTEM USAGE` failures of this class.
    pub usage_violations: Vec<UsageViolation>,
    /// `FAIL TO MEET REQUIREMENT` failures of this class.
    pub claim_violations: Vec<ClaimViolation>,
    /// Inclusion checks the typestate analysis proved away.
    pub fast_path_skips: usize,
}

/// One cache line: the content-addressed key plus the saved products.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct Record {
    class_fp: u64,
    dep_fp: u64,
    saved: SavedVerify,
}

/// The header line of a cache file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct Header {
    magic: String,
    format: u32,
}

/// What [`load`] recovered, plus how much it had to discard.
#[derive(Debug, Default)]
pub struct LoadOutcome {
    /// Usable records, keyed by `(class fingerprint, dep fingerprint)`.
    pub entries: HashMap<(u64, u64), Arc<SavedVerify>>,
    /// Record lines dropped as malformed (torn tail after a crash).
    pub skipped_lines: usize,
    /// Why the whole file was ignored, when it was (missing file, foreign
    /// header, version mismatch).
    pub rejected: Option<String>,
}

/// Loads a cache file, recovering every record before the first sign of
/// corruption. Never fails: any problem degrades to a smaller (possibly
/// empty) cache.
pub fn load(path: &Path) -> LoadOutcome {
    let mut outcome = LoadOutcome::default();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            outcome.rejected = Some(format!("cannot read {}: {e}", path.display()));
            return outcome;
        }
    };
    let mut lines = text.lines();
    let header: Header = match lines.next().map(json::from_str) {
        Some(Ok(header)) => header,
        Some(Err(e)) => {
            outcome.rejected = Some(format!("bad cache header: {e}"));
            return outcome;
        }
        None => {
            outcome.rejected = Some("empty cache file".to_string());
            return outcome;
        }
    };
    if header.magic != CACHE_MAGIC {
        outcome.rejected = Some(format!("foreign cache magic `{}`", header.magic));
        return outcome;
    }
    if header.format != CACHE_FORMAT {
        outcome.rejected = Some(format!(
            "cache format {} (this build speaks {CACHE_FORMAT})",
            header.format
        ));
        return outcome;
    }
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match json::from_str::<Record>(line) {
            Ok(record) => {
                outcome
                    .entries
                    .insert((record.class_fp, record.dep_fp), Arc::new(record.saved));
            }
            Err(_) => {
                // A torn tail: count the rest and keep what parsed.
                outcome.skipped_lines += 1;
            }
        }
    }
    outcome
}

/// Atomically writes `entries` to `path` (temp file + rename). Returns
/// the number of records written.
pub fn save<'a, I>(path: &Path, entries: I) -> io::Result<usize>
where
    I: IntoIterator<Item = ((u64, u64), &'a SavedVerify)>,
{
    let mut out = String::new();
    out.push_str(&json::to_string(&Header {
        magic: CACHE_MAGIC.to_string(),
        format: CACHE_FORMAT,
    }));
    out.push('\n');
    let mut count = 0;
    for ((class_fp, dep_fp), saved) in entries {
        let record = Record {
            class_fp,
            dep_fp,
            saved: saved.clone(),
        };
        out.push_str(&json::to_string(&record));
        out.push('\n');
        count += 1;
    }
    let tmp = path.with_extension("tmp");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(out.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{codes, Diagnostic};

    fn sample_saved() -> SavedVerify {
        let mut lint_diags = Diagnostics::new();
        lint_diags.push(Diagnostic::warning(codes::IMPLICIT_RETURN, "implicit"));
        SavedVerify {
            lint_diags,
            verdict_diags: Diagnostics::new(),
            usage_violations: Vec::new(),
            claim_violations: Vec::new(),
            fast_path_skips: 2,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shelley-persist-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.ndjson")
    }

    #[test]
    fn save_then_load_round_trips() {
        let path = temp_path("roundtrip");
        let saved = sample_saved();
        let n = save(&path, vec![((1u64, 2u64), &saved), ((3, 4), &saved)]).unwrap();
        assert_eq!(n, 2);
        let outcome = load(&path);
        assert!(outcome.rejected.is_none(), "{:?}", outcome.rejected);
        assert_eq!(outcome.skipped_lines, 0);
        assert_eq!(outcome.entries.len(), 2);
        assert_eq!(*outcome.entries[&(1, 2)], saved);
    }

    #[test]
    fn torn_tail_keeps_the_prefix() {
        let path = temp_path("torn");
        let saved = sample_saved();
        save(&path, vec![((1u64, 2u64), &saved), ((3, 4), &saved)]).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Simulate a crash mid-write of the last record.
        text.truncate(text.len() - 20);
        std::fs::write(&path, text).unwrap();
        let outcome = load(&path);
        assert!(outcome.rejected.is_none());
        assert_eq!(outcome.entries.len(), 1);
        assert_eq!(outcome.skipped_lines, 1);
    }

    #[test]
    fn foreign_or_future_files_are_ignored_wholesale() {
        let path = temp_path("foreign");
        std::fs::write(&path, "{\"something\":\"else\"}\n").unwrap();
        assert!(load(&path).rejected.is_some());

        std::fs::write(
            &path,
            format!(
                "{{\"magic\":\"{CACHE_MAGIC}\",\"format\":{}}}\n",
                CACHE_FORMAT + 1
            ),
        )
        .unwrap();
        let outcome = load(&path);
        assert!(outcome.rejected.unwrap().contains("format"));

        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(load(&path).rejected.is_some());

        let missing = temp_path("missing-dir").with_file_name("never-written.ndjson");
        assert!(load(&missing).rejected.is_some());
    }

    #[test]
    fn unknown_diagnostic_codes_poison_only_their_line() {
        let path = temp_path("badcode");
        let saved = sample_saved();
        save(&path, vec![((1u64, 2u64), &saved)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // A record whose diagnostic code no longer exists in the registry.
        let bad = text.replace("W003", "Z999");
        std::fs::write(&path, &bad).unwrap();
        let outcome = load(&path);
        assert!(outcome.rejected.is_none());
        assert_eq!(outcome.entries.len(), 0);
        assert_eq!(outcome.skipped_lines, 1);
    }
}
