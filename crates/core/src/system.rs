//! Building verified systems from a parsed module.
//!
//! Two passes over the module's `@sys` classes:
//!
//! 1. every class gets a [`ClassSpec`] — operations from `@op*` decorators,
//!    exit points from the lowered bodies' live returns;
//! 2. composite classes resolve their subsystem fields against `__init__`
//!    and the other specs, and invocation analysis runs.

use crate::annotations::{class_annotations, op_annotation, Claim, ClassKind};
use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use crate::extract::invocation::check_invocations;
use crate::extract::lower::{lower_method, subsystem_classes, LoweredMethod, ReturnForm};
use crate::spec::{intern_spec_events, spec_automaton, ClassSpec, ExitSpec, OperationSpec};
use micropython_parser::ast::Module;
use shelley_ir::denote_exits;
use shelley_regular::{Alphabet, Label, Nfa, StateId, Symbol};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// A subsystem instance of a composite class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subsystem {
    /// The field name (`a` in `self.a = Valve()`).
    pub field: String,
    /// The class instantiated in `__init__`.
    pub class_name: String,
}

/// What kind of system a class is.
#[derive(Debug, Clone)]
pub enum SystemKind {
    /// `@sys` — model from annotations only.
    Base,
    /// `@sys([...])` — model plus extracted behaviors over subsystems.
    Composite(CompositeInfo),
}

/// The extraction products of a composite class.
#[derive(Debug, Clone)]
pub struct CompositeInfo {
    /// Declared subsystems in decorator order.
    pub subsystems: Vec<Subsystem>,
    /// Lowered bodies of the `@op*` methods, keyed by operation name.
    pub methods: BTreeMap<String, LoweredMethod>,
    /// The composite's alphabet: its own operation names (markers) plus the
    /// qualified events of every subsystem, plus claim atoms.
    pub alphabet: Arc<Alphabet>,
    /// The marker symbols (the composite's own operation names).
    pub markers: BTreeSet<shelley_regular::Symbol>,
}

/// A verified (or verifiable) system: one `@sys` class.
#[derive(Debug, Clone)]
pub struct System {
    /// The class name.
    pub name: String,
    /// Base or composite.
    pub kind: SystemKind,
    /// The operation model.
    pub spec: ClassSpec,
    /// Temporal claims in source order.
    pub claims: Vec<Claim>,
}

impl System {
    /// Whether this is a composite system.
    pub fn is_composite(&self) -> bool {
        matches!(self.kind, SystemKind::Composite(_))
    }

    /// The composite info, if any.
    pub fn composite(&self) -> Option<&CompositeInfo> {
        match &self.kind {
            SystemKind::Composite(c) => Some(c),
            SystemKind::Base => None,
        }
    }
}

/// All systems of a module, in declaration order.
#[derive(Debug, Clone, Default)]
pub struct SystemSet {
    systems: Vec<System>,
}

impl SystemSet {
    /// Looks a system up by class name.
    pub fn get(&self, name: &str) -> Option<&System> {
        self.systems.iter().find(|s| s.name == name)
    }

    /// All systems in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &System> {
        self.systems.iter()
    }

    /// Number of systems.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether no `@sys` class was found.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }
}

impl FromIterator<System> for SystemSet {
    fn from_iter<I: IntoIterator<Item = System>>(iter: I) -> Self {
        SystemSet {
            systems: iter.into_iter().collect(),
        }
    }
}

/// The pass-1 products of one `@sys` class: its specification, lowered
/// method bodies, and the raw material subsystem resolution needs.
///
/// Produced by [`extract_class`]; consumed by [`resolve_class`]. The
/// extraction of a class depends only on the class's own text, which is
/// what makes it independently cacheable and parallelizable (see
/// [`crate::workspace`]).
#[derive(Debug, Clone)]
pub struct ClassExtraction {
    pub(crate) name: String,
    pub(crate) kind: ClassKind,
    pub(crate) claims: Vec<Claim>,
    pub(crate) spec: ClassSpec,
    pub(crate) methods: BTreeMap<String, LoweredMethod>,
    pub(crate) alphabet: Alphabet,
    pub(crate) declared_fields: Vec<String>,
    pub(crate) init_classes: BTreeMap<String, String>,
}

impl ClassExtraction {
    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The extracted operation model.
    pub fn spec(&self) -> &ClassSpec {
        &self.spec
    }

    /// The subsystem classes this class instantiates, by field: the names
    /// [`resolve_class`] will look up in its spec index. The verification
    /// outcome of the class depends only on its own text and the specs of
    /// exactly these classes.
    pub fn dependencies(&self) -> impl Iterator<Item = &str> {
        self.declared_fields
            .iter()
            .filter_map(|f| self.init_classes.get(f).map(String::as_str))
    }
}

/// Extraction (pass 1) of one class: annotations, the [`ClassSpec`] from
/// `@op*` decorators and live return sites, and lowered method bodies.
///
/// Returns `None` for classes without a `@sys` decorator; structural
/// findings go to `diagnostics`.
pub fn extract_class(
    class: &micropython_parser::ast::ClassDef,
    diagnostics: &mut Diagnostics,
) -> Option<ClassExtraction> {
    let ann = class_annotations(class, diagnostics);
    let (declared_fields, is_composite) = match &ann.kind {
        ClassKind::Unconstrained => return None,
        ClassKind::Base => (Vec::new(), false),
        ClassKind::Composite(fields) => (fields.clone(), true),
    };
    let field_set: BTreeSet<String> = declared_fields.iter().cloned().collect();
    let mut alphabet = Alphabet::new();
    let mut operations = Vec::new();
    let mut methods = BTreeMap::new();

    for func in class.methods() {
        let Some((op_kind, _)) = op_annotation(func, diagnostics) else {
            continue;
        };
        let lowered = lower_method(func, &field_set, &mut alphabet);
        // Live exits: a return site contributes an exit point iff some
        // run actually reaches it.
        let (_, tagged) = denote_exits(&lowered.program);
        let live: BTreeSet<usize> = tagged
            .iter()
            .filter(|(_, r)| !r.is_empty_language())
            .map(|(e, _)| *e)
            .collect();
        let mut exits = Vec::new();
        for (id, exit) in lowered.exits.iter().enumerate() {
            if !live.contains(&id) {
                continue;
            }
            if exit.form == ReturnForm::Implicit {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::IMPLICIT_RETURN,
                        format!(
                            "operation `{}` of `{}` may finish without a \
                             `return` declaring next operations; treated \
                             as `return []`",
                            func.name.node, class.name.node
                        ),
                    )
                    .with_span(func.name.span),
                );
            }
            if exit.form == ReturnForm::Other {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::IMPLICIT_RETURN,
                        format!(
                            "a `return` in operation `{}` of `{}` does not \
                             declare next operations (see Table 2 forms); \
                             treated as `return []`",
                            func.name.node, class.name.node
                        ),
                    )
                    .with_span(exit.span.unwrap_or(func.name.span)),
                );
            }
            exits.push(ExitSpec {
                next: exit.next.clone(),
                span: exit.span,
                implicit: exit.form == ReturnForm::Implicit,
            });
        }
        operations.push(OperationSpec {
            name: func.name.node.clone(),
            kind: op_kind,
            exits,
            span: Some(func.name.span),
        });
        methods.insert(func.name.node.clone(), lowered);
    }

    let init_classes = class
        .method("__init__")
        .map(subsystem_classes)
        .unwrap_or_default();

    Some(ClassExtraction {
        name: class.name.node.clone(),
        kind: if is_composite {
            ClassKind::Composite(declared_fields.clone())
        } else {
            ClassKind::Base
        },
        claims: ann.claims,
        spec: ClassSpec {
            name: class.name.node.clone(),
            operations,
        },
        methods,
        alphabet,
        declared_fields,
        init_classes,
    })
}

/// Resolution (pass 2) of one extracted class against the specs of every
/// class in scope: subsystem fields bind to their classes, invocation
/// analysis runs, and the composite alphabet is completed.
pub fn resolve_class(
    extraction: ClassExtraction,
    spec_index: &BTreeMap<String, ClassSpec>,
    diagnostics: &mut Diagnostics,
) -> System {
    let ClassExtraction {
        name,
        kind,
        claims,
        spec,
        methods,
        mut alphabet,
        declared_fields,
        init_classes,
    } = extraction;
    let kind = match kind {
        // Unconstrained classes were filtered out during extraction.
        ClassKind::Base | ClassKind::Unconstrained => {
            // Base classes speak their own (unqualified) operations.
            SystemKind::Base
        }
        ClassKind::Composite(_) => {
            let mut subsystems = Vec::new();
            let mut sub_specs: BTreeMap<String, &ClassSpec> = BTreeMap::new();
            for field in &declared_fields {
                let Some(class_name) = init_classes.get(field) else {
                    diagnostics.push(Diagnostic::error(
                        codes::UNKNOWN_SUBSYSTEM,
                        format!(
                            "subsystem field `{field}` of `{name}` is never \
                             assigned `self.{field} = SomeClass()` in \
                             `__init__`"
                        ),
                    ));
                    continue;
                };
                let Some(sub_spec) = spec_index.get(class_name) else {
                    diagnostics.push(Diagnostic::error(
                        codes::UNKNOWN_SUBSYSTEM,
                        format!(
                            "subsystem `{field}` of `{name}` is an instance \
                             of `{class_name}`, which is not a `@sys` class \
                             in this module"
                        ),
                    ));
                    continue;
                };
                subsystems.push(Subsystem {
                    field: field.clone(),
                    class_name: class_name.clone(),
                });
                sub_specs.insert(field.clone(), sub_spec);
            }

            // Invocation analysis (step 3).
            for (op_name, lowered) in &methods {
                check_invocations(op_name, lowered, &sub_specs, diagnostics);
            }

            // Complete the alphabet: markers + all subsystem events.
            let mut markers = BTreeSet::new();
            for op in &spec.operations {
                markers.insert(alphabet.intern(&op.name));
            }
            for sub in &subsystems {
                if let Some(sub_spec) = spec_index.get(&sub.class_name) {
                    intern_spec_events(sub_spec, Some(&sub.field), &mut alphabet);
                }
            }
            SystemKind::Composite(CompositeInfo {
                subsystems,
                methods,
                alphabet: Arc::new(alphabet),
                markers,
            })
        }
    };
    System {
        name,
        kind,
        spec,
        claims,
    }
}

/// Builds every `@sys` system of `module`, reporting structural problems.
///
/// Sequential composition of the per-class stages: [`extract_class`] for
/// every class, [`validate_spec`] for every extracted spec, then
/// [`resolve_class`] against the full spec index — the same stages
/// [`crate::workspace::Workspace`] caches and runs in parallel.
pub fn build_systems(module: &Module) -> (SystemSet, Diagnostics) {
    let mut diagnostics = Diagnostics::new();
    let mut extractions: Vec<ClassExtraction> = Vec::new();
    for class in module.classes() {
        if let Some(extraction) = extract_class(class, &mut diagnostics) {
            extractions.push(extraction);
        }
    }

    let spec_index: BTreeMap<String, ClassSpec> = extractions
        .iter()
        .map(|e| (e.name.clone(), e.spec.clone()))
        .collect();
    for extraction in &extractions {
        validate_spec(&extraction.spec, &mut diagnostics);
    }

    let systems = extractions
        .into_iter()
        .map(|e| resolve_class(e, &spec_index, &mut diagnostics))
        .collect();
    (SystemSet { systems }, diagnostics)
}

/// Structural validation of a specification: initial operations exist, next
/// references resolve, operations are reachable, and no reachable state is
/// stuck away from every final operation.
pub fn validate_spec(spec: &ClassSpec, diagnostics: &mut Diagnostics) {
    if spec.operations.is_empty() {
        diagnostics.push(Diagnostic::warning(
            codes::UNREACHABLE_OPERATION,
            format!("`@sys` class `{}` declares no operations", spec.name),
        ));
        return;
    }
    if spec.initial_ops().next().is_none() {
        diagnostics.push(Diagnostic::error(
            codes::NO_INITIAL_OPERATION,
            format!(
                "class `{}` has no `@op_initial` (or `@op_initial_final`) \
                 operation; no method may ever be invoked",
                spec.name
            ),
        ));
    }
    // Undefined next-operations.
    for op in &spec.operations {
        for exit in &op.exits {
            for next in &exit.next {
                if spec.operation(next).is_none() {
                    diagnostics.push(
                        Diagnostic::error(
                            codes::UNDEFINED_NEXT_OPERATION,
                            format!(
                                "operation `{}` of `{}` returns `\"{}\"`, which \
                                 is not an operation of the class",
                                op.name, spec.name, next
                            ),
                        )
                        .with_span(exit.span.unwrap_or_default()),
                    );
                }
            }
        }
    }
    // Reachability over the spec automaton.
    let mut alphabet = Alphabet::new();
    intern_spec_events(spec, None, &mut alphabet);
    let alphabet = Arc::new(alphabet);
    let auto = spec_automaton(spec, None, Arc::clone(&alphabet));
    let nfa = auto.nfa();
    // Forward reachability from start.
    let mut fwd = vec![false; nfa.num_states()];
    let mut stack = vec![auto.start()];
    fwd[auto.start()] = true;
    while let Some(q) = stack.pop() {
        for &(_, dst) in nfa.edges_from(q) {
            if !fwd[dst] {
                fwd[dst] = true;
                stack.push(dst);
            }
        }
    }
    let mut reachable_ops: BTreeSet<usize> = BTreeSet::new();
    for (q, _) in fwd.iter().enumerate().filter(|(_, &r)| r) {
        if let Some((oi, _)) = auto.exit_at(q) {
            reachable_ops.insert(oi);
        }
    }
    for (oi, op) in spec.operations.iter().enumerate() {
        if !reachable_ops.contains(&oi) && !op.exits.is_empty() {
            let initial: Vec<&str> = spec.initial_ops().map(|o| o.name.as_str()).collect();
            let reachable: Vec<&str> = spec
                .operations
                .iter()
                .enumerate()
                .filter(|(i, _)| reachable_ops.contains(i))
                .map(|(_, o)| o.name.as_str())
                .collect();
            diagnostics.push(
                Diagnostic::warning(
                    codes::UNREACHABLE_OPERATION,
                    format!(
                        "operation `{}` of `{}` is unreachable from the \
                         initial operations",
                        op.name, spec.name
                    ),
                )
                .with_note(format!(
                    "initial operations: {}; operations reachable from them: \
                     {} — no next-operation chain names `{}`",
                    render_list(&initial),
                    render_list(&reachable),
                    op.name
                ))
                .with_span(op.span.unwrap_or_default()),
            );
        }
    }
    // Backward reachability from accepting states: reachable-but-stuck
    // exits can never complete the object's lifetime.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nfa.num_states()];
    for q in 0..nfa.num_states() {
        for &(label, dst) in nfa.edges_from(q) {
            debug_assert!(matches!(label, Label::Sym(_)));
            preds[dst].push(q);
        }
    }
    let mut live = vec![false; nfa.num_states()];
    let mut stack: Vec<usize> = (0..nfa.num_states())
        .filter(|&q| nfa.is_accepting(q))
        .collect();
    for &q in &stack {
        live[q] = true;
    }
    while let Some(q) = stack.pop() {
        for &p in &preds[q] {
            if !live[p] {
                live[p] = true;
                stack.push(p);
            }
        }
    }
    for q in 0..nfa.num_states() {
        if fwd[q] && !live[q] {
            if let Some((oi, ei)) = auto.exit_at(q) {
                let op = &spec.operations[oi];
                let mut d = Diagnostic::warning(
                    codes::NO_FINAL_REACHABLE,
                    format!(
                        "after exit {ei} of operation `{}` of `{}`, no \
                         final operation is reachable (the object gets \
                         stuck)",
                        op.name, spec.name
                    ),
                )
                .with_span(op.exits[ei].span.unwrap_or_default());
                if let Some(witness) = shortest_trace(nfa, &alphabet, auto.start(), q) {
                    let trace = if witness.is_empty() {
                        "<empty>".to_owned()
                    } else {
                        witness.join(", ")
                    };
                    d = d.with_note(format!("shortest trace to the stuck state: {trace}"));
                }
                diagnostics.push(d);
            }
        }
    }
}

/// Renders a name list for a note (`` `a`, `b` `` or `<none>`).
fn render_list(names: &[&str]) -> String {
    if names.is_empty() {
        return "<none>".to_owned();
    }
    names
        .iter()
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The shortest event sequence leading `from → to` in `nfa` (0–1 BFS:
/// ε-edges are free, symbol edges cost one event), or `None` if
/// unreachable. Used to decorate reachability warnings with a concrete
/// witness the user can replay against the spec.
fn shortest_trace(
    nfa: &Nfa,
    alphabet: &Alphabet,
    from: StateId,
    to: StateId,
) -> Option<Vec<String>> {
    let n = nfa.num_states();
    let mut dist = vec![usize::MAX; n];
    let mut parent: Vec<Option<(StateId, Option<Symbol>)>> = vec![None; n];
    let mut queue = VecDeque::new();
    dist[from] = 0;
    queue.push_back(from);
    while let Some(q) = queue.pop_front() {
        for &(label, dst) in nfa.edges_from(q) {
            let (weight, sym) = match label {
                Label::Eps => (0, None),
                Label::Sym(s) => (1, Some(s)),
            };
            if dist[q].saturating_add(weight) < dist[dst] {
                dist[dst] = dist[q] + weight;
                parent[dst] = Some((q, sym));
                if weight == 0 {
                    queue.push_front(dst);
                } else {
                    queue.push_back(dst);
                }
            }
        }
    }
    if dist[to] == usize::MAX {
        return None;
    }
    let mut events = Vec::new();
    let mut cur = to;
    while cur != from {
        let (prev, sym) = parent[cur]?;
        if let Some(s) = sym {
            events.push(alphabet.name(s).to_owned());
        }
        cur = prev;
    }
    events.reverse();
    Some(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use micropython_parser::parse_module;

    const VALVE: &str = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
"#;

    #[test]
    fn builds_valve_base_system() {
        let m = parse_module(VALVE).unwrap();
        let (systems, diags) = build_systems(&m);
        assert!(!diags.has_errors(), "{:?}", diags);
        let valve = systems.get("Valve").unwrap();
        assert!(!valve.is_composite());
        assert_eq!(valve.spec.operations.len(), 4);
        let test = valve.spec.operation("test").unwrap();
        assert_eq!(test.exits.len(), 2);
        assert_eq!(test.exits[0].next, vec!["open"]);
        assert_eq!(test.exits[1].next, vec!["clean"]);
        assert!(test.kind.is_initial());
        assert!(valve.spec.operation("close").unwrap().kind.is_final());
    }

    #[test]
    fn builds_composite_with_subsystems() {
        let src = format!(
            "{VALVE}\n\n@sys([\"a\", \"b\"])\nclass Sector:\n    def __init__(self):\n        self.a = Valve()\n        self.b = Valve()\n\n    @op_initial_final\n    def run(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n                self.a.close()\n                return []\n            case [\"clean\"]:\n                self.a.clean()\n                return []\n"
        );
        let m = parse_module(&src).unwrap();
        let (systems, diags) = build_systems(&m);
        assert!(!diags.has_errors(), "{:?}", diags);
        let sector = systems.get("Sector").unwrap();
        let info = sector.composite().unwrap();
        assert_eq!(info.subsystems.len(), 2);
        assert_eq!(info.subsystems[0].class_name, "Valve");
        // Alphabet has markers + qualified events.
        assert!(info.alphabet.lookup("run").is_some());
        assert!(info.alphabet.lookup("a.test").is_some());
        assert!(info.alphabet.lookup("b.clean").is_some());
        assert_eq!(info.markers.len(), 1);
    }

    #[test]
    fn missing_subsystem_field_reported() {
        let src = "@sys([\"a\"])\nclass S:\n    def __init__(self):\n        pass\n\n    @op_initial_final\n    def go(self):\n        return []\n";
        let m = parse_module(src).unwrap();
        let (_, diags) = build_systems(&m);
        assert_eq!(diags.by_code(codes::UNKNOWN_SUBSYSTEM).count(), 1);
    }

    #[test]
    fn unknown_subsystem_class_reported() {
        let src = "@sys([\"a\"])\nclass S:\n    def __init__(self):\n        self.a = Mystery()\n\n    @op_initial_final\n    def go(self):\n        return []\n";
        let m = parse_module(src).unwrap();
        let (_, diags) = build_systems(&m);
        assert_eq!(diags.by_code(codes::UNKNOWN_SUBSYSTEM).count(), 1);
    }

    #[test]
    fn no_initial_reported() {
        let src = "@sys\nclass V:\n    @op\n    def a(self):\n        return []\n";
        let m = parse_module(src).unwrap();
        let (_, diags) = build_systems(&m);
        assert_eq!(diags.by_code(codes::NO_INITIAL_OPERATION).count(), 1);
    }

    #[test]
    fn undefined_next_operation_reported() {
        let src =
            "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        return [\"launch\"]\n";
        let m = parse_module(src).unwrap();
        let (_, diags) = build_systems(&m);
        assert_eq!(diags.by_code(codes::UNDEFINED_NEXT_OPERATION).count(), 1);
    }

    #[test]
    fn unreachable_operation_warned() {
        let src = "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        return []\n\n    @op_final\n    def zombie(self):\n        return []\n";
        let m = parse_module(src).unwrap();
        let (_, diags) = build_systems(&m);
        assert_eq!(diags.by_code(codes::UNREACHABLE_OPERATION).count(), 1);
        let d = diags.by_code(codes::UNREACHABLE_OPERATION).next().unwrap();
        assert!(
            d.notes
                .iter()
                .any(|n| n.contains("initial operations: `a`")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn stuck_exit_warned() {
        // b returns [] but is not final: using it strands the object.
        let src = "@sys\nclass V:\n    @op_initial\n    def a(self):\n        return [\"b\"]\n\n    @op\n    def b(self):\n        return []\n";
        let m = parse_module(src).unwrap();
        let (_, diags) = build_systems(&m);
        assert!(diags.by_code(codes::NO_FINAL_REACHABLE).count() >= 1);
        // Every stuck-state warning carries a concrete replayable witness,
        // and the one for `b`'s exit walks `a` then `b`.
        let notes: Vec<&String> = diags
            .by_code(codes::NO_FINAL_REACHABLE)
            .flat_map(|d| d.notes.iter())
            .collect();
        assert!(
            notes
                .iter()
                .all(|n| n.contains("shortest trace to the stuck state:")),
            "{notes:?}"
        );
        assert!(
            notes
                .iter()
                .any(|n| n.contains("shortest trace to the stuck state: a, b")),
            "{notes:?}"
        );
    }

    #[test]
    fn implicit_return_warned() {
        let src = "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        if x:\n            return []\n";
        let m = parse_module(src).unwrap();
        let (systems, diags) = build_systems(&m);
        assert_eq!(diags.by_code(codes::IMPLICIT_RETURN).count(), 1);
        // The implicit exit materializes in the spec.
        let v = systems.get("V").unwrap();
        assert_eq!(v.spec.operation("a").unwrap().exits.len(), 2);
        assert!(v.spec.operation("a").unwrap().exits[1].implicit);
    }

    #[test]
    fn unconstrained_classes_are_ignored() {
        let src = "class Helper:\n    def go(self):\n        return 1\n";
        let m = parse_module(src).unwrap();
        let (systems, diags) = build_systems(&m);
        assert!(systems.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn hierarchical_composites_resolve() {
        // A composite whose subsystem is itself a composite.
        let src = format!(
            "{VALVE}\n\n@sys([\"v\"])\nclass Sector:\n    def __init__(self):\n        self.v = Valve()\n\n    @op_initial_final\n    def cycle(self):\n        match self.v.test():\n            case [\"open\"]:\n                self.v.open()\n                self.v.close()\n                return []\n            case [\"clean\"]:\n                self.v.clean()\n                return []\n\n@sys([\"s\"])\nclass Controller:\n    def __init__(self):\n        self.s = Sector()\n\n    @op_initial_final\n    def tick(self):\n        self.s.cycle()\n        return []\n"
        );
        let m = parse_module(&src).unwrap();
        let (systems, diags) = build_systems(&m);
        assert!(!diags.has_errors(), "{:?}", diags);
        let ctl = systems.get("Controller").unwrap();
        let info = ctl.composite().unwrap();
        assert_eq!(info.subsystems[0].class_name, "Sector");
        assert!(info.alphabet.lookup("s.cycle").is_some());
    }
}
