//! Automaton-typestate analysis of composite classes.
//!
//! For each subsystem field `f` of a composite class, the abstract value at
//! a program point is a [`Fact`]: the set of states the dependency's spec
//! DFA may be in, plus an `unknown` bit that records every source of
//! imprecision (calls the extraction cannot replay exactly, unknown
//! operations, recursive or `break`/`continue`-carrying helpers). Transfer
//! functions step the DFA per `self.f.m()` call; sibling `self.m()` calls
//! apply interprocedural *summaries* — state-transformer tables computed
//! bottom-up over the self-call graph, with a sound all-`unknown` fallback
//! on recursion.
//!
//! Soundness contract: whenever a fact has `unknown == false`, its state
//! set is a superset of the dependency states reachable at that point along
//! the §3.2 lowering's paths (the paths verification enumerates). The CFG
//! minus its phantom `match` fall-through edges over-approximates those
//! paths, *except* around `break`/`continue` — the lowering treats loop
//! jumps as `skip` while the graph jumps — so any method containing a loop
//! jump degrades wholesale to `unknown`. On that contract ride three
//! results:
//!
//! * **definite violations** (every possibly-live dependency state is
//!   driven into the dead sink on a path that can still complete an
//!   accepted usage) are true positives of full verification;
//! * **possible violations** flag the remaining some-state-dies calls;
//! * the **fast path**: when every accepting state of the composite's own
//!   exit-point automaton carries a fact with `unknown == false` whose
//!   states are all accepting in the dependency DFA, the projected-subset
//!   check of [`crate::verify`] is guaranteed to pass and can be skipped.

use crate::dataflow::{solve, Analysis};
use crate::extract::cfg::{CallTarget, Cfg, NodeId};
use crate::spec::{intern_spec_events, spec_automaton, OperationSpec};
use crate::system::{System, SystemSet};
use micropython_parser::ast::{ClassDef, Stmt};
use micropython_parser::Span;
use shelley_regular::{Alphabet, Dfa, Label, StateSet, Word};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Abstract value at a program point: the possible dependency-DFA states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// States the dependency automaton may be in.
    pub states: StateSet,
    /// Whether paths the analysis could not track exactly also reach this
    /// point — a semantic ⊤ component: when set, *any* dependency state is
    /// additionally possible, so definite conclusions are off the table.
    pub unknown: bool,
}

impl Fact {
    fn bottom(nstates: usize) -> Fact {
        Fact {
            states: StateSet::new(nstates),
            unknown: false,
        }
    }

    fn top_unknown(nstates: usize) -> Fact {
        Fact {
            states: StateSet::new(nstates),
            unknown: true,
        }
    }

    fn singleton(nstates: usize, state: usize) -> Fact {
        let mut states = StateSet::new(nstates);
        states.insert(state);
        Fact {
            states,
            unknown: false,
        }
    }

    /// Joins `other` in, returning whether `self` grew.
    fn join_from(&mut self, other: &Fact) -> bool {
        let grew = !other.states.is_subset_of(&self.states) || (other.unknown && !self.unknown);
        self.states.union_with(&other.states);
        self.unknown |= other.unknown;
        grew
    }

    fn is_bottom(&self) -> bool {
        self.states.is_empty() && !self.unknown
    }
}

/// Interprocedural summary of one method with respect to one field: how an
/// entry dependency-state `d` is transformed by executing the method.
struct Summary {
    /// `whole[d]`: fact at the method's exit when entered in state `d`
    /// (used by sibling-call transfer).
    whole: Vec<Fact>,
    /// `per_exit[ei][d]`: fact when leaving through the operation's spec
    /// exit `ei` (empty for helper methods, which have no spec exits).
    per_exit: Vec<Vec<Fact>>,
}

impl Summary {
    fn all_unknown(nstates: usize, nexits: usize) -> Summary {
        Summary {
            whole: vec![Fact::top_unknown(nstates); nstates],
            per_exit: vec![vec![Fact::top_unknown(nstates); nstates]; nexits],
        }
    }
}

/// The intraprocedural analysis for one (method, field, entry-fact)
/// configuration.
struct FieldAnalysis<'a> {
    dfa: &'a Dfa,
    field: &'a str,
    summaries: &'a BTreeMap<String, Summary>,
    entry: Fact,
}

impl FieldAnalysis<'_> {
    fn relevant(&self, target: &CallTarget) -> bool {
        match target {
            CallTarget::Subsystem { field, .. } => field == self.field,
            CallTarget::SelfMethod { .. } => true,
        }
    }

    /// Applies one call to `cur` in place.
    fn apply(&self, target: &CallTarget, cur: &mut Fact) {
        match target {
            CallTarget::Subsystem { field, method } if field == self.field => {
                match self.dfa.alphabet().lookup(method) {
                    Some(sym) => cur.states = self.dfa.step_set(&cur.states, sym),
                    // An operation the dependency spec does not know;
                    // invocation checking reports it, we lose the trail.
                    None => {
                        cur.states.clear();
                        cur.unknown = true;
                    }
                }
            }
            CallTarget::Subsystem { .. } => {}
            CallTarget::SelfMethod { method } => match self.summaries.get(method) {
                Some(summary) => {
                    // The lowering skips sibling calls, so the identity
                    // part keeps verification's states; the summary part
                    // adds the callee's runtime effect on the field.
                    let mut add = Fact::bottom(self.dfa.num_states());
                    for d in cur.states.iter() {
                        add.join_from(&summary.whole[d]);
                    }
                    cur.join_from(&add);
                }
                None => {
                    cur.states.clear();
                    cur.unknown = true;
                }
            },
        }
    }
}

impl Analysis for FieldAnalysis<'_> {
    type Fact = Fact;

    fn bottom(&self, _cfg: &Cfg) -> Fact {
        Fact::bottom(self.dfa.num_states())
    }

    fn boundary(&self, _cfg: &Cfg) -> Fact {
        self.entry.clone()
    }

    fn join(&self, into: &mut Fact, from: &Fact) -> bool {
        into.join_from(from)
    }

    fn keep_edge(&self, cfg: &Cfg, from: NodeId, index: usize, _to: NodeId) -> bool {
        !cfg.edge_is_phantom(from, index)
    }

    fn transfer(&self, cfg: &Cfg, node: NodeId, fact: &Fact) -> Fact {
        let n = cfg.node(node);
        if n.calls.is_empty() {
            return fact.clone();
        }
        if n.calls_inexact && n.calls.iter().any(|c| self.relevant(&c.target)) {
            return Fact::top_unknown(self.dfa.num_states());
        }
        let mut cur = fact.clone();
        for call in &n.calls {
            self.apply(&call.target, &mut cur);
        }
        cur
    }
}

/// One protocol-violation finding.
#[derive(Debug, Clone)]
pub struct TypestateFinding {
    /// `true` for a definite violation (every tracked live state dies on a
    /// completing path), `false` for a possible one.
    pub definite: bool,
    /// The subsystem field.
    pub field: String,
    /// The dependency class backing the field.
    pub dep_class: String,
    /// The operation method containing the offending call.
    pub op: String,
    /// The dependency operation invoked.
    pub called: String,
    /// The call expression's span.
    pub span: Span,
    /// For definite violations: a rendered shortest dependency trace
    /// ending in the offending call.
    pub witness: Option<String>,
}

/// The analysis products for one composite class.
#[derive(Debug, Clone, Default)]
pub struct TypestateReport {
    /// Violations, in (field, operation, program-point) order.
    pub findings: Vec<TypestateFinding>,
    /// Fields whose usage is *proven* protocol-conforming: the
    /// projected-subset verification for them must pass and may be
    /// skipped.
    pub proven: BTreeSet<String>,
    /// Per field: the dependency operations some reachable statement
    /// invokes on it (dead-operation lint input).
    pub invoked: BTreeMap<String, BTreeSet<String>>,
    /// Per field: the dependency class name.
    pub deps: BTreeMap<String, String>,
}

/// Recursively scans for `break`/`continue` — the one construct where the
/// graph's paths under-approximate the lowering's (§3.2 lowers loop jumps
/// to `skip`), so affected methods must degrade to `unknown`.
fn has_loop_jump(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Break(_) | Stmt::Continue(_) => true,
        Stmt::If(i) => {
            i.branches.iter().any(|(_, b)| has_loop_jump(b))
                || i.orelse.as_deref().is_some_and(has_loop_jump)
        }
        Stmt::Match(m) => m.cases.iter().any(|c| has_loop_jump(&c.body)),
        Stmt::While(w) => has_loop_jump(&w.body),
        Stmt::For(f) => has_loop_jump(&f.body),
        _ => false,
    })
}

/// Collects the spans of every `return` statement (including
/// lowering-dead ones, which must not be mistaken for implicit exits).
fn return_spans(body: &[Stmt], out: &mut BTreeSet<Span>) {
    for s in body {
        match s {
            Stmt::Return(r) => {
                out.insert(r.span);
            }
            Stmt::If(i) => {
                for (_, b) in &i.branches {
                    return_spans(b, out);
                }
                if let Some(e) = &i.orelse {
                    return_spans(e, out);
                }
            }
            Stmt::Match(m) => {
                for c in &m.cases {
                    return_spans(&c.body, out);
                }
            }
            Stmt::While(w) => return_spans(&w.body, out),
            Stmt::For(f) => return_spans(&f.body, out),
            _ => {}
        }
    }
}

/// Classifies a kept predecessor of EXIT as a spec exit index, via the
/// return-statement span (explicit exits) or the implicit exit.
fn exit_index(
    node_span: Option<Span>,
    ret_spans: &BTreeSet<Span>,
    span_to_exit: &BTreeMap<Span, usize>,
    implicit: Option<usize>,
) -> Option<usize> {
    match node_span {
        Some(sp) if ret_spans.contains(&sp) => span_to_exit.get(&sp).copied(),
        _ => implicit,
    }
}

/// Per-class analysis state shared across fields.
struct ClassAnalysis<'a> {
    system: &'a System,
    cfgs: BTreeMap<String, Cfg>,
    loop_jump: BTreeSet<String>,
    cyclic: BTreeSet<String>,
    ret_spans: BTreeMap<String, BTreeSet<Span>>,
}

impl<'a> ClassAnalysis<'a> {
    fn new(class: &'a ClassDef, system: &'a System) -> Option<ClassAnalysis<'a>> {
        let info = system.composite()?;
        let universe: BTreeSet<String> = info.subsystems.iter().map(|s| s.field.clone()).collect();
        let mut cfgs = BTreeMap::new();
        let mut loop_jump = BTreeSet::new();
        let mut ret_spans = BTreeMap::new();
        for func in class.methods() {
            let name = func.name.node.clone();
            cfgs.insert(name.clone(), Cfg::of_body(&func.body, &universe));
            if has_loop_jump(&func.body) {
                loop_jump.insert(name.clone());
            }
            let mut spans = BTreeSet::new();
            return_spans(&func.body, &mut spans);
            ret_spans.insert(name, spans);
        }

        // Self-call graph over existing methods; anything on a cycle gets
        // the all-unknown summary.
        let mut callees: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (name, cfg) in &cfgs {
            let set = callees.entry(name).or_default();
            for (_, node) in cfg.nodes() {
                for call in &node.calls {
                    if let CallTarget::SelfMethod { method } = &call.target {
                        if let Some((k, _)) = cfgs.get_key_value(method.as_str()) {
                            set.insert(k);
                        }
                    }
                }
            }
        }
        let mut cyclic = BTreeSet::new();
        for &m in callees.keys() {
            // m is cyclic iff m is reachable from one of its callees.
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack: Vec<&str> = callees[m].iter().copied().collect();
            let mut on_cycle = false;
            while let Some(q) = stack.pop() {
                if q == m {
                    on_cycle = true;
                    break;
                }
                if seen.insert(q) {
                    stack.extend(callees.get(q).into_iter().flatten().copied());
                }
            }
            if on_cycle {
                cyclic.insert(m.to_string());
            }
        }

        Some(ClassAnalysis {
            system,
            cfgs,
            loop_jump,
            cyclic,
            ret_spans,
        })
    }

    fn op_spec(&self, name: &str) -> Option<&OperationSpec> {
        self.system.spec.operation(name)
    }

    /// Computes every method's summary for `field`, bottom-up over the
    /// self-call graph.
    fn summaries(&self, field: &str, dfa: &Dfa) -> BTreeMap<String, Summary> {
        let nstates = dfa.num_states();
        let mut done: BTreeMap<String, Summary> = BTreeMap::new();
        let n_exits = |name: &str| self.op_spec(name).map(|op| op.exits.len()).unwrap_or(0);
        // Seed the forced-unknown methods.
        for name in self.cfgs.keys() {
            if self.cyclic.contains(name) || self.loop_jump.contains(name) {
                done.insert(name.clone(), Summary::all_unknown(nstates, n_exits(name)));
            }
        }
        // The remainder is acyclic: each round resolves every method whose
        // existing callees are all resolved, so ≤ |methods| rounds suffice.
        loop {
            let mut progressed = false;
            for (name, cfg) in &self.cfgs {
                if done.contains_key(name) {
                    continue;
                }
                let ready = cfg.nodes().all(|(_, node)| {
                    node.calls.iter().all(|c| match &c.target {
                        CallTarget::SelfMethod { method } => {
                            !self.cfgs.contains_key(method) || done.contains_key(method)
                        }
                        CallTarget::Subsystem { .. } => true,
                    })
                });
                if !ready {
                    continue;
                }
                let summary = self.method_summary(name, cfg, field, dfa, &done);
                done.insert(name.clone(), summary);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        done
    }

    fn method_summary(
        &self,
        name: &str,
        cfg: &Cfg,
        field: &str,
        dfa: &Dfa,
        done: &BTreeMap<String, Summary>,
    ) -> Summary {
        let nstates = dfa.num_states();
        let op = self.op_spec(name);
        let n_exits = op.map(|o| o.exits.len()).unwrap_or(0);
        let span_to_exit: BTreeMap<Span, usize> = op
            .map(|o| {
                o.exits
                    .iter()
                    .enumerate()
                    .filter_map(|(ei, e)| e.span.map(|sp| (sp, ei)))
                    .collect()
            })
            .unwrap_or_default();
        let implicit = op.and_then(|o| o.exits.iter().position(|e| e.implicit));
        let ret_spans = &self.ret_spans[name];

        let mut whole = Vec::with_capacity(nstates);
        let mut per_exit = vec![vec![Fact::bottom(nstates); nstates]; n_exits];
        // Transfers distribute over ∪, so solving once per entry state and
        // unioning is exact for any entry set. `d` is a DFA state id, used
        // both as the singleton entry and the summary-table column.
        #[allow(clippy::needless_range_loop)]
        for d in 0..nstates {
            let analysis = FieldAnalysis {
                dfa,
                field,
                summaries: done,
                entry: Fact::singleton(nstates, d),
            };
            let solution = solve(&analysis, cfg);
            whole.push(solution.input[cfg.exit()].clone());
            if op.is_some() {
                for (from, node) in cfg.nodes() {
                    for (i, &to) in cfg.successors(from).iter().enumerate() {
                        if to != cfg.exit() || cfg.edge_is_phantom(from, i) {
                            continue;
                        }
                        if let Some(ei) = exit_index(node.span, ret_spans, &span_to_exit, implicit)
                        {
                            per_exit[ei][d].join_from(&solution.output[from]);
                        }
                    }
                }
            }
        }
        Summary { whole, per_exit }
    }
}

/// Runs the typestate analysis on a composite class. Returns `None` for
/// base classes (nothing to analyze).
pub fn analyze_class(
    class: &ClassDef,
    system: &System,
    systems: &SystemSet,
) -> Option<TypestateReport> {
    let info = system.composite()?;
    let analysis = ClassAnalysis::new(class, system)?;
    let mut report = TypestateReport::default();

    // Reachable dependency invocations (dead-operation lint input) —
    // plain graph reachability; phantom edges only add coverage, which is
    // the conservative direction for a "never invoked" warning.
    for sub in &info.subsystems {
        report.invoked.entry(sub.field.clone()).or_default();
        report
            .deps
            .insert(sub.field.clone(), sub.class_name.clone());
    }
    for cfg in analysis.cfgs.values() {
        let mut reached = vec![false; cfg.num_nodes()];
        let mut stack = vec![cfg.entry()];
        reached[cfg.entry()] = true;
        while let Some(q) = stack.pop() {
            for &next in cfg.successors(q) {
                if !reached[next] {
                    reached[next] = true;
                    stack.push(next);
                }
            }
        }
        for (id, node) in cfg.nodes() {
            if !reached[id] {
                continue;
            }
            for call in &node.calls {
                if let CallTarget::Subsystem { field, method } = &call.target {
                    if let Some(set) = report.invoked.get_mut(field) {
                        set.insert(method.clone());
                    }
                }
            }
        }
    }

    // The composite's own exit-point automaton drives the interprocedural
    // phase: abstract dependency states propagate along its edges through
    // the per-exit summaries of each operation.
    let spec_auto = spec_automaton(&system.spec, None, info.alphabet.clone());
    let nfa = spec_auto.nfa();
    let nspec = nfa.num_states();

    // Forward graph reachability and co-reachability to acceptance over
    // the spec automaton (it has no ε edges).
    let mut fwd = vec![false; nspec];
    let mut stack = vec![spec_auto.start()];
    fwd[spec_auto.start()] = true;
    while let Some(q) = stack.pop() {
        for &(_, dst) in nfa.edges_from(q) {
            if !fwd[dst] {
                fwd[dst] = true;
                stack.push(dst);
            }
        }
    }
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); nspec];
    for q in 0..nspec {
        for &(_, dst) in nfa.edges_from(q) {
            rev[dst].push(q);
        }
    }
    let mut co = vec![false; nspec];
    let mut stack: Vec<usize> = (0..nspec).filter(|&q| nfa.is_accepting(q)).collect();
    for &q in &stack {
        co[q] = true;
    }
    while let Some(q) = stack.pop() {
        for &p in &rev[q] {
            if !co[p] {
                co[p] = true;
                stack.push(p);
            }
        }
    }
    // Per operation: the spec exits that can still complete an accepted
    // usage.
    let mut live_exits: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (q, &coreachable) in co.iter().enumerate().take(nspec) {
        if let Some((oi, ei)) = spec_auto.exit_at(q) {
            if coreachable {
                live_exits.entry(oi).or_default().insert(ei);
            }
        }
    }

    for sub in &info.subsystems {
        let Some(dep) = systems.get(&sub.class_name) else {
            continue;
        };
        // The dependency's spec DFA over its own (unqualified) alphabet.
        let mut dep_alpha = Alphabet::new();
        intern_spec_events(&dep.spec, None, &mut dep_alpha);
        let dfa = spec_automaton(&dep.spec, None, Arc::new(dep_alpha)).materialize();
        let nstates = dfa.num_states();
        let dead = dfa.dead_states();
        let accepting = dfa.accepting_set();

        let summaries = analysis.summaries(&sub.field, &dfa);

        // Fixpoint of abstract dependency states over the spec automaton.
        let mut abs = vec![Fact::bottom(nstates); nspec];
        abs[spec_auto.start()] = Fact::singleton(nstates, dfa.start());
        let mut queue = VecDeque::from([spec_auto.start()]);
        let mut queued = vec![false; nspec];
        queued[spec_auto.start()] = true;
        while let Some(q) = queue.pop_front() {
            queued[q] = false;
            let src = abs[q].clone();
            if src.is_bottom() {
                continue;
            }
            for &(label, dst) in nfa.edges_from(q) {
                debug_assert!(matches!(label, Label::Sym(_)));
                let Some((oi, ei)) = spec_auto.exit_at(dst) else {
                    continue;
                };
                let op_name = &system.spec.operations[oi].name;
                let mut res = Fact {
                    states: StateSet::new(nstates),
                    unknown: src.unknown,
                };
                match summaries.get(op_name) {
                    Some(summary) => {
                        for d in src.states.iter() {
                            res.join_from(&summary.per_exit[ei][d]);
                        }
                    }
                    None => res.unknown = true,
                }
                if abs[dst].join_from(&res) && !queued[dst] {
                    queued[dst] = true;
                    queue.push_back(dst);
                }
            }
        }

        // Entry fact of each operation: join over spec states with an
        // edge invoking it.
        let mut entry: BTreeMap<usize, Fact> = BTreeMap::new();
        for (q, fact) in abs.iter().enumerate().take(nspec) {
            if fact.is_bottom() {
                continue;
            }
            for &(_, dst) in nfa.edges_from(q) {
                if let Some((oi, _)) = spec_auto.exit_at(dst) {
                    entry
                        .entry(oi)
                        .or_insert_with(|| Fact::bottom(nstates))
                        .join_from(fact);
                }
            }
        }

        // Fast path: every reachable accepted usage leaves the dependency
        // in an accepting state, with nothing untracked — the projected
        // subset check cannot fail.
        let proven = (0..nspec)
            .filter(|&q| fwd[q] && nfa.is_accepting(q))
            .all(|q| !abs[q].unknown && abs[q].states.is_subset_of(&accepting));
        if proven {
            report.proven.insert(sub.field.clone());
        }

        // Findings: walk each operation body under its entry fact.
        for (oi, op) in system.spec.operations.iter().enumerate() {
            let Some(entry_fact) = entry.get(&oi) else {
                continue;
            };
            if analysis.cyclic.contains(&op.name) || analysis.loop_jump.contains(&op.name) {
                continue;
            }
            let Some(cfg) = analysis.cfgs.get(&op.name) else {
                continue;
            };
            let field_analysis = FieldAnalysis {
                dfa: &dfa,
                field: &sub.field,
                summaries: &summaries,
                entry: entry_fact.clone(),
            };
            let solution = solve(&field_analysis, cfg);

            // Nodes that can still reach a live spec exit along kept
            // edges — a definite violation must sit on a completing path.
            let op_live = live_exits.get(&oi);
            let span_to_exit: BTreeMap<Span, usize> = op
                .exits
                .iter()
                .enumerate()
                .filter_map(|(ei, e)| e.span.map(|sp| (sp, ei)))
                .collect();
            let implicit = op.exits.iter().position(|e| e.implicit);
            let ret_spans = &analysis.ret_spans[&op.name];
            let mut can_complete = vec![false; cfg.num_nodes()];
            let mut kept_rev: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.num_nodes()];
            let mut seeds = Vec::new();
            for (from, node) in cfg.nodes() {
                for (i, &to) in cfg.successors(from).iter().enumerate() {
                    if cfg.edge_is_phantom(from, i) {
                        continue;
                    }
                    kept_rev[to].push(from);
                    if to == cfg.exit() {
                        let ei = exit_index(node.span, ret_spans, &span_to_exit, implicit);
                        if let (Some(ei), Some(live)) = (ei, op_live) {
                            if live.contains(&ei) {
                                seeds.push(from);
                            }
                        }
                    }
                }
            }
            let mut stack = Vec::new();
            for s in seeds {
                if !can_complete[s] {
                    can_complete[s] = true;
                    stack.push(s);
                }
            }
            while let Some(q) = stack.pop() {
                for &p in &kept_rev[q] {
                    if !can_complete[p] {
                        can_complete[p] = true;
                        stack.push(p);
                    }
                }
            }

            for (id, node) in cfg.nodes() {
                if node.calls.is_empty() {
                    continue;
                }
                if node.calls_inexact
                    && node
                        .calls
                        .iter()
                        .any(|c| field_analysis.relevant(&c.target))
                {
                    continue;
                }
                let mut cur = solution.input[id].clone();
                for call in &node.calls {
                    if let CallTarget::Subsystem { field, method } = &call.target {
                        if field == &sub.field {
                            if let Some(sym) = dfa.alphabet().lookup(method) {
                                let live: Vec<usize> =
                                    cur.states.iter().filter(|&q| !dead[q]).collect();
                                let dies = |&q: &usize| dead[dfa.step(q, sym)];
                                if !live.is_empty() {
                                    let all_dead = live.iter().all(dies);
                                    let any_dead = live.iter().any(dies);
                                    if all_dead && !cur.unknown && can_complete[id] {
                                        let mut best: Option<Word> = None;
                                        for &q in &live {
                                            if let Some(w) = dfa.shortest_word_to(q) {
                                                if best.as_ref().is_none_or(|b| w.len() < b.len()) {
                                                    best = Some(w);
                                                }
                                            }
                                        }
                                        let witness = best.map(|mut w| {
                                            w.push(sym);
                                            dfa.alphabet().render_word(&w)
                                        });
                                        report.findings.push(TypestateFinding {
                                            definite: true,
                                            field: sub.field.clone(),
                                            dep_class: sub.class_name.clone(),
                                            op: op.name.clone(),
                                            called: method.clone(),
                                            span: call.span,
                                            witness,
                                        });
                                    } else if any_dead {
                                        report.findings.push(TypestateFinding {
                                            definite: false,
                                            field: sub.field.clone(),
                                            dep_class: sub.class_name.clone(),
                                            op: op.name.clone(),
                                            called: method.clone(),
                                            span: call.span,
                                            witness: None,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    field_analysis.apply(&call.target, &mut cur);
                }
            }
        }
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::build_systems;
    use micropython_parser::parse_module;

    fn analyze(src: &str, class_name: &str) -> TypestateReport {
        let module = parse_module(src).unwrap();
        let (systems, _) = build_systems(&module);
        let class = module
            .classes()
            .find(|c| c.name.node == class_name)
            .unwrap();
        let system = systems.get(class_name).unwrap();
        analyze_class(class, system, &systems).unwrap()
    }

    const VALVE: &str = "\
@sys
class Valve:
    @op_initial
    def test(self):
        return [\"open\", \"clean\"]

    @op
    def open(self):
        return [\"close\"]

    @op_final
    def close(self):
        return []

    @op_final
    def clean(self):
        return []
";

    #[test]
    fn conforming_class_is_proven_and_silent() {
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.test()
        self.a.open()
        self.a.close()
        return []
"
        );
        let report = analyze(&src, "App");
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.proven.contains("a"));
        assert_eq!(
            report.invoked["a"],
            ["test", "open", "close"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        );
    }

    #[test]
    fn definite_violation_with_witness() {
        // `open` twice in a row: after test·open the spec allows only
        // close, so the second open dies from every live state.
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.test()
        self.a.open()
        self.a.open()
        self.a.close()
        return []
"
        );
        let report = analyze(&src, "App");
        let definite: Vec<_> = report.findings.iter().filter(|f| f.definite).collect();
        assert_eq!(definite.len(), 1, "{:?}", report.findings);
        assert_eq!(definite[0].called, "open");
        assert_eq!(definite[0].witness.as_deref(), Some("test, open, open"));
        assert!(!report.proven.contains("a"));
    }

    #[test]
    fn branch_divergence_is_possible_not_definite() {
        // One branch leaves the valve open, the other closed; the final
        // close dies only on the already-closed branch.
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.test()
        self.a.open()
        if hot:
            self.a.close()
        self.a.close()
        return []
"
        );
        let report = analyze(&src, "App");
        assert!(report.findings.iter().all(|f| !f.definite));
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].called, "close");
        assert!(!report.proven.contains("a"));
    }

    #[test]
    fn helper_summaries_flow_through_self_calls() {
        // The helper performs test·open; the op then closes — conforming,
        // but only visible interprocedurally. Helpers are invisible to the
        // lowering, so the field stays unproven (identity part keeps the
        // start state live) yet must produce no definite findings.
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    def warm_up(self):
        self.a.test()
        self.a.open()

    @op_initial_final
    def run(self):
        self.warm_up()
        self.a.close()
        return []
"
        );
        let report = analyze(&src, "App");
        assert!(
            report.findings.iter().all(|f| !f.definite),
            "{:?}",
            report.findings
        );
        assert!(report.invoked["a"].contains("open"));
    }

    #[test]
    fn recursion_degrades_to_unknown_without_findings() {
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    def spin(self):
        self.a.open()
        self.spin()

    @op_initial_final
    def run(self):
        self.spin()
        self.a.close()
        return []
"
        );
        let report = analyze(&src, "App");
        assert!(
            report.findings.iter().all(|f| !f.definite),
            "{:?}",
            report.findings
        );
        assert!(!report.proven.contains("a"));
    }

    #[test]
    fn dead_operation_reported_via_invoked_sets() {
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.test()
        self.a.clean()
        return []
"
        );
        let report = analyze(&src, "App");
        assert!(!report.invoked["a"].contains("open"));
        assert!(!report.invoked["a"].contains("close"));
        assert!(report.invoked["a"].contains("test"));
    }
}
