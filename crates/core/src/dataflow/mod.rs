//! A generic monotone dataflow framework over [`crate::extract::cfg`]
//! graphs.
//!
//! The definite-assignment pass of [`crate::extract::cfg::assignment_flow`]
//! hard-codes one lattice; this module factors the machinery out: an
//! [`Analysis`] supplies a join-semilattice of facts (bottom, join), a
//! boundary fact, and a per-node transfer function, and [`solve`] runs the
//! classic worklist iteration to the least fixpoint, forward or backward.
//! Clients can veto individual edges (the typestate analysis drops the
//! `match` fall-through edges that §3.2's lowering does not have) and hook
//! [`Analysis::widen`] when their lattice has unbounded ascending chains —
//! the automaton-valued lattices used here are finite, so the default
//! no-op widening already terminates.
//!
//! The flagship client is [`typestate`]: per-program-point sets of
//! dependency-automaton states, the static characterization of admissible
//! traces that powers the protocol-violation lints and the verification
//! fast path.

pub mod typestate;

use crate::extract::cfg::{Cfg, NodeId};
use std::collections::VecDeque;

/// Which way facts flow through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// From the entry node along successor edges.
    Forward,
    /// From the exit node against successor edges.
    Backward,
}

/// A monotone analysis over a join-semilattice of facts.
///
/// Correctness contract: [`join`](Self::join) computes a least upper bound
/// and [`transfer`](Self::transfer) is monotone in the fact argument;
/// together with a finite-height lattice (or a stabilizing
/// [`widen`](Self::widen)) this makes [`solve`] terminate at the least
/// fixpoint.
pub trait Analysis {
    /// The lattice element attached to each program point.
    type Fact: Clone;

    /// The flow direction (forward unless overridden).
    fn direction(&self) -> Direction {
        Direction::Forward
    }

    /// ⊥ — the fact of program points no flow reaches.
    fn bottom(&self, cfg: &Cfg) -> Self::Fact;

    /// The fact at the boundary node (entry when forward, exit when
    /// backward).
    fn boundary(&self, cfg: &Cfg) -> Self::Fact;

    /// Joins `from` into `into`, returning whether `into` grew.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// The fact on the far side of `node` given the fact flowing into it.
    fn transfer(&self, cfg: &Cfg, node: NodeId, fact: &Self::Fact) -> Self::Fact;

    /// Whether facts propagate along the `index`-th successor edge of
    /// `from`. Defaults to keeping every edge; clients aligned with the
    /// §3.2 lowering drop the edges [`Cfg::edge_is_phantom`] marks.
    fn keep_edge(&self, _cfg: &Cfg, _from: NodeId, _index: usize, _to: NodeId) -> bool {
        true
    }

    /// Widening hook, applied whenever a join grows the fact at `node`.
    /// The default keeps the joined fact unchanged, which terminates for
    /// every finite-height lattice.
    fn widen(&self, _node: NodeId, _old: &Self::Fact, new: Self::Fact) -> Self::Fact {
        new
    }
}

/// The per-node fixpoint of an [`Analysis`], in *flow* order: `input[n]`
/// is the fact flowing into `n` (after `n` in program order when the
/// analysis is backward) and `output[n]` the fact after `n`'s transfer.
///
/// Nodes the flow never reaches — including nodes cut off by
/// [`Analysis::keep_edge`] — keep ⊥ on both sides.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact flowing into each node.
    pub input: Vec<F>,
    /// Fact after each node's transfer.
    pub output: Vec<F>,
}

/// Runs `analysis` over `cfg` to its least fixpoint with a deterministic
/// FIFO worklist.
pub fn solve<A: Analysis>(analysis: &A, cfg: &Cfg) -> Solution<A::Fact> {
    let n = cfg.num_nodes();
    // Flow adjacency honoring direction and the edge filter.
    let mut flow: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for from in 0..n {
        for (i, &to) in cfg.successors(from).iter().enumerate() {
            if !analysis.keep_edge(cfg, from, i, to) {
                continue;
            }
            match analysis.direction() {
                Direction::Forward => flow[from].push(to),
                Direction::Backward => flow[to].push(from),
            }
        }
    }
    let boundary_node = match analysis.direction() {
        Direction::Forward => cfg.entry(),
        Direction::Backward => cfg.exit(),
    };
    // Flow-reachable nodes: everything else keeps ⊥ untouched (its
    // transfer must not run — `transfer(⊥)` need not be ⊥).
    let mut reached = vec![false; n];
    let mut stack = vec![boundary_node];
    reached[boundary_node] = true;
    while let Some(q) = stack.pop() {
        for &next in &flow[q] {
            if !reached[next] {
                reached[next] = true;
                stack.push(next);
            }
        }
    }

    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(cfg)).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(cfg)).collect();
    input[boundary_node] = analysis.boundary(cfg);

    let mut queue: VecDeque<NodeId> = (0..n).filter(|&q| reached[q]).collect();
    let mut queued = vec![false; n];
    for &q in &queue {
        queued[q] = true;
    }
    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        output[node] = analysis.transfer(cfg, node, &input[node]);
        for &to in &flow[node] {
            let old = input[to].clone();
            if analysis.join(&mut input[to], &output[node]) {
                let grown = input[to].clone();
                input[to] = analysis.widen(to, &old, grown);
                if !queued[to] {
                    queued[to] = true;
                    queue.push_back(to);
                }
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::cfg::assignment_flow;
    use micropython_parser::{ast::Stmt, parse_module};
    use std::collections::BTreeSet;

    fn body_of(src: &str) -> Vec<Stmt> {
        let m = parse_module(src).unwrap();
        let class = m.classes().next().unwrap();
        let body = class.methods().next().unwrap().body.clone();
        body
    }

    /// May-assignment as a generic forward analysis: fact = the set of
    /// fields assigned on some path.
    struct MayAssign;

    impl Analysis for MayAssign {
        type Fact = BTreeSet<String>;

        fn bottom(&self, _cfg: &Cfg) -> Self::Fact {
            BTreeSet::new()
        }

        fn boundary(&self, _cfg: &Cfg) -> Self::Fact {
            BTreeSet::new()
        }

        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(from.iter().cloned());
            into.len() != before
        }

        fn transfer(&self, cfg: &Cfg, node: NodeId, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            out.extend(cfg.node(node).writes.iter().cloned());
            out
        }
    }

    /// Liveness-flavored backward analysis: fields read at or after a
    /// point.
    struct ReadsLater;

    impl Analysis for ReadsLater {
        type Fact = BTreeSet<String>;

        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn bottom(&self, _cfg: &Cfg) -> Self::Fact {
            BTreeSet::new()
        }

        fn boundary(&self, _cfg: &Cfg) -> Self::Fact {
            BTreeSet::new()
        }

        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(from.iter().cloned());
            into.len() != before
        }

        fn transfer(&self, cfg: &Cfg, node: NodeId, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            out.extend(cfg.node(node).reads.iter().map(|(f, _)| f.clone()));
            out
        }
    }

    #[test]
    fn forward_solve_matches_assignment_flow() {
        let src = "class C:\n    def __init__(self):\n        self.a = Valve()\n        if ok:\n            self.b = Valve()\n        while more:\n            self.c = Valve()\n";
        let body = body_of(src);
        let universe: BTreeSet<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let cfg = Cfg::of_body(&body, &universe);
        let reference = assignment_flow(&cfg, &universe);
        let solution = solve(&MayAssign, &cfg);
        for (id, _) in cfg.nodes() {
            if reference.reachable[id] {
                assert_eq!(solution.input[id], reference.may_in[id], "node {id}");
            }
        }
    }

    #[test]
    fn backward_solve_collects_later_reads() {
        let src = "class C:\n    def m(self):\n        self.a.probe()\n        x = 1\n        self.b.probe()\n        return []\n";
        let body = body_of(src);
        let universe: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let cfg = Cfg::of_body(&body, &universe);
        let solution = solve(&ReadsLater, &cfg);
        // At entry (flow output side of the last processed node), both
        // fields are still to be read; after the `a` read only `b` remains.
        let entry_out: &BTreeSet<String> = &solution.output[cfg.entry()];
        assert!(entry_out.contains("a") && entry_out.contains("b"));
        let a_node = cfg
            .nodes()
            .find(|(_, n)| n.reads.iter().any(|(f, _)| f == "a"))
            .unwrap()
            .0;
        assert!(!solution.input[a_node].contains("a"));
        assert!(solution.input[a_node].contains("b"));
    }

    #[test]
    fn vetoed_edges_keep_bottom_downstream() {
        struct NoEdges;
        impl Analysis for NoEdges {
            type Fact = bool;
            fn bottom(&self, _cfg: &Cfg) -> bool {
                false
            }
            fn boundary(&self, _cfg: &Cfg) -> bool {
                true
            }
            fn join(&self, into: &mut bool, from: &bool) -> bool {
                let grew = *from && !*into;
                *into |= *from;
                grew
            }
            fn transfer(&self, _cfg: &Cfg, _node: NodeId, fact: &bool) -> bool {
                *fact
            }
            fn keep_edge(&self, _cfg: &Cfg, from: NodeId, _i: usize, _to: NodeId) -> bool {
                from != 0 // drop everything leaving the entry node
            }
        }
        let body = body_of("class C:\n    def m(self):\n        x = 1\n        return []\n");
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        let solution = solve(&NoEdges, &cfg);
        assert!(solution.output[cfg.entry()]);
        for (id, _) in cfg.nodes() {
            if id != cfg.entry() {
                assert!(!solution.input[id], "node {id} must stay ⊥");
            }
        }
    }
}
