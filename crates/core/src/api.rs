//! The stable wire surface of the verification engine.
//!
//! Everything a remote front end needs is expressed as plain
//! serde-serializable data: [`Request`]/[`Reply`] envelopes for the
//! daemon's newline-delimited JSON protocol, [`WireDiagnostic`] for
//! editor-facing diagnostics with resolved positions, and [`CheckSummary`]
//! as the complete, renderable result of one verification round. The
//! `--format json` renderer, `shelleyc serve`, `shelleyc watch`, and the
//! protocol golden tests all emit and parse these same structs — there is
//! no second, hand-written JSON surface.
//!
//! # Protocol
//!
//! The daemon speaks **version [`PROTOCOL_VERSION`]**: one `Request` per
//! line in, one or more `Reply` lines out, every reply echoing the
//! request's `id`. A `check` request streams one [`ReplyBody::Batch`] per
//! file that has diagnostics before the final [`ReplyBody::Check`], so
//! clients can surface per-file results as they arrive:
//!
//! ```text
//! → {"id":1,"method":{"hello":{"version":4}}}
//! ← {"id":1,"body":{"hello":{"version":4,"server":"shelleyc"}}}
//! → {"id":2,"method":{"configure":{"recover":true,"backend":"auto"}}}
//! ← {"id":2,"body":"ok"}
//! → {"id":3,"method":{"open":{"path":"valve.py","text":"..."}}}
//! ← {"id":3,"body":"ok"}
//! → {"id":4,"method":"check"}
//! ← {"id":4,"body":{"batch":{"file":"valve.py","diagnostics":[...]}}}
//! ← {"id":4,"body":{"check":{"summary":{...}}}}
//! ```
//!
//! Version 2 added the `configure` method (recovery mode). Version 3
//! extended `configure` with the claim-checking `backend`
//! ([`crate::backend::Backend`]). Version 4 added the antichain
//! inclusion-engine counters (`antichain_frontier`/`antichain_pruned`) to
//! [`WorkspaceStats`], carried by the `stats` and `check` replies;
//! everything else is unchanged.

use crate::backend::Backend;
use crate::checker::CheckError;
use crate::diagnostics::{resolved_file, Diagnostic, Diagnostics, Severity};
use crate::pipeline::{CheckReport, Checked};
use crate::verify::claims::ClaimViolation;
use crate::verify::usage::UsageViolation;
use crate::workspace::WorkspaceStats;
use micropython_parser::SourceFile;

/// The wire-protocol version this build speaks.
///
/// Bump on any incompatible change to the types in this module; the
/// daemon rejects `hello` requests carrying a different version.
pub const PROTOCOL_VERSION: u32 = 4;

/// The server name announced in [`ReplyBody::Hello`].
pub const SERVER_NAME: &str = "shelleyc";

/// One client request: an `id` echoed in every reply plus the method.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in replies.
    pub id: u64,
    /// What to do.
    pub method: Method,
}

/// The requests a verification daemon understands.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Method {
    /// Handshake: the client announces the protocol version it speaks.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Adds a file to the shared workspace (or replaces its text).
    Open {
        /// Workspace-relative file name.
        path: String,
        /// Full source text.
        text: String,
    },
    /// Replaces the text of an open file (alias of `open` semantics,
    /// kept distinct so traffic logs read naturally).
    Change {
        /// Workspace-relative file name.
        path: String,
        /// Full replacement text.
        text: String,
    },
    /// Removes a file from the shared workspace.
    Close {
        /// Workspace-relative file name.
        path: String,
    },
    /// Reconfigures the workspace. Switching `recover` re-parses every
    /// open file under the new grammar on the next `check`; switching
    /// `backend` only changes which engine decides claims (cached
    /// verdicts stay valid — all backends agree).
    Configure {
        /// Recovery mode: total parsing with degrade-to-`skip` (`W014`)
        /// instead of strict subset errors.
        recover: bool,
        /// The claim-checking engine (see [`crate::backend`]).
        backend: Backend,
    },
    /// Runs one verification round over the current file set.
    Check,
    /// Reports workspace statistics without verifying anything.
    Stats,
    /// Persists the cache and stops the daemon.
    Shutdown,
}

/// One server reply: the originating request `id` plus the payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Reply {
    /// The `id` of the request this answers.
    pub id: u64,
    /// The payload.
    pub body: ReplyBody,
}

/// The reply payloads a verification daemon produces.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ReplyBody {
    /// Handshake answer.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// The server's name ([`SERVER_NAME`]).
        server: String,
    },
    /// Acknowledges a state change (`open`/`change`/`close`).
    Ok,
    /// One file's diagnostics, streamed while a `check` runs. `file` is
    /// `None` for project-level diagnostics that belong to no single file.
    Batch {
        /// The file the diagnostics belong to.
        file: Option<String>,
        /// Editor-facing diagnostics with resolved positions.
        diagnostics: Vec<WireDiagnostic>,
    },
    /// The final result of a `check` round.
    Check {
        /// Everything the round produced.
        summary: CheckSummary,
    },
    /// Workspace statistics.
    Stats {
        /// Counters accumulated since the workspace was created.
        totals: WorkspaceStats,
        /// Counters of the most recent round only.
        last_round: WorkspaceStats,
    },
    /// The request failed (malformed, unknown version, engine error).
    Error {
        /// Human-readable explanation.
        message: String,
    },
}

/// A diagnostic with positions resolved to 1-based line/column — the
/// editor-facing shape `--format json` has always emitted.
///
/// Field order is the wire order: `code`, `severity`, `message`, `notes`,
/// then the optional `file`/`line`/`column` (omitted when unknown).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireDiagnostic {
    /// Stable code (`"E001"`, …; see [`crate::diagnostics::codes`]).
    pub code: String,
    /// Error or warning.
    pub severity: Severity,
    /// Main message.
    pub message: String,
    /// Additional free-form lines.
    pub notes: Vec<String>,
    /// The file the diagnostic belongs to, when known.
    pub file: Option<String>,
    /// 1-based line of the primary location, when resolvable.
    pub line: Option<usize>,
    /// 1-based column of the primary location, when resolvable.
    pub column: Option<usize>,
}

impl WireDiagnostic {
    /// Resolves `d` against `source` (positions are only emitted when the
    /// diagnostic has a span *and* a source file to resolve it in).
    pub fn new(d: &Diagnostic, source: Option<&SourceFile>) -> Self {
        let (line, column) = match (d.span, source) {
            (Some(span), Some(file)) => {
                let (line, column) = file.line_col(span.start);
                (Some(line), Some(column))
            }
            _ => (None, None),
        };
        WireDiagnostic {
            code: d.code.to_string(),
            severity: d.severity,
            message: d.message.clone(),
            notes: d.notes.clone(),
            file: resolved_file(d, source),
            line,
            column,
        }
    }

    /// Renders the diagnostic exactly as the text renderer does without a
    /// source snippet: `severity [code]: message` plus indented notes.
    pub fn render_text(&self) -> String {
        let mut out = format!("{} [{}]: {}", self.severity, self.code, self.message);
        for note in &self.notes {
            out.push_str("\n  ");
            out.push_str(note);
        }
        out
    }
}

/// An `INVALID SUBSYSTEM USAGE` failure attributed to its class.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UsageReport {
    /// The composite class that misuses a subsystem.
    pub class: String,
    /// The violation, counterexample included.
    pub violation: UsageViolation,
}

/// A `FAIL TO MEET REQUIREMENT` failure attributed to its class.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClaimReport {
    /// The class whose claim fails.
    pub class: String,
    /// The violation, counterexample included.
    pub violation: ClaimViolation,
}

/// A parse failure that aborted the round before verification.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParseFailure {
    /// The first file (in project order) that failed to parse.
    pub file: String,
    /// The parser's message (`syntax error at S..E: …`).
    pub message: String,
    /// 1-based line of the error, when the source was available.
    pub line: Option<usize>,
    /// 1-based column of the error, when the source was available.
    pub column: Option<usize>,
}

impl ParseFailure {
    /// Captures a [`CheckError`], resolving the span against `source`
    /// when the failing file's text is at hand.
    pub fn new(error: &CheckError, source: Option<&str>) -> Self {
        let (line, column) = match source {
            Some(text) => {
                let file = SourceFile::new(error.file.clone(), text.to_owned());
                let (line, column) = file.line_col(error.error.span.start);
                (Some(line), Some(column))
            }
            None => (None, None),
        };
        ParseFailure {
            file: error.file.clone(),
            message: error.error.to_string(),
            line,
            column,
        }
    }

    /// Renders the failure as `watch` always printed it:
    /// `file: syntax error at S..E: …`.
    pub fn render_text(&self) -> String {
        format!("{}: {}", self.file, self.message)
    }
}

/// The complete result of one verification round, in wire form.
///
/// Carries full-fidelity diagnostics (byte spans, not resolved positions)
/// and the structured violations, so a thin client can rebuild the exact
/// [`CheckReport`] and render it byte-identically to an in-process run —
/// [`render_text`](Self::render_text) is that reconstruction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CheckSummary {
    /// Whether verification passed (parse ok, no errors of any kind).
    pub passed: bool,
    /// Names of all verified `@sys` classes, in declaration order.
    pub systems: Vec<String>,
    /// `INVALID SUBSYSTEM USAGE` failures, in class order.
    pub usage_violations: Vec<UsageReport>,
    /// `FAIL TO MEET REQUIREMENT` failures, in class order.
    pub claim_violations: Vec<ClaimReport>,
    /// All structural diagnostics, normalized, with byte spans.
    pub diagnostics: Vec<Diagnostic>,
    /// Set when parsing failed; verification did not run.
    pub parse_error: Option<ParseFailure>,
    /// Counters and timings of this round.
    pub stats: WorkspaceStats,
}

impl CheckSummary {
    /// Summarizes a successful round.
    pub fn new(checked: &Checked, stats: WorkspaceStats) -> Self {
        CheckSummary {
            passed: checked.report.passed(),
            systems: checked.systems.iter().map(|s| s.name.clone()).collect(),
            usage_violations: checked
                .report
                .usage_violations
                .iter()
                .map(|(class, violation)| UsageReport {
                    class: class.clone(),
                    violation: violation.clone(),
                })
                .collect(),
            claim_violations: checked
                .report
                .claim_violations
                .iter()
                .map(|(class, violation)| ClaimReport {
                    class: class.clone(),
                    violation: violation.clone(),
                })
                .collect(),
            diagnostics: checked.report.diagnostics.iter().cloned().collect(),
            parse_error: None,
            stats,
        }
    }

    /// Summarizes a round that died in the parser.
    pub fn from_parse_error(failure: ParseFailure, stats: WorkspaceStats) -> Self {
        CheckSummary {
            passed: false,
            systems: Vec::new(),
            usage_violations: Vec::new(),
            claim_violations: Vec::new(),
            diagnostics: Vec::new(),
            parse_error: Some(failure),
            stats,
        }
    }

    /// Rebuilds the in-memory report this summary was taken from.
    pub fn report(&self) -> CheckReport {
        let mut diagnostics = Diagnostics::new();
        for d in &self.diagnostics {
            diagnostics.push(d.clone());
        }
        CheckReport {
            diagnostics,
            usage_violations: self
                .usage_violations
                .iter()
                .map(|r| (r.class.clone(), r.violation.clone()))
                .collect(),
            claim_violations: self
                .claim_violations
                .iter()
                .map(|r| (r.class.clone(), r.violation.clone()))
                .collect(),
        }
    }

    /// Renders the round exactly as an in-process `check` prints it: the
    /// report (violation blocks, then diagnostics), then the `OK:` line on
    /// success — or the parse error alone when parsing failed.
    pub fn render_text(&self) -> String {
        if let Some(failure) = &self.parse_error {
            return format!("{}\n", failure.render_text());
        }
        let mut out = self.report().render(None);
        if self.passed {
            out.push_str(&format!("OK: {} system(s) verified\n", self.systems.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use serde::json;

    #[test]
    fn request_round_trips_through_json() {
        let requests = vec![
            Request {
                id: 1,
                method: Method::Hello {
                    version: PROTOCOL_VERSION,
                },
            },
            Request {
                id: 2,
                method: Method::Open {
                    path: "v.py".into(),
                    text: "x = 1\n".into(),
                },
            },
            Request {
                id: 3,
                method: Method::Check,
            },
            Request {
                id: 4,
                method: Method::Shutdown,
            },
        ];
        for request in requests {
            let line = json::to_string(&request);
            assert!(!line.contains('\n'), "wire lines are single lines: {line}");
            let back: Request = json::from_str(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn check_method_uses_bare_string_encoding() {
        let line = json::to_string(&Request {
            id: 3,
            method: Method::Check,
        });
        assert_eq!(line, r#"{"id":3,"method":"check"}"#);
    }

    /// Golden wire fixtures: the exact JSON of representative requests
    /// and replies. Any change here is a protocol break and must bump
    /// [`PROTOCOL_VERSION`].
    #[test]
    fn golden_wire_fixtures_pin_the_protocol() {
        let fixtures: Vec<(Request, &str)> = vec![
            (
                Request {
                    id: 1,
                    method: Method::Hello { version: 4 },
                },
                r#"{"id":1,"method":{"hello":{"version":4}}}"#,
            ),
            (
                Request {
                    id: 6,
                    method: Method::Configure {
                        recover: true,
                        backend: Backend::Symbolic,
                    },
                },
                r#"{"id":6,"method":{"configure":{"recover":true,"backend":"symbolic"}}}"#,
            ),
            (
                Request {
                    id: 2,
                    method: Method::Open {
                        path: "led.py".into(),
                        text: "x = 1\n".into(),
                    },
                },
                r#"{"id":2,"method":{"open":{"path":"led.py","text":"x = 1\n"}}}"#,
            ),
            (
                Request {
                    id: 3,
                    method: Method::Close {
                        path: "led.py".into(),
                    },
                },
                r#"{"id":3,"method":{"close":{"path":"led.py"}}}"#,
            ),
            (
                Request {
                    id: 4,
                    method: Method::Stats,
                },
                r#"{"id":4,"method":"stats"}"#,
            ),
            (
                Request {
                    id: 5,
                    method: Method::Shutdown,
                },
                r#"{"id":5,"method":"shutdown"}"#,
            ),
        ];
        for (request, golden) in fixtures {
            assert_eq!(json::to_string(&request), golden);
            let back: Request = json::from_str(golden).unwrap();
            assert_eq!(back, request);
        }

        let replies: Vec<(Reply, &str)> = vec![
            (
                Reply {
                    id: 1,
                    body: ReplyBody::Hello {
                        version: PROTOCOL_VERSION,
                        server: SERVER_NAME.into(),
                    },
                },
                r#"{"id":1,"body":{"hello":{"version":4,"server":"shelleyc"}}}"#,
            ),
            (
                Reply {
                    id: 2,
                    body: ReplyBody::Ok,
                },
                r#"{"id":2,"body":"ok"}"#,
            ),
            (
                Reply {
                    id: 3,
                    body: ReplyBody::Batch {
                        file: Some("led.py".into()),
                        diagnostics: vec![WireDiagnostic {
                            code: "W003".into(),
                            severity: Severity::Warning,
                            message: "m".into(),
                            notes: vec!["n".into()],
                            file: Some("led.py".into()),
                            line: Some(2),
                            column: Some(5),
                        }],
                    },
                },
                concat!(
                    r#"{"id":3,"body":{"batch":{"file":"led.py","diagnostics":"#,
                    r#"[{"code":"W003","severity":"warning","message":"m","notes":["n"],"#,
                    r#""file":"led.py","line":2,"column":5}]}}}"#,
                ),
            ),
            (
                Reply {
                    id: 0,
                    body: ReplyBody::Error {
                        message: "malformed request".into(),
                    },
                },
                r#"{"id":0,"body":{"error":{"message":"malformed request"}}}"#,
            ),
        ];
        for (reply, golden) in replies {
            assert_eq!(json::to_string(&reply), golden);
            let back: Reply = json::from_str(golden).unwrap();
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn summary_render_matches_direct_report() {
        let checked = Checker::new()
            .check_source(crate::pipeline::tests::PAPER_SOURCE)
            .unwrap();
        let summary = CheckSummary::new(&checked, WorkspaceStats::default());
        assert!(!summary.passed);
        assert_eq!(summary.render_text(), checked.report.render(None));
        // And it survives the wire.
        let back: CheckSummary = json::from_str(&json::to_string(&summary)).unwrap();
        assert_eq!(back.render_text(), checked.report.render(None));
        assert_eq!(back, summary);
    }

    #[test]
    fn wire_diagnostic_render_matches_diagnostic_render() {
        let checked = Checker::new()
            .check_source(crate::pipeline::tests::PAPER_SOURCE)
            .unwrap();
        for d in checked.report.diagnostics.iter() {
            let wire = WireDiagnostic::new(d, None);
            assert_eq!(wire.render_text(), d.render(None));
        }
    }
}
