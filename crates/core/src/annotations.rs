//! Shelley's annotations (Table 1 of the paper).
//!
//! | Annotation              | Applies to | Meaning                          |
//! |-------------------------|------------|----------------------------------|
//! | `@claim("φ")`           | class      | temporal requirement             |
//! | `@sys`                  | class      | base class                       |
//! | `@sys(["s1", …, "sn"])` | class      | composite class                  |
//! | `@op_initial`           | method     | invoke in first place            |
//! | `@op_final`             | method     | invoke in last place             |
//! | `@op_initial_final`     | method     | invoke in first and last places  |
//! | `@op`                   | method     | in between initial and final     |

use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use micropython_parser::ast::{ClassDef, ExprKind, FuncDef};
use micropython_parser::Span;

/// How a class participates in verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassKind {
    /// `@sys` — a base class: its model comes solely from annotations and
    /// `return` lists; method bodies are not analyzed.
    Base,
    /// `@sys(["a", "b"])` — a composite class using the named subsystem
    /// fields; method bodies are extracted and verified.
    Composite(Vec<String>),
    /// No `@sys` decorator — the class is ignored by Shelley.
    Unconstrained,
}

/// A temporal claim attached to a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// The raw formula text, exactly as written in the source.
    pub formula: String,
    /// Where the claim was written.
    pub span: Span,
}

/// Parsed class-level annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassAnnotations {
    /// Base / composite / unconstrained.
    pub kind: ClassKind,
    /// Temporal claims, in source order.
    pub claims: Vec<Claim>,
}

/// How a method participates in the model (Table 1, method annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `@op_initial` — may be invoked first.
    Initial,
    /// `@op_final` — may be invoked last.
    Final,
    /// `@op_initial_final` — may be invoked first and last.
    InitialFinal,
    /// `@op` — only in between initial and final operations.
    Middle,
}

impl OpKind {
    /// Whether this operation can start an object's lifetime.
    pub fn is_initial(self) -> bool {
        matches!(self, OpKind::Initial | OpKind::InitialFinal)
    }

    /// Whether this operation can end an object's lifetime.
    pub fn is_final(self) -> bool {
        matches!(self, OpKind::Final | OpKind::InitialFinal)
    }
}

/// Extracts the class-level annotations of `class_def`.
///
/// Unknown decorators produce `W005` warnings; malformed `@sys`/`@claim`
/// arguments produce `E004` errors (the class is then treated as
/// unconstrained).
pub fn class_annotations(class_def: &ClassDef, diagnostics: &mut Diagnostics) -> ClassAnnotations {
    let mut kind = ClassKind::Unconstrained;
    let mut claims = Vec::new();
    for dec in &class_def.decorators {
        match dec.name() {
            Some("sys") => {
                let args = dec.args();
                if args.is_empty() {
                    kind = ClassKind::Base;
                } else if args.len() == 1 {
                    match args[0].as_string_list() {
                        Some(names) if !names.is_empty() => {
                            let owned: Vec<String> = names.iter().map(|s| s.to_string()).collect();
                            let mut sorted = owned.clone();
                            sorted.sort();
                            sorted.dedup();
                            if sorted.len() != owned.len() {
                                diagnostics.push(
                                    Diagnostic::error(
                                        codes::BAD_ANNOTATION,
                                        "duplicate subsystem names in `@sys([...])`",
                                    )
                                    .with_span(dec.span),
                                );
                            }
                            kind = ClassKind::Composite(owned);
                        }
                        _ => {
                            diagnostics.push(
                                Diagnostic::error(
                                    codes::BAD_ANNOTATION,
                                    "`@sys` expects a non-empty list of subsystem \
                                     field names, e.g. `@sys([\"a\", \"b\"])`",
                                )
                                .with_span(dec.span),
                            );
                        }
                    }
                } else {
                    diagnostics.push(
                        Diagnostic::error(
                            codes::BAD_ANNOTATION,
                            "`@sys` takes at most one argument",
                        )
                        .with_span(dec.span),
                    );
                }
            }
            Some("claim") => {
                let args = dec.args();
                match args {
                    [arg] => match &arg.kind {
                        ExprKind::Str(s) => claims.push(Claim {
                            formula: s.clone(),
                            span: arg.span,
                        }),
                        _ => diagnostics.push(
                            Diagnostic::error(
                                codes::BAD_ANNOTATION,
                                "`@claim` expects a string formula",
                            )
                            .with_span(dec.span),
                        ),
                    },
                    _ => diagnostics.push(
                        Diagnostic::error(
                            codes::BAD_ANNOTATION,
                            "`@claim` expects exactly one string argument",
                        )
                        .with_span(dec.span),
                    ),
                }
            }
            Some(other) => diagnostics.push(
                Diagnostic::warning(
                    codes::UNKNOWN_DECORATOR,
                    format!("unknown class decorator `@{other}` ignored"),
                )
                .with_span(dec.span),
            ),
            None => diagnostics.push(
                Diagnostic::warning(
                    codes::UNKNOWN_DECORATOR,
                    "unrecognized class decorator expression ignored",
                )
                .with_span(dec.span),
            ),
        }
    }
    ClassAnnotations { kind, claims }
}

/// Extracts the operation annotation of a method, if any.
///
/// Methods without an `@op*` decorator (such as `__init__`) are not part of
/// the model and return `None`.
pub fn op_annotation(func: &FuncDef, diagnostics: &mut Diagnostics) -> Option<(OpKind, Span)> {
    let mut found: Option<(OpKind, Span)> = None;
    for dec in &func.decorators {
        let kind = match dec.name() {
            Some("op") => OpKind::Middle,
            Some("op_initial") => OpKind::Initial,
            Some("op_final") => OpKind::Final,
            Some("op_initial_final") => OpKind::InitialFinal,
            Some(other) => {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::UNKNOWN_DECORATOR,
                        format!("unknown method decorator `@{other}` ignored"),
                    )
                    .with_span(dec.span),
                );
                continue;
            }
            None => continue,
        };
        if found.is_some() {
            diagnostics.push(
                Diagnostic::error(
                    codes::BAD_ANNOTATION,
                    format!(
                        "method `{}` has multiple operation decorators",
                        func.name.node
                    ),
                )
                .with_span(dec.span),
            );
        }
        found = Some((kind, dec.span));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use micropython_parser::parse_module;

    fn first_class(src: &str) -> (ClassAnnotations, Diagnostics) {
        let m = parse_module(src).unwrap();
        let c = m.classes().next().unwrap();
        let mut diags = Diagnostics::new();
        let ann = class_annotations(c, &mut diags);
        (ann, diags)
    }

    #[test]
    fn base_class() {
        let (ann, diags) = first_class("@sys\nclass V:\n    pass\n");
        assert_eq!(ann.kind, ClassKind::Base);
        assert!(diags.is_empty());
    }

    #[test]
    fn composite_class_with_claim() {
        let (ann, diags) = first_class(
            "@claim(\"(!a.open) W b.open\")\n@sys([\"a\", \"b\"])\nclass S:\n    pass\n",
        );
        assert_eq!(ann.kind, ClassKind::Composite(vec!["a".into(), "b".into()]));
        assert_eq!(ann.claims.len(), 1);
        assert_eq!(ann.claims[0].formula, "(!a.open) W b.open");
        assert!(diags.is_empty());
    }

    #[test]
    fn unconstrained_class() {
        let (ann, _) = first_class("class P:\n    pass\n");
        assert_eq!(ann.kind, ClassKind::Unconstrained);
    }

    #[test]
    fn malformed_sys_args() {
        let (ann, diags) = first_class("@sys(42)\nclass V:\n    pass\n");
        assert_eq!(ann.kind, ClassKind::Unconstrained);
        assert!(diags.has_errors());
        assert_eq!(diags.by_code(codes::BAD_ANNOTATION).count(), 1);
    }

    #[test]
    fn empty_sys_list_rejected() {
        let (_, diags) = first_class("@sys([])\nclass V:\n    pass\n");
        assert!(diags.has_errors());
    }

    #[test]
    fn unknown_decorator_warns() {
        let (_, diags) = first_class("@gadget\n@sys\nclass V:\n    pass\n");
        assert!(!diags.has_errors());
        assert_eq!(diags.by_code(codes::UNKNOWN_DECORATOR).count(), 1);
    }

    #[test]
    fn op_annotations_all_kinds() {
        let src = r#"
class V:
    @op_initial
    def a(self):
        pass

    @op
    def b(self):
        pass

    @op_final
    def c(self):
        pass

    @op_initial_final
    def d(self):
        pass

    def helper(self):
        pass
"#;
        let m = parse_module(src).unwrap();
        let c = m.classes().next().unwrap();
        let mut diags = Diagnostics::new();
        let kinds: Vec<Option<OpKind>> = c
            .methods()
            .map(|f| op_annotation(f, &mut diags).map(|(k, _)| k))
            .collect();
        assert_eq!(
            kinds,
            vec![
                Some(OpKind::Initial),
                Some(OpKind::Middle),
                Some(OpKind::Final),
                Some(OpKind::InitialFinal),
                None,
            ]
        );
        assert!(diags.is_empty());
        assert!(OpKind::InitialFinal.is_initial() && OpKind::InitialFinal.is_final());
        assert!(!OpKind::Middle.is_initial() && !OpKind::Middle.is_final());
    }

    #[test]
    fn duplicate_op_decorators_error() {
        let src = "class V:\n    @op\n    @op_final\n    def a(self):\n        pass\n";
        let m = parse_module(src).unwrap();
        let c = m.classes().next().unwrap();
        let mut diags = Diagnostics::new();
        let _ = op_annotation(c.method("a").unwrap(), &mut diags);
        assert!(diags.has_errors());
    }
}
