//! System statistics: the quantitative summary of an extracted model.
//!
//! Used by the CLI's `stats` subcommand and the benchmark harness to report
//! the sizes the verification passes operate on (Shelley's design goal —
//! §2's "to make our analysis scalable" — is visible in these numbers: the
//! model is an automaton over operations, not program states).

use crate::integration::build_integration;
use crate::spec::{intern_spec_events, spec_automaton, ClassSpec};
use crate::system::System;
use shelley_ir::{denote_exits, infer};
use shelley_regular::Alphabet;
use std::fmt;
use std::sync::Arc;

/// Quantitative summary of one system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemStats {
    /// The class name.
    pub name: String,
    /// Whether the system is composite.
    pub composite: bool,
    /// Number of operations.
    pub operations: usize,
    /// Total exit points across operations.
    pub exits: usize,
    /// Number of initial operations.
    pub initial_ops: usize,
    /// Number of final operations.
    pub final_ops: usize,
    /// Spec-automaton states (exit-point automaton).
    pub spec_states: usize,
    /// Minimal-DFA states of the spec language.
    pub spec_min_dfa_states: usize,
    /// Composite only: subsystem count.
    pub subsystems: usize,
    /// Composite only: integration-NFA states.
    pub integration_states: usize,
    /// Composite only: integration alphabet size (markers + events).
    pub alphabet_size: usize,
    /// Composite only: total inferred-behavior regex nodes across ops.
    pub behavior_nodes: usize,
    /// Number of claims.
    pub claims: usize,
}

impl fmt::Display for SystemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({})",
            self.name,
            if self.composite { "composite" } else { "base" }
        )?;
        writeln!(
            f,
            "  operations: {} ({} initial, {} final), exit points: {}",
            self.operations, self.initial_ops, self.final_ops, self.exits
        )?;
        writeln!(
            f,
            "  spec automaton: {} states (minimal DFA: {})",
            self.spec_states, self.spec_min_dfa_states
        )?;
        if self.composite {
            writeln!(
                f,
                "  subsystems: {}, integration NFA: {} states, alphabet: {}",
                self.subsystems, self.integration_states, self.alphabet_size
            )?;
            writeln!(
                f,
                "  inferred behavior size: {} regex nodes",
                self.behavior_nodes
            )?;
        }
        write!(f, "  claims: {}", self.claims)
    }
}

/// Computes the statistics of a system.
///
/// Determinizing and minimizing the spec language is export-grade work, so
/// it runs through [`SpecAutomaton::materialize`](crate::spec::SpecAutomaton::materialize);
/// repeated callers should go through
/// [`Workspace::class_stats`](crate::workspace::Workspace::class_stats),
/// which caches the result per class fingerprint.
pub fn system_stats(system: &System) -> SystemStats {
    let spec: &ClassSpec = &system.spec;
    let mut ab = Alphabet::new();
    intern_spec_events(spec, None, &mut ab);
    let auto = spec_automaton(spec, None, Arc::new(ab));
    let spec_states = auto.nfa().num_states();
    let spec_min_dfa_states = auto.materialize().minimize().num_states();

    let (composite, subsystems, integration_states, alphabet_size, behavior_nodes) = match system
        .composite()
    {
        None => (false, 0, 0, 0, 0),
        Some(info) => {
            let integration = build_integration(system);
            let behavior_nodes = info
                .methods
                .values()
                .map(|m| {
                    let (_, exits) = denote_exits(&m.program);
                    exits.iter().map(|(_, r)| r.size()).sum::<usize>() + infer(&m.program).size()
                })
                .sum();
            (
                true,
                info.subsystems.len(),
                integration.nfa.num_states(),
                info.alphabet.len(),
                behavior_nodes,
            )
        }
    };

    SystemStats {
        name: system.name.clone(),
        composite,
        operations: spec.operations.len(),
        exits: spec.operations.iter().map(|o| o.exits.len()).sum(),
        initial_ops: spec
            .operations
            .iter()
            .filter(|o| o.kind.is_initial())
            .count(),
        final_ops: spec.operations.iter().filter(|o| o.kind.is_final()).count(),
        spec_states,
        spec_min_dfa_states,
        subsystems,
        integration_states,
        alphabet_size,
        behavior_nodes,
        claims: system.claims.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;

    const SRC: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@claim("(!a.open) W a.test")
@sys(["a"])
class Sector:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;

    #[test]
    fn valve_stats() {
        let checked = Checker::new().check_source(SRC).unwrap();
        let stats = system_stats(checked.systems.get("Valve").unwrap());
        assert!(!stats.composite);
        assert_eq!(stats.operations, 4);
        assert_eq!(stats.exits, 5);
        assert_eq!(stats.initial_ops, 1);
        assert_eq!(stats.final_ops, 2);
        assert_eq!(stats.spec_states, 6); // start + 5 exits
        assert!(stats.spec_min_dfa_states <= stats.spec_states + 1);
        assert_eq!(stats.claims, 0);
    }

    #[test]
    fn sector_stats() {
        let checked = Checker::new().check_source(SRC).unwrap();
        let stats = system_stats(checked.systems.get("Sector").unwrap());
        assert!(stats.composite);
        assert_eq!(stats.operations, 1);
        assert_eq!(stats.subsystems, 1);
        assert_eq!(stats.claims, 1);
        assert!(stats.integration_states > 0);
        assert!(stats.behavior_nodes > 0);
        // Alphabet: marker `water` + 4 valve events + claim atoms (already
        // valve events).
        assert_eq!(stats.alphabet_size, 5);
    }

    #[test]
    fn display_is_readable() {
        let checked = Checker::new().check_source(SRC).unwrap();
        let stats = system_stats(checked.systems.get("Sector").unwrap());
        let text = stats.to_string();
        assert!(text.contains("Sector (composite)"));
        assert!(text.contains("subsystems: 1"));
        assert!(text.contains("claims: 1"));
    }
}
