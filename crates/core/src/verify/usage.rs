//! Subsystem usage verification (§2.2).
//!
//! For every subsystem instance `x` of a composite class, the projection of
//! the integration language onto `x`'s events must be included in the
//! language of complete usages of `x`'s class specification. On violation,
//! Shelley reports the paper's error:
//!
//! ```text
//! Error in specification: INVALID SUBSYSTEM USAGE
//! Counter example: open_a, a.test, a.open
//! Subsystems errors:
//!   * Valve 'a': test, >open< (not final)
//! ```

use crate::integration::Integration;
use crate::spec::{spec_automaton, ClassSpec};
use crate::system::{Subsystem, System, SystemSet};
use shelley_regular::antichain::{self, InclusionStats};
use shelley_regular::{ops, Dfa, Symbol, Word};
use std::collections::{BTreeMap, BTreeSet};

/// One subsystem's explanation of why a trace is invalid.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SubsystemError {
    /// The subsystem's class name (`Valve`).
    pub class_name: String,
    /// The field name (`a`).
    pub field: String,
    /// The projected trace as unqualified operation names.
    pub trace: Vec<String>,
    /// Index of the offending position in `trace` (the last position when
    /// the trace is merely incomplete).
    pub failing_index: usize,
    /// Why that position fails.
    pub reason: FailureReason,
}

/// Why a projected trace is not a valid complete usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FailureReason {
    /// The trace ends here but the operation is not final.
    NotFinal,
    /// The operation is not allowed at this point (ordering violation).
    NotAllowed,
    /// The first operation is not initial.
    NotInitial,
}

impl SubsystemError {
    /// Renders the paper's one-line explanation:
    /// `Valve 'a': test, >open< (not final)`.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (i, op) in self.trace.iter().enumerate() {
            if i == self.failing_index {
                parts.push(format!(">{op}<"));
            } else {
                parts.push(op.clone());
            }
        }
        let reason = match self.reason {
            FailureReason::NotFinal => "not final",
            FailureReason::NotAllowed => "not allowed",
            FailureReason::NotInitial => "not initial",
        };
        format!(
            "{} '{}': {} ({})",
            self.class_name,
            self.field,
            parts.join(", "),
            reason
        )
    }
}

/// The paper's `INVALID SUBSYSTEM USAGE` verification failure.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UsageViolation {
    /// The shortest offending integration word, markers included.
    pub counterexample: Word,
    /// The counterexample rendered with event names
    /// (`open_a, a.test, a.open`).
    pub counterexample_text: String,
    /// Per-subsystem explanations (every subsystem whose projection of the
    /// counterexample is invalid).
    pub subsystem_errors: Vec<SubsystemError>,
}

impl UsageViolation {
    /// Renders the full error block exactly as the paper prints it.
    pub fn render(&self) -> String {
        let mut out = String::from("Error in specification: INVALID SUBSYSTEM USAGE\n");
        out.push_str(&format!("Counter example: {}\n", self.counterexample_text));
        out.push_str("Subsystems errors:\n");
        for e in &self.subsystem_errors {
            out.push_str(&format!("  * {}\n", e.render()));
        }
        out
    }
}

/// Checks every subsystem of `system` against its class specification.
///
/// Returns `Ok(())` when all projections are included, otherwise the first
/// (shortest) violation found, checking subsystems in declaration order.
///
/// Fields in `proven` were established protocol-conforming by the
/// typestate analysis ([`crate::dataflow::typestate`]): their inclusion
/// check is guaranteed to pass and is skipped — the verification fast
/// path. Pass an empty set to check everything.
pub fn check_usage(
    system: &System,
    systems: &SystemSet,
    integration: &Integration,
    proven: &BTreeSet<String>,
) -> Result<(), UsageViolation> {
    check_usage_counted(system, systems, integration, proven).0
}

/// [`check_usage`] plus the antichain inclusion-engine counters summed
/// over every subsystem checked.
///
/// Each inclusion runs on the antichain engine
/// ([`antichain::projected_subset_counted`]): the search never expands a
/// spec macrostate when a ⊆-smaller one was kept at the same or smaller
/// distance, which is what keeps batch verification from paying full
/// determinization per subsystem. When a violation is found, the classic
/// engine ([`ops::projected_subset`]) re-derives the witness: it is the
/// differential oracle (debug builds assert the verdicts and witness
/// lengths agree) and its shortlex-least word keeps the reported
/// counterexamples byte-identical to the paper's. The oracle only ever
/// runs on violating (small, already-diagnosed) instances — the hot path
/// of conforming code is antichain-only.
pub fn check_usage_counted(
    system: &System,
    systems: &SystemSet,
    integration: &Integration,
    proven: &BTreeSet<String>,
) -> (Result<(), UsageViolation>, InclusionStats) {
    let mut search = InclusionStats::default();
    let Some(info) = system.composite() else {
        return (Ok(()), search);
    };
    let alphabet = integration.nfa.alphabet().clone();

    let mut best: Option<(Word, &Subsystem, &ClassSpec)> = None;
    for sub in &info.subsystems {
        if proven.contains(&sub.field) {
            continue;
        }
        let Some(sub_system) = systems.get(&sub.class_name) else {
            continue;
        };
        let spec = &sub_system.spec;
        // The spec automaton of this instance over the global alphabet,
        // driven as a lazy view: the inclusion check below determinizes
        // only the spec subsets the integration language actually reaches,
        // and the antichain prunes the ⊆-subsumed ones among those.
        let auto = spec_automaton(spec, Some(&sub.field), alphabet.clone());
        // Everything that is not an event of this subsystem is invisible.
        let sub_events: BTreeSet<Symbol> = spec
            .operations
            .iter()
            .filter_map(|op| alphabet.lookup(&format!("{}.{}", sub.field, op.name)))
            .collect();
        let invisible: BTreeSet<Symbol> = alphabet
            .symbols()
            .filter(|s| !sub_events.contains(s))
            .collect();
        let view = auto.view();
        let (included, stats) =
            antichain::projected_subset_counted(&integration.nfa, &view, &invisible);
        antichain::absorb_stats(&mut search, stats);
        if let Err(pruned_word) = included {
            // Canonical witness from the classic oracle (shortlex-least);
            // the antichain word is length-equal but may spell a different
            // violation of the same length.
            let word = ops::projected_subset(&integration.nfa, &view, &invisible)
                .expect_err("antichain found a violation the classic engine must confirm");
            debug_assert_eq!(pruned_word.len(), word.len());
            let better = match &best {
                None => true,
                Some((w, _, _)) => word.len() < w.len(),
            };
            if better {
                best = Some((word, sub, spec));
            }
        }
    }

    let Some((word, _, _)) = &best else {
        return (Ok(()), search);
    };

    // Explain the counterexample for every subsystem whose projection is
    // invalid (the paper lists "Subsystems errors" plural). The simulation
    // artifacts (unqualified alphabet + materialized spec DFA + dead-state
    // classification) are built once per distinct class and shared across
    // the error loop.
    let mut sims: BTreeMap<&str, SpecSim> = BTreeMap::new();
    let mut subsystem_errors = Vec::new();
    for sub in &info.subsystems {
        let Some(sub_system) = systems.get(&sub.class_name) else {
            continue;
        };
        let sim = sims
            .entry(sub.class_name.as_str())
            .or_insert_with(|| SpecSim::new(&sub_system.spec));
        if let Some(err) = explain_projection(word, sub, &sub_system.spec, integration, sim) {
            subsystem_errors.push(err);
        }
    }

    let counterexample_text = alphabet.render_word(word);
    (
        Err(UsageViolation {
            counterexample: word.clone(),
            counterexample_text,
            subsystem_errors,
        }),
        search,
    )
}

/// The per-class simulation artifacts [`explain_projection`] walks: the
/// unqualified spec alphabet, the materialized spec DFA, and its dead-state
/// classification. Built once per distinct subsystem class and reused
/// across the error loop — multiple fields of the same class (and multiple
/// errors of one violation) share one materialization.
struct SpecSim {
    ab: shelley_regular::Alphabet,
    dfa: Dfa,
    dead: Vec<bool>,
}

impl SpecSim {
    fn new(spec: &ClassSpec) -> SpecSim {
        // Dead-state classification needs the whole (tiny, per-class)
        // automaton, so this diagnostic-only path materializes the spec
        // view.
        let mut ab = shelley_regular::Alphabet::new();
        crate::spec::intern_spec_events(spec, None, &mut ab);
        let auto = spec_automaton(spec, None, std::sync::Arc::new(ab.clone()));
        let dfa = auto.materialize();
        let dead = dfa.dead_states();
        SpecSim { ab, dfa, dead }
    }
}

/// Walks `x`'s projection of `word` through `spec` and explains the first
/// failure, if any.
fn explain_projection(
    word: &Word,
    sub: &Subsystem,
    spec: &ClassSpec,
    integration: &Integration,
    sim: &SpecSim,
) -> Option<SubsystemError> {
    let alphabet = integration.nfa.alphabet();
    // Map each event symbol of this subsystem to its operation name.
    let mut op_of: BTreeMap<Symbol, String> = BTreeMap::new();
    for op in &spec.operations {
        if let Some(sym) = alphabet.lookup(&format!("{}.{}", sub.field, op.name)) {
            op_of.insert(sym, op.name.clone());
        }
    }
    let projected: Vec<&String> = word.iter().filter_map(|s| op_of.get(s)).collect();
    if projected.is_empty() {
        return None;
    }
    let trace: Vec<String> = projected.iter().map(|s| (*s).clone()).collect();

    // Simulate the unqualified spec automaton step by step over the
    // prebuilt per-class artifacts.
    let SpecSim { ab, dfa, dead } = sim;
    let mut state = dfa.start();
    for (i, op_name) in trace.iter().enumerate() {
        let sym = ab.lookup(op_name).expect("spec op interned");
        let next = dfa.step(state, sym);
        if dead[next] {
            let reason = if i == 0 {
                FailureReason::NotInitial
            } else {
                FailureReason::NotAllowed
            };
            return Some(SubsystemError {
                class_name: spec.name.clone(),
                field: sub.field.clone(),
                trace,
                failing_index: i,
                reason,
            });
        }
        state = next;
    }
    if !dfa.is_accepting(state) {
        let failing_index = trace.len() - 1;
        return Some(SubsystemError {
            class_name: spec.name.clone(),
            field: sub.field.clone(),
            trace,
            failing_index,
            reason: FailureReason::NotFinal,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integration::build_integration;
    use crate::system::build_systems;
    use micropython_parser::parse_module;

    const VALVE: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

    fn verify(src: &str, class: &str) -> Result<(), UsageViolation> {
        let m = parse_module(src).unwrap();
        let (systems, diags) = build_systems(&m);
        assert!(!diags.has_errors(), "{:?}", diags);
        let sys = systems.get(class).unwrap();
        let integration = build_integration(sys);
        check_usage(sys, &systems, &integration, &BTreeSet::new())
    }

    #[test]
    fn badsector_reproduces_paper_error() {
        let src = format!(
            r#"{VALVE}
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#
        );
        let violation = verify(&src, "BadSector").unwrap_err();
        // The paper's exact counterexample and subsystem explanation.
        assert_eq!(violation.counterexample_text, "open_a, a.test, a.open");
        assert_eq!(violation.subsystem_errors.len(), 1);
        assert_eq!(
            violation.subsystem_errors[0].render(),
            "Valve 'a': test, >open< (not final)"
        );
        let rendered = violation.render();
        assert!(rendered.starts_with("Error in specification: INVALID SUBSYSTEM USAGE"));
        assert!(rendered.contains("Counter example: open_a, a.test, a.open"));
        assert!(rendered.contains("  * Valve 'a': test, >open< (not final)"));
    }

    #[test]
    fn good_sector_passes() {
        let src = format!(
            r#"{VALVE}
@sys(["a"])
class GoodSector:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#
        );
        assert!(verify(&src, "GoodSector").is_ok());
    }

    #[test]
    fn wrong_order_explained_as_not_allowed() {
        let src = format!(
            r#"{VALVE}
@sys(["a"])
class Hasty:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def slam(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.clean()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#
        );
        let violation = verify(&src, "Hasty").unwrap_err();
        let err = &violation.subsystem_errors[0];
        assert_eq!(err.reason, FailureReason::NotAllowed);
        assert_eq!(err.trace, vec!["test", "open", "clean"]);
        assert_eq!(err.failing_index, 2);
        assert!(err.render().contains(">clean<"));
    }

    #[test]
    fn not_initial_explained() {
        let src = format!(
            r#"{VALVE}
@sys(["a"])
class Rude:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def barge(self):
        self.a.open()
        self.a.close()
        return []
"#
        );
        let violation = verify(&src, "Rude").unwrap_err();
        let err = &violation.subsystem_errors[0];
        assert_eq!(err.reason, FailureReason::NotInitial);
        assert_eq!(err.failing_index, 0);
    }

    #[test]
    fn multiple_subsystems_only_faulty_one_reported() {
        let src = format!(
            r#"{VALVE}
@sys(["a", "b"])
class Mixed:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def run(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return ["poke_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def poke_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                return []
            case ["clean"]:
                self.b.clean()
                return []
"#
        );
        let violation = verify(&src, "Mixed").unwrap_err();
        // Only b is misused (left open); the error mentions b, not a.
        assert!(violation.subsystem_errors.iter().all(|e| e.field == "b"));
    }
}
