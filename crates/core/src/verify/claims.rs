//! Temporal-claim verification (§2.2, *Checking temporal requirements*).
//!
//! Every `@claim("φ")` of a class must hold on every complete trace the
//! system can produce. On violation, Shelley reports the paper's error:
//!
//! ```text
//! Error in specification: FAIL TO MEET REQUIREMENT
//! Formula: (!a.open) W b.open
//! Counter example: a.test, a.open, b.open, b.test, b.open, a.close, b.close
//! ```

use crate::annotations::Claim;
use crate::backend::Backend;
use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use crate::integration::Integration;
use crate::spec::{intern_spec_events, spec_automaton};
use crate::system::{System, SystemKind};
use shelley_ltlf::{check_claim, parse_formula, ClaimOutcome, Formula};
use shelley_regular::ops::strip_markers;
use shelley_regular::{Alphabet, Nfa, Symbol, Word};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The paper's `FAIL TO MEET REQUIREMENT` verification failure.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClaimViolation {
    /// The claim's formula text as written in the source.
    pub formula: String,
    /// A shortest violating event trace (markers stripped).
    pub counterexample: Word,
    /// The counterexample rendered with event names.
    pub counterexample_text: String,
}

impl ClaimViolation {
    /// Renders the full error block exactly as the paper prints it.
    pub fn render(&self) -> String {
        format!(
            "Error in specification: FAIL TO MEET REQUIREMENT\nFormula: {}\nCounter example: {}\n",
            self.formula, self.counterexample_text
        )
    }
}

/// Checks every claim of `system`. For composite systems the model is the
/// integration automaton (markers invisible to the claim); for base systems
/// it is the specification automaton over unqualified operation events.
///
/// `backend` picks the engine that decides each claim (see
/// [`crate::backend`]); every backend returns the same verdicts.
///
/// Claims that fail to parse are reported in `diagnostics` and skipped.
pub fn check_claims(
    system: &System,
    integration: Option<&Integration>,
    backend: Backend,
    diagnostics: &mut Diagnostics,
) -> Vec<ClaimViolation> {
    let mut violations = Vec::new();
    if system.claims.is_empty() {
        return violations;
    }
    // Model + marker set + alphabet, by system kind.
    let (model, markers): (Nfa, BTreeSet<shelley_regular::Symbol>) = match &system.kind {
        SystemKind::Composite(_) => {
            let integration = integration.expect("integration built for composites");
            (integration.nfa.clone(), integration.markers.clone())
        }
        SystemKind::Base => {
            // Claims over a base class speak its own operation names. The
            // alphabet must also contain any claim-only atoms, so parse
            // claims against a fresh alphabet first.
            let mut ab = Alphabet::new();
            intern_spec_events(&system.spec, None, &mut ab);
            for claim in &system.claims {
                // Interning atoms may grow the alphabet; parse errors are
                // reported in the main loop below.
                let _ = parse_formula(&claim.formula, &mut ab);
            }
            let auto = spec_automaton(&system.spec, None, Arc::new(ab));
            (auto.nfa().clone(), BTreeSet::new())
        }
    };

    for claim in &system.claims {
        let violation = check_one_claim(system, &model, &markers, claim, backend, diagnostics);
        violations.extend(violation);
    }
    violations
}

fn check_one_claim(
    system: &System,
    model: &Nfa,
    markers: &BTreeSet<shelley_regular::Symbol>,
    claim: &Claim,
    backend: Backend,
    diagnostics: &mut Diagnostics,
) -> Option<ClaimViolation> {
    // Parse against a scratch alphabet to surface unknown atoms, then
    // against the model alphabet.
    let mut scratch = (**model.alphabet()).clone();
    let formula = match parse_formula(&claim.formula, &mut scratch) {
        Ok(f) => f,
        Err(e) => {
            diagnostics.push(
                Diagnostic::error(
                    codes::BAD_CLAIM,
                    format!("claim on `{}` failed to parse: {e}", system.name),
                )
                .with_span(claim.span),
            );
            return None;
        }
    };
    if scratch.len() > model.alphabet().len() {
        // The claim mentions events the system can never produce. They can
        // only make atoms false, which is well-defined, but it usually
        // signals a typo — warn and continue with the extended alphabet.
        let unknown: Vec<String> = scratch
            .iter()
            .skip(model.alphabet().len())
            .map(|(_, n)| n.to_owned())
            .collect();
        diagnostics.push(
            Diagnostic::warning(
                codes::BAD_CLAIM,
                format!(
                    "claim on `{}` mentions events the system never emits: {}",
                    system.name,
                    unknown.join(", ")
                ),
            )
            .with_span(claim.span),
        );
    }
    // Rebuild the model over the (possibly extended) alphabet: symbol ids
    // are preserved because interning is append-only.
    let scratch = Arc::new(scratch);
    let model = rebuild_over(model, scratch.clone());
    let outcome = match backend.resolve(&formula.negate()) {
        Backend::Auto | Backend::Explicit => check_claim(&model, &formula, markers),
        Backend::Symbolic => shelley_symbolic::check_claim(&model, &formula, markers),
        Backend::Smv => check_claim_smv(&model, &formula, markers),
    };
    match outcome {
        ClaimOutcome::Holds => None,
        ClaimOutcome::Violated { counterexample } => {
            let events = strip_markers(&counterexample, markers);
            let counterexample_text = scratch.render_word(&events);
            Some(ClaimViolation {
                formula: claim.formula.clone(),
                counterexample: events,
                counterexample_text,
            })
        }
    }
}

/// Decides one claim through the NuSMV encoding: project markers out of
/// the model (the monitor never observes them, so the projected language
/// decides the same verdict), emit the SMV model with the claim as its
/// second `LTLSPEC`, and run the executable spec semantics on it.
///
/// The returned witness is a shortest *visible* violating word. The
/// explicit and symbolic engines instead minimize the joint trace
/// (markers included) and strip markers afterwards, so on marker-bearing
/// composites this engine can report a different — equally valid —
/// counterexample. Verdicts always agree.
fn check_claim_smv(model: &Nfa, formula: &Formula, markers: &BTreeSet<Symbol>) -> ClaimOutcome {
    let visible = if markers.is_empty() {
        model.clone()
    } else {
        model.erase_symbols(markers)
    };
    let smv = shelley_smv::nfa_to_smv(&visible, "claim check", std::slice::from_ref(formula));
    let outcome = shelley_smv::eval_spec(&smv, &smv.ltlspecs[1])
        .expect("the evaluator accepts every spec the translator emits");
    if outcome.holds {
        return ClaimOutcome::Holds;
    }
    // The evaluator speaks sanitized SMV event names; map them back to
    // alphabet symbols (first symbol wins on a sanitization collision,
    // matching the translator's event-value order).
    let mut by_smv_name: BTreeMap<String, Symbol> = BTreeMap::new();
    for (symbol, name) in visible.alphabet().iter() {
        by_smv_name
            .entry(shelley_smv::sanitize(name))
            .or_insert(symbol);
    }
    let counterexample = outcome
        .counterexample
        .unwrap_or_default()
        .iter()
        .map(|name| {
            *by_smv_name
                .get(name)
                .expect("every witness event is an alphabet symbol")
        })
        .collect();
    ClaimOutcome::Violated { counterexample }
}

/// Copies an NFA onto a larger alphabet that extends the original (same
/// symbol ids for existing names).
fn rebuild_over(nfa: &Nfa, alphabet: Arc<Alphabet>) -> Nfa {
    let mut b = Nfa::builder(alphabet);
    for _ in 0..nfa.num_states() {
        b.add_state();
    }
    b.set_start(nfa.start());
    for q in 0..nfa.num_states() {
        if nfa.is_accepting(q) {
            b.mark_accepting(q);
        }
        for &(label, dst) in nfa.edges_from(q) {
            b.add_edge(q, label, dst);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integration::build_integration;
    use crate::system::build_systems;
    use micropython_parser::parse_module;
    use shelley_ltlf::eval;

    const VALVE: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

    fn check_with(src: &str, class: &str, backend: Backend) -> (Vec<ClaimViolation>, Diagnostics) {
        let m = parse_module(src).unwrap();
        let (systems, diags) = build_systems(&m);
        assert!(!diags.has_errors(), "{:?}", diags);
        let sys = systems.get(class).unwrap();
        let integration = sys.is_composite().then(|| build_integration(sys));
        let mut d = Diagnostics::new();
        let v = check_claims(sys, integration.as_ref(), backend, &mut d);
        (v, d)
    }

    fn check(src: &str, class: &str) -> (Vec<ClaimViolation>, Diagnostics) {
        check_with(src, class, Backend::Auto)
    }

    #[test]
    fn badsector_claim_fails_like_the_paper() {
        let src = format!(
            r#"{VALVE}
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
"#
        );
        let (violations, diags) = check(&src, "BadSector");
        assert!(diags.is_empty(), "{:?}", diags);
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.formula, "(!a.open) W b.open");
        // The shortest violation: a.test then a.open (a.open before any
        // b.open). The counterexample genuinely violates the formula.
        assert_eq!(v.counterexample_text, "a.test, a.open");
        let rendered = v.render();
        assert!(rendered.starts_with("Error in specification: FAIL TO MEET REQUIREMENT"));
        assert!(rendered.contains("Formula: (!a.open) W b.open"));
        assert!(rendered.contains("Counter example: a.test, a.open"));
        // Cross-check against the LTLf evaluator.
        let mut ab = Alphabet::new();
        let f = parse_formula(&v.formula, &mut ab).unwrap();
        let trace: Vec<_> = v
            .counterexample_text
            .split(", ")
            .map(|n| ab.intern(n))
            .collect();
        assert!(!eval(&f, &trace));
    }

    #[test]
    fn every_backend_agrees_on_the_paper_violation() {
        let src = format!(
            r#"{VALVE}
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
"#
        );
        for backend in [
            Backend::Auto,
            Backend::Explicit,
            Backend::Symbolic,
            Backend::Smv,
        ] {
            let (violations, diags) = check_with(&src, "BadSector", backend);
            assert!(diags.is_empty(), "{backend}: {diags:?}");
            assert_eq!(violations.len(), 1, "{backend}");
            // Every engine finds a genuine shortest violation; explicit
            // and symbolic agree on the exact canonical witness.
            let v = &violations[0];
            let mut ab = Alphabet::new();
            let f = parse_formula(&v.formula, &mut ab).unwrap();
            let trace: Vec<_> = v
                .counterexample_text
                .split(", ")
                .map(|n| ab.intern(n))
                .collect();
            assert!(!eval(&f, &trace), "{backend}: {}", v.counterexample_text);
            if backend != Backend::Smv {
                assert_eq!(v.counterexample_text, "a.test, a.open", "{backend}");
            }
        }
    }

    #[test]
    fn satisfied_claim_passes() {
        let src = format!(
            r#"{VALVE}
@claim("(!a.open) W a.test")
@sys(["a"])
class Careful:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#
        );
        let (violations, diags) = check(&src, "Careful");
        assert!(violations.is_empty());
        assert!(diags.is_empty(), "{:?}", diags);
    }

    #[test]
    fn base_class_claims_check_the_spec() {
        // On the Valve spec itself: open is always preceded by test.
        let src = VALVE.replace(
            "@sys\nclass Valve:",
            "@claim(\"(!open) W test\")\n@sys\nclass Valve:",
        );
        let (violations, diags) = check(&src, "Valve");
        assert!(violations.is_empty(), "{violations:?}");
        assert!(diags.is_empty());
        // A false claim on the spec: valves are never cleaned — fails.
        let src2 = VALVE.replace(
            "@sys\nclass Valve:",
            "@claim(\"G !clean\")\n@sys\nclass Valve:",
        );
        let (violations, _) = check(&src2, "Valve");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].counterexample_text, "test, clean");
    }

    #[test]
    fn malformed_claim_reported() {
        let src = format!(
            r#"{VALVE}
@claim("(!a.open W")
@sys(["a"])
class Broken:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#
        );
        let (violations, diags) = check(&src, "Broken");
        assert!(violations.is_empty());
        assert_eq!(diags.by_code(codes::BAD_CLAIM).count(), 1);
    }

    #[test]
    fn unknown_event_in_claim_warned() {
        let src = format!(
            r#"{VALVE}
@claim("G !a.explode")
@sys(["a"])
class Typo:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#
        );
        let (violations, diags) = check(&src, "Typo");
        // The claim holds vacuously (the event never occurs), with a typo
        // warning.
        assert!(violations.is_empty());
        assert_eq!(diags.by_code(codes::BAD_CLAIM).count(), 1);
        assert!(!diags.has_errors());
    }
}
