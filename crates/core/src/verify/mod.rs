//! Verification passes: subsystem usage (§2.2) and temporal claims.

pub mod claims;
pub mod usage;
