//! # shelley-core
//!
//! A Rust implementation of **Shelley's model inference** for MicroPython,
//! reproducing *Formalizing Model Inference of MicroPython* (DSN-W 2023).
//!
//! Shelley verifies the **order of method calls** in hierarchies of
//! MicroPython classes that control physical resources. Classes annotated
//! with `@sys` declare their protocol through `@op_initial` / `@op` /
//! `@op_final` method decorators and `return ["next", ...]` statements
//! (Tables 1–2); composite classes (`@sys(["a", "b"])`) are checked to use
//! their subsystems according to those protocols, plus LTLf temporal
//! claims (`@claim("(!a.open) W b.open")`).
//!
//! The model extraction process follows §3 of the paper:
//!
//! 1. **method dependency extraction** ([`extract::dependency`]) — the
//!    entry/exit graph of Fig. 3;
//! 2. **method behavior extraction** ([`extract::lower`] + `shelley-ir`) —
//!    each method body lowers to the imperative calculus and its behavior
//!    is inferred as a regular expression (Fig. 4, proven sound/complete);
//! 3. **method invocation analysis** ([`extract::invocation`]) — defined
//!    operations and exhaustive `match` over exit points.
//!
//! Verification ([`verify`]) reduces to regular-language inclusion on the
//! [`integration`] automaton and produces the paper's two error formats:
//!
//! ```text
//! Error in specification: INVALID SUBSYSTEM USAGE
//! Counter example: open_a, a.test, a.open
//! Subsystems errors:
//!   * Valve 'a': test, >open< (not final)
//! ```
//!
//! # Example
//!
//! ```
//! use shelley_core::Checker;
//!
//! let source = r#"
//! @sys
//! class Led:
//!     @op_initial
//!     def on(self):
//!         return ["off"]
//!
//!     @op_final
//!     def off(self):
//!         return ["on"]
//!
//! @sys(["led"])
//! class Blinker:
//!     def __init__(self):
//!         self.led = Led()
//!
//!     @op_initial_final
//!     def blink(self):
//!         self.led.on()
//!         self.led.off()
//!         return []
//! "#;
//! let checked = Checker::new().check_source(source)?;
//! assert!(checked.report.passed());
//! # Ok::<(), shelley_core::CheckError>(())
//! ```
//!
//! For repeated checks of an evolving project — the editor/CI loop — keep
//! a [`workspace::Workspace`] alive instead: it caches per-class artifacts
//! under content fingerprints and re-verifies only what an edit
//! invalidated, fanning the work out over a thread pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotations;
pub mod api;
pub mod backend;
pub mod checker;
pub mod dataflow;
pub mod diagnostics;
pub mod diagram;
pub mod extract;
pub mod integration;
pub mod lint;
pub mod persist;
pub mod pipeline;
pub mod project;
pub mod spec;
pub mod stats;
pub mod system;
pub mod verify;
pub mod workspace;

pub use annotations::{Claim, ClassAnnotations, ClassKind, OpKind};
pub use api::{CheckSummary, Method, Reply, ReplyBody, Request, WireDiagnostic, PROTOCOL_VERSION};
pub use backend::{Backend, ParseBackendError, AUTO_SYMBOLIC_THRESHOLD};
pub use checker::{CheckError, Checker, INPUT_NAME};
pub use dataflow::typestate::{analyze_class, TypestateFinding, TypestateReport};
pub use dataflow::{solve, Analysis, Direction, Solution};
pub use diagnostics::{code_info, codes, CodeInfo, Diagnostic, Diagnostics, Severity, REGISTRY};
pub use diagram::{integration_diagram, spec_diagram};
pub use integration::{build_integration, Integration};
pub use lint::{
    default_passes, run_lints, LintConfig, LintContext, LintLevel, LintPass, UnknownCode,
};
pub use pipeline::{verify_system, CheckReport, Checked, SystemVerdict};
pub use project::ProjectFile;
pub use spec::{ClassSpec, ExitSpec, OperationSpec, SpecAutomaton};
pub use stats::{system_stats, SystemStats};
pub use system::{
    build_systems, extract_class, resolve_class, validate_spec, ClassExtraction, System,
    SystemKind, SystemSet,
};
pub use verify::claims::{check_claims, ClaimViolation};
pub use verify::usage::{check_usage, FailureReason, SubsystemError, UsageViolation};
pub use workspace::{Workspace, WorkspaceStats};
