//! The end-to-end verification pipeline.
//!
//! `parse → annotations → specs → extraction → invocation analysis →
//! subsystem usage → temporal claims`, producing a [`CheckReport`] with all
//! structural diagnostics and the paper's two specification errors.

use crate::backend::Backend;
use crate::dataflow::typestate::analyze_class;
use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use crate::integration::{build_integration, Integration};
use crate::lint::{run_lints, LintConfig, LintLevel};
use crate::system::{build_systems, System, SystemSet};
use crate::verify::claims::{check_claims, ClaimViolation};
use crate::verify::usage::{check_usage_counted, UsageViolation};
use micropython_parser::ast::{ClassDef, Module};
use micropython_parser::SourceFile;
use std::collections::BTreeSet;

/// The result of verifying one source file.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Structural diagnostics (annotations, invocation analysis, lints).
    pub diagnostics: Diagnostics,
    /// `INVALID SUBSYSTEM USAGE` failures, by class.
    pub usage_violations: Vec<(String, UsageViolation)>,
    /// `FAIL TO MEET REQUIREMENT` failures, by class.
    pub claim_violations: Vec<(String, ClaimViolation)>,
}

impl CheckReport {
    /// Whether verification passed (no errors of any kind; warnings are
    /// allowed).
    pub fn passed(&self) -> bool {
        !self.diagnostics.has_errors()
            && self.usage_violations.is_empty()
            && self.claim_violations.is_empty()
    }

    /// Renders the whole report: specification errors in the paper's
    /// format, then the remaining diagnostics.
    pub fn render(&self, source: Option<&SourceFile>) -> String {
        let mut out = String::new();
        for (class, v) in &self.usage_violations {
            out.push_str(&format!("[{class}] "));
            out.push_str(&v.render());
            out.push('\n');
        }
        for (class, v) in &self.claim_violations {
            out.push_str(&format!("[{class}] "));
            out.push_str(&v.render());
            out.push('\n');
        }
        for d in self.diagnostics.iter() {
            out.push_str(&d.render(source));
            out.push('\n');
        }
        out
    }
}

/// The verified systems plus everything the verifier computed for them.
#[derive(Debug, Clone)]
pub struct Checked {
    /// All systems of the module.
    pub systems: SystemSet,
    /// Integration automata of composite systems, by class name.
    pub integrations: Vec<(String, Integration)>,
    /// The report.
    pub report: CheckReport,
}

/// The reference implementation: sequential, from scratch, single module,
/// no caching — one [`build_systems`] pass, module-level lints, then
/// [`verify_system`] per class in declaration order.
///
/// [`crate::workspace::Workspace`] must produce byte-identical reports to
/// this function on any single-module input; the equivalence suite holds
/// the two against each other. Lint passes run after system building, and
/// `config` reshapes the final diagnostics (`Allow` drops, `Warn` demotes —
/// including the paper's `E100`/`E101`, whose violation lists are then
/// cleared so [`CheckReport::passed`] stays consistent with the
/// diagnostics).
pub fn check_module_direct(module: &Module, config: &LintConfig) -> Checked {
    let (systems, mut diagnostics) = build_systems(module);
    run_lints(module, &systems, config, &mut diagnostics);
    let mut usage_violations = Vec::new();
    let mut claim_violations = Vec::new();
    let mut integrations = Vec::new();

    for system in systems.iter() {
        let proven = proven_fields(module.class(&system.name), system, &systems);
        let verdict = verify_system(system, &systems, &proven, Backend::Auto);
        diagnostics.extend(verdict.diagnostics);
        for v in verdict.usage_violations {
            usage_violations.push((system.name.clone(), v));
        }
        for v in verdict.claim_violations {
            claim_violations.push((system.name.clone(), v));
        }
        if let Some(integ) = verdict.integration {
            integrations.push((system.name.clone(), integ));
        }
    }

    config.apply(&mut diagnostics);
    if config.level(codes::INVALID_SUBSYSTEM_USAGE) != LintLevel::Deny {
        usage_violations.clear();
    }
    if config.level(codes::FAIL_TO_MEET_REQUIREMENT) != LintLevel::Deny {
        claim_violations.clear();
    }

    Checked {
        systems,
        integrations,
        report: CheckReport {
            diagnostics,
            usage_violations,
            claim_violations,
        },
    }
}

/// The per-class verification products: what checking one system against
/// the specs of its subsystems yields.
///
/// Produced by [`verify_system`]. The verdict of a class depends only on
/// the class's own extraction and its direct subsystems' specs, which is
/// the caching seam [`crate::workspace::Workspace`] exploits.
#[derive(Debug, Clone, Default)]
pub struct SystemVerdict {
    /// The integration automaton, for composite systems.
    pub integration: Option<Integration>,
    /// `E100`/`E101` findings plus claim-parse diagnostics.
    pub diagnostics: Diagnostics,
    /// `INVALID SUBSYSTEM USAGE` failures of this class.
    pub usage_violations: Vec<UsageViolation>,
    /// `FAIL TO MEET REQUIREMENT` failures of this class.
    pub claim_violations: Vec<ClaimViolation>,
    /// Subsystem fields whose inclusion check was skipped because the
    /// typestate analysis already proved it passes (the fast path).
    pub fast_path_skips: usize,
    /// Pairs the antichain inclusion engine kept on its frontier across
    /// this class's usage checks (see [`shelley_regular::antichain`]).
    pub antichain_frontier: u64,
    /// Frontier candidates the antichain engine discarded as ⊆-subsumed.
    pub antichain_pruned: u64,
}

/// The subsystem fields of `system` the typestate analysis proves
/// protocol-conforming — [`check_usage`](crate::verify::usage::check_usage)
/// may skip them.
///
/// `class` is the system's source definition (`None` short-circuits to an
/// empty set, disabling the fast path).
pub fn proven_fields(
    class: Option<&ClassDef>,
    system: &System,
    systems: &SystemSet,
) -> BTreeSet<String> {
    class
        .and_then(|class| analyze_class(class, system, systems))
        .map(|report| report.proven)
        .unwrap_or_default()
}

/// Verifies one system against the others: builds the integration
/// automaton (for composites), checks subsystem usage inclusion, and
/// checks every temporal claim.
///
/// `proven` lists subsystem fields whose usage inclusion is already
/// established (see [`proven_fields`]); their checks are skipped and
/// counted in [`SystemVerdict::fast_path_skips`]. `backend` selects the
/// claim-checking engine (see [`crate::backend`]); every backend decides
/// the same verdicts.
pub fn verify_system(
    system: &System,
    systems: &SystemSet,
    proven: &BTreeSet<String>,
    backend: Backend,
) -> SystemVerdict {
    let mut verdict = SystemVerdict::default();
    if let Some(info) = system.composite() {
        verdict.fast_path_skips = info
            .subsystems
            .iter()
            .filter(|sub| proven.contains(&sub.field))
            .count();
    }
    let integration = system.is_composite().then(|| build_integration(system));
    if let Some(ref integ) = integration {
        let (checked, search) = check_usage_counted(system, systems, integ, proven);
        verdict.antichain_frontier = search.frontier as u64;
        verdict.antichain_pruned = search.pruned as u64;
        if let Err(v) = checked {
            verdict.diagnostics.push(
                Diagnostic::error(
                    codes::INVALID_SUBSYSTEM_USAGE,
                    format!(
                        "class `{}`: invalid subsystem usage (counterexample: {})",
                        system.name, v.counterexample_text
                    ),
                )
                .with_note(v.render().trim_end().to_owned()),
            );
            verdict.usage_violations.push(v);
        }
    }
    for v in check_claims(
        system,
        integration.as_ref(),
        backend,
        &mut verdict.diagnostics,
    ) {
        verdict.diagnostics.push(
            Diagnostic::error(
                codes::FAIL_TO_MEET_REQUIREMENT,
                format!(
                    "class `{}`: fails requirement `{}` (counterexample: {})",
                    system.name, v.formula, v.counterexample_text
                ),
            )
            .with_note(v.render().trim_end().to_owned()),
        );
        verdict.claim_violations.push(v);
    }
    verdict.integration = integration;
    verdict
}

#[cfg(test)]
pub(crate) mod tests {
    use crate::checker::Checker;

    /// Listings 2.1 + 2.2 of the paper, verbatim.
    pub(crate) const PAPER_SOURCE: &str = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean_pin = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean_pin.on()
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#;

    #[test]
    fn paper_example_end_to_end() {
        let checked = Checker::new().check_source(PAPER_SOURCE).unwrap();
        assert!(!checked.report.passed());
        // Exactly one usage violation (BadSector) with the paper's text.
        assert_eq!(checked.report.usage_violations.len(), 1);
        let (class, v) = &checked.report.usage_violations[0];
        assert_eq!(class, "BadSector");
        assert_eq!(v.counterexample_text, "open_a, a.test, a.open");
        assert_eq!(
            v.subsystem_errors[0].render(),
            "Valve 'a': test, >open< (not final)"
        );
        // And one claim violation.
        assert_eq!(checked.report.claim_violations.len(), 1);
        let (_, cv) = &checked.report.claim_violations[0];
        assert_eq!(cv.formula, "(!a.open) W b.open");
        // Valve itself is fine; both systems built.
        assert_eq!(checked.systems.len(), 2);
        assert_eq!(checked.integrations.len(), 1);
        // The rendered report shows both paper error blocks.
        let text = checked.report.render(None);
        assert!(text.contains("INVALID SUBSYSTEM USAGE"));
        assert!(text.contains("FAIL TO MEET REQUIREMENT"));
    }

    #[test]
    fn fixed_sector_passes() {
        // The corrected sector: open both valves in one operation,
        // respecting the Valve protocol and the claim.
        let src = PAPER_SOURCE.replace(
            r#"@claim("(!a.open) W b.open")"#,
            r#"@claim("(!a.open) W b.test")"#,
        );
        // Build a conforming composite instead of BadSector.
        let good = r#"
@sys(["a"])
class GoodSector:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;
        let valve_only: String = src.split("@claim").next().unwrap().to_owned() + good;
        let checked = Checker::new().check_source(&valve_only).unwrap();
        assert!(checked.report.passed(), "{}", checked.report.render(None));
    }

    #[test]
    fn typestate_fast_path_skips_proven_subsystems() {
        use super::{check_module_direct, proven_fields, verify_system};
        use crate::lint::LintConfig;

        let src = PAPER_SOURCE.split("@claim").next().unwrap().to_owned()
            + r#"
@sys(["a"])
class GoodSector:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;
        let module = micropython_parser::parse_module(&src).unwrap();
        let (systems, _) = crate::system::build_systems(&module);
        let good = systems.get("GoodSector").unwrap();
        let proven = proven_fields(module.class("GoodSector"), good, &systems);
        assert_eq!(proven.iter().collect::<Vec<_>>(), ["a"]);
        let verdict = verify_system(good, &systems, &proven, crate::backend::Backend::Auto);
        assert_eq!(verdict.fast_path_skips, 1);
        assert!(verdict.usage_violations.is_empty());
        // The full pipeline agrees with the skipped check.
        let checked = check_module_direct(&module, &LintConfig::default());
        assert!(checked.report.passed(), "{}", checked.report.render(None));

        // BadSector's misuse of `a` is *not* proven away: the analysis
        // refuses the fast path, leaving the real check to find the
        // violation.
        let paper = micropython_parser::parse_module(PAPER_SOURCE).unwrap();
        let (systems, _) = crate::system::build_systems(&paper);
        let bad = systems.get("BadSector").unwrap();
        let proven = proven_fields(paper.class("BadSector"), bad, &systems);
        assert!(!proven.contains("a"));
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(Checker::new().check_source("def broken(:\n").is_err());
    }

    #[test]
    fn empty_module_passes_vacuously() {
        let checked = Checker::new().check_source("x = 1\n").unwrap();
        assert!(checked.report.passed());
        assert!(checked.systems.is_empty());
    }
}
