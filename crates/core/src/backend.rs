//! Claim-checking backend selection.
//!
//! Three engines can decide a temporal claim `L(model) ⊆ L(φ)`:
//!
//! * **explicit** — [`shelley_ltlf::check_claim`], a joint breadth-first
//!   search over `(model subset, monitor formula)` pairs. Fastest on the
//!   small monitors real claims produce; exponential on adversarial
//!   claims whose progression monitor has `2ⁿ` reachable states.
//! * **symbolic** — [`shelley_symbolic::check_claim`], BDD image
//!   iteration over the same product. Pays a constant encoding overhead
//!   but represents a `2ⁿ`-state frontier as one polynomial BDD.
//! * **smv** — emit the [`shelley_smv`] NuSMV encoding of the model with
//!   the claim as an `LTLSPEC` and run the executable spec semantics
//!   ([`shelley_smv::eval_spec`]) on it. The slowest path (it
//!   determinizes the model), kept routable end to end so the emitted
//!   artifact is continuously validated against the other engines.
//!
//! All three are **verdict-identical** — the differential suite in
//! `shelley-symbolic` pins this on thousands of random system/claim
//! pairs — so [`Backend`] is a performance knob, not a semantics knob.
//! The default [`Backend::Auto`] resolves per claim: it estimates the
//! monitor state count as `2^t` for `t` temporal connectives in the
//! negated claim and switches to the symbolic engine at
//! [`AUTO_SYMBOLIC_THRESHOLD`]. Every claim in the paper's examples sits
//! far below the threshold, so `auto` behaves exactly like `explicit`
//! on them.

use shelley_ltlf::Formula;
use std::fmt;
use std::str::FromStr;

/// Monitor-state estimates at or above this make [`Backend::Auto`]
/// resolve to the symbolic engine (`4096 = 2¹²`: roughly where explicit
/// monitor enumeration starts to dominate the BDD encoding overhead).
pub const AUTO_SYMBOLIC_THRESHOLD: u64 = 4096;

/// Which engine decides temporal claims. See the [module docs](self).
#[derive(
    Debug,
    Clone,
    Copy,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(rename_all = "snake_case")]
pub enum Backend {
    /// Resolve per claim: explicit below [`AUTO_SYMBOLIC_THRESHOLD`],
    /// symbolic at or above it.
    #[default]
    Auto,
    /// Always the explicit joint breadth-first search.
    Explicit,
    /// Always the symbolic BDD fixpoint.
    Symbolic,
    /// Always the NuSMV-encoding evaluator.
    Smv,
}

impl Backend {
    /// Resolves `Auto` against the negated claim the monitor will track;
    /// fixed backends return themselves. Never returns [`Backend::Auto`].
    pub fn resolve(self, negated_claim: &Formula) -> Backend {
        match self {
            Backend::Auto => {
                if monitor_estimate(negated_claim) >= AUTO_SYMBOLIC_THRESHOLD {
                    Backend::Symbolic
                } else {
                    Backend::Explicit
                }
            }
            fixed => fixed,
        }
    }
}

/// An upper estimate of the progression monitor's reachable state count
/// for `f`: `2^t` (saturating) for `t` temporal connectives, since
/// progression states are obligation sets over temporal subformulas.
pub fn monitor_estimate(f: &Formula) -> u64 {
    1u64.checked_shl(temporal_count(f)).unwrap_or(u64::MAX)
}

fn temporal_count(f: &Formula) -> u32 {
    match f {
        Formula::True
        | Formula::False
        | Formula::Atom(_)
        | Formula::NotAtom(_)
        | Formula::Empty
        | Formula::Nonempty => 0,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().map(temporal_count).sum(),
        Formula::Next(g) | Formula::WeakNext(g) => 1 + temporal_count(g),
        Formula::Until(a, b) | Formula::Release(a, b) => 1 + temporal_count(a) + temporal_count(b),
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Auto => "auto",
            Backend::Explicit => "explicit",
            Backend::Symbolic => "symbolic",
            Backend::Smv => "smv",
        })
    }
}

/// The error of parsing an unknown backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    input: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend `{}` (expected auto, explicit, symbolic, or smv)",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Backend::Auto),
            "explicit" => Ok(Backend::Explicit),
            "symbolic" => Ok(Backend::Symbolic),
            "smv" => Ok(Backend::Smv),
            other => Err(ParseBackendError {
                input: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;
    use shelley_ltlf::parse_formula;
    use shelley_regular::Alphabet;

    #[test]
    fn names_round_trip_through_display_and_from_str() {
        for backend in [
            Backend::Auto,
            Backend::Explicit,
            Backend::Symbolic,
            Backend::Smv,
        ] {
            assert_eq!(backend.to_string().parse::<Backend>().unwrap(), backend);
        }
        assert!("nusmv".parse::<Backend>().is_err());
        let e = "?".parse::<Backend>().unwrap_err();
        assert!(e.to_string().contains("unknown backend `?`"));
    }

    #[test]
    fn wire_encoding_is_the_lowercase_name() {
        assert_eq!(json::to_string(&Backend::Auto), r#""auto""#);
        assert_eq!(json::to_string(&Backend::Symbolic), r#""symbolic""#);
        let back: Backend = json::from_str(r#""smv""#).unwrap();
        assert_eq!(back, Backend::Smv);
    }

    #[test]
    fn auto_resolves_small_claims_to_the_explicit_engine() {
        let mut ab = Alphabet::new();
        // The paper's own claim: two temporal connectives, tiny monitor.
        let claim = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        assert_eq!(Backend::Auto.resolve(&claim.negate()), Backend::Explicit);
        assert!(monitor_estimate(&claim.negate()) < AUTO_SYMBOLIC_THRESHOLD);
    }

    #[test]
    fn auto_resolves_adversarial_claims_to_the_symbolic_engine() {
        let mut ab = Alphabet::new();
        // F a0 & F a1 & … — the 2ⁿ monitor family the benchmark uses.
        let text: Vec<String> = (0..14).map(|i| format!("F a{i}")).collect();
        let claim = parse_formula(&text.join(" & "), &mut ab).unwrap();
        assert_eq!(Backend::Auto.resolve(&claim.negate()), Backend::Symbolic);
    }

    #[test]
    fn fixed_backends_resolve_to_themselves() {
        let mut ab = Alphabet::new();
        let big: Vec<String> = (0..20).map(|i| format!("F a{i}")).collect();
        let claim = parse_formula(&big.join(" & "), &mut ab).unwrap();
        for fixed in [Backend::Explicit, Backend::Symbolic, Backend::Smv] {
            assert_eq!(fixed.resolve(&claim.negate()), fixed);
        }
    }

    #[test]
    fn monitor_estimate_saturates_instead_of_overflowing() {
        let mut ab = Alphabet::new();
        let huge: Vec<String> = (0..70).map(|i| format!("F a{i}")).collect();
        let claim = parse_formula(&huge.join(" & "), &mut ab).unwrap();
        assert_eq!(monitor_estimate(&claim.negate()), u64::MAX);
    }
}
