//! The long-lived, parallel, incremental verification engine.
//!
//! A [`Workspace`] owns the parsed state of a project and re-verifies it
//! round after round, recomputing only what an edit actually invalidated.
//! Every entry point of [`Checker`](crate::checker::Checker) runs a
//! one-round workspace under the hood, so the semantics here *are* the
//! semantics of the whole crate.
//!
//! # Caching model
//!
//! The pipeline decomposes into per-class stages
//! ([`extract_class`] → [`validate_spec`] → [`resolve_class`] → lints →
//! [`verify_system`]), and each stage's
//! products are cached under a **content fingerprint**:
//!
//! * a *file* fingerprint (hash of the source text) gates re-parsing;
//! * a *class* fingerprint (hash of the class's printed AST, its position,
//!   and its file) gates extraction and spec validation, which depend on
//!   nothing but the class's own text;
//! * a *dependency* fingerprint (the class fingerprint combined with the
//!   fingerprints of every subsystem class it instantiates) gates
//!   resolution, lints, and verification, which additionally read the
//!   subsystems' specifications — and nothing else.
//!
//! Editing one class therefore re-runs extraction for that class only, and
//! re-runs verification for that class plus the composites that use it.
//! [`WorkspaceStats`] exposes hit/miss counters and per-phase timings so
//! callers (and tests) can observe exactly that.
//!
//! # Parallelism and determinism
//!
//! Stages fan out over a [`std::thread::scope`] worker pool
//! ([`Checker::jobs`](crate::checker::Checker::jobs), default: available
//! parallelism). Workers claim classes from a shared queue, but results
//! are merged back **in class order** and diagnostics are normalized, so
//! reports are byte-identical across job counts and across
//! incremental-vs-cold runs.
//!
//! # Example
//!
//! ```
//! use shelley_core::{Checker, Workspace};
//!
//! let mut ws = Checker::new().jobs(2).into_workspace();
//! ws.set_file("led.py", "@sys\nclass Led:\n    @op_initial_final\n    def blink(self):\n        return []\n");
//! ws.set_file("main.py", "@sys([\"l\"])\nclass Panel:\n    def __init__(self):\n        self.l = Led()\n\n    @op_initial_final\n    def run(self):\n        self.l.blink()\n        return []\n");
//! let first = ws.check()?;
//! assert!(first.report.passed());
//!
//! // Re-checking without edits hits the cache for every class.
//! ws.check()?;
//! assert_eq!(ws.last_round().verified, 0);
//! assert_eq!(ws.last_round().verify_cache_hits, 2);
//!
//! // Editing the Led protocol re-verifies Led *and* the Panel composite.
//! ws.set_file("led.py", "@sys\nclass Led:\n    @op_initial_final\n    def blink(self):\n        return [\"blink\"]\n");
//! ws.check()?;
//! assert_eq!(ws.last_round().verified, 2);
//! # Ok::<(), shelley_core::CheckError>(())
//! ```

use crate::backend::Backend;
use crate::checker::CheckError;
use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use crate::lint::{run_lints, LintConfig, LintLevel};
use crate::persist::{self, SavedVerify};
use crate::pipeline::{proven_fields, verify_system, CheckReport, Checked, SystemVerdict};
use crate::spec::ClassSpec;
use crate::stats::{system_stats, SystemStats};
use crate::system::{
    extract_class, resolve_class, validate_spec, ClassExtraction, System, SystemKind, SystemSet,
};
use crate::verify::claims::ClaimViolation;
use crate::verify::usage::UsageViolation;
use micropython_parser::ast::{Module, Stmt};
use micropython_parser::printer::print_module;
use micropython_parser::visit::collect_degraded;
use micropython_parser::{parse_module, parse_module_recover, ParseError};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cache-hit/miss counters and per-phase wall-clock timings of a
/// [`Workspace`] — one value accumulated over the workspace's lifetime
/// ([`Workspace::stats`]) and one reset every round
/// ([`Workspace::last_round`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkspaceStats {
    /// Number of completed [`Workspace::check`] rounds.
    pub rounds: u64,
    /// Files whose source changed and were re-parsed.
    pub files_parsed: u64,
    /// Files whose parse (or parse error) was reused.
    pub parse_cache_hits: u64,
    /// Classes that ran extraction + spec validation.
    pub extracted: u64,
    /// Classes whose extraction artifacts were reused.
    pub extract_cache_hits: u64,
    /// Classes that ran resolution, lints, and verification.
    pub verified: u64,
    /// Classes whose verification artifacts were reused.
    pub verify_cache_hits: u64,
    /// Freshly verified classes (counted in [`Self::verified`]) that were
    /// restored from the on-disk cache, skipping the expensive analyses.
    pub verify_disk_hits: u64,
    /// Subsystem inclusion checks skipped because the typestate analysis
    /// proved them (fast path), across freshly verified classes.
    pub fast_path_proven: u64,
    /// Pairs the antichain inclusion engine kept on its frontier across
    /// freshly verified classes' usage checks
    /// (see [`shelley_regular::antichain`]).
    pub antichain_frontier: u64,
    /// Frontier candidates the antichain engine discarded as ⊆-subsumed —
    /// spec macrostates batch verification never had to expand.
    pub antichain_pruned: u64,
    /// [`Workspace::class_stats`] calls that computed statistics afresh.
    pub stats_computed: u64,
    /// [`Workspace::class_stats`] calls served from the stats cache.
    pub stats_cache_hits: u64,
    /// Time spent parsing changed files.
    pub parse_time: Duration,
    /// Time spent extracting changed classes.
    pub extract_time: Duration,
    /// Time spent resolving/linting/verifying invalidated classes.
    pub verify_time: Duration,
    /// Time spent merging cached artifacts into the final report.
    pub assemble_time: Duration,
}

impl WorkspaceStats {
    fn absorb(&mut self, round: &WorkspaceStats) {
        self.rounds += round.rounds;
        self.files_parsed += round.files_parsed;
        self.parse_cache_hits += round.parse_cache_hits;
        self.extracted += round.extracted;
        self.extract_cache_hits += round.extract_cache_hits;
        self.verified += round.verified;
        self.verify_cache_hits += round.verify_cache_hits;
        self.verify_disk_hits += round.verify_disk_hits;
        self.fast_path_proven += round.fast_path_proven;
        self.antichain_frontier += round.antichain_frontier;
        self.antichain_pruned += round.antichain_pruned;
        self.stats_computed += round.stats_computed;
        self.stats_cache_hits += round.stats_cache_hits;
        self.parse_time += round.parse_time;
        self.extract_time += round.extract_time;
        self.verify_time += round.verify_time;
        self.assemble_time += round.assemble_time;
    }

    /// One-line human-readable summary
    /// (`parsed 1/12 files, extracted 1/40 classes, verified 3/40`).
    pub fn render(&self) -> String {
        format!(
            "parsed {}/{} files, extracted {}/{} classes, verified {}/{} \
             ({} fast-path) in {:.1?}",
            self.files_parsed,
            self.files_parsed + self.parse_cache_hits,
            self.extracted,
            self.extracted + self.extract_cache_hits,
            self.verified,
            self.verified + self.verify_cache_hits,
            self.fast_path_proven,
            self.parse_time + self.extract_time + self.verify_time + self.assemble_time,
        )
    }
}

/// One class of one file, ready for the per-class stages.
#[derive(Debug, Clone)]
struct ClassUnit {
    name: String,
    /// Content fingerprint: printed AST + position + file name.
    fingerprint: u64,
    /// A single-class module owning the class definition; shared with
    /// worker threads and cache entries.
    solo: Arc<Module>,
}

/// A registered source file and its parse cache.
#[derive(Debug)]
struct FileState {
    name: String,
    /// Fingerprint of the source text (or of the printed module for
    /// [`Workspace::set_parsed_module`]).
    fingerprint: u64,
    source: Option<String>,
    parsed: Option<Result<Vec<ClassUnit>, ParseError>>,
    /// `W014` diagnostics for constructs recovery mode degraded to `skip`,
    /// computed at parse time (cached with the parse).
    degraded: Diagnostics,
}

/// Extraction-stage products of one class (keyed by class fingerprint).
#[derive(Debug)]
struct ExtractEntry {
    /// `None` for classes without a `@sys` decorator.
    extraction: Option<ClassExtraction>,
    extract_diags: Diagnostics,
    validate_diags: Diagnostics,
}

/// Verification-stage products of one class (keyed by class fingerprint +
/// dependency fingerprint).
#[derive(Debug)]
struct VerifyEntry {
    system: System,
    verdict: SystemVerdict,
    resolve_diags: Diagnostics,
    lint_diags: Diagnostics,
}

/// The long-lived verification engine. See the [module docs](self).
#[derive(Debug)]
pub struct Workspace {
    config: LintConfig,
    jobs: usize,
    /// Recovery mode: parse with
    /// [`parse_module_recover`] (total), degrading out-of-subset
    /// constructs to spanned `skip` nodes reported as `W014`.
    recover: bool,
    /// The engine that decides temporal claims (see [`crate::backend`]).
    backend: Backend,
    files: Vec<FileState>,
    extract_cache: HashMap<u64, Arc<ExtractEntry>>,
    verify_cache: HashMap<(u64, u64), Arc<VerifyEntry>>,
    /// Per-class [`SystemStats`], keyed like `verify_cache` (class
    /// fingerprint + dependency fingerprint) because composite statistics
    /// read the subsystem specs.
    stats_cache: HashMap<(u64, u64), Arc<SystemStats>>,
    /// `class name → (class fingerprint, dependency fingerprint)` as of the
    /// last completed round; the lookup key for [`Self::class_stats`].
    class_keys: BTreeMap<String, (u64, u64)>,
    /// Verify-stage products restored from disk
    /// ([`Self::load_disk_cache`]), consulted when the in-memory
    /// `verify_cache` misses. Kept across rounds: a key that is stale now
    /// can become live again when a closed file is reopened.
    disk_cache: HashMap<(u64, u64), Arc<SavedVerify>>,
    totals: WorkspaceStats,
    last: WorkspaceStats,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// An empty workspace with default lints and automatic parallelism.
    pub fn new() -> Self {
        Workspace::with_config(LintConfig::default(), 0)
    }

    /// An empty workspace with an explicit lint configuration and worker
    /// count (`0` = available parallelism). Usually reached through
    /// [`Checker::into_workspace`](crate::checker::Checker::into_workspace).
    pub fn with_config(config: LintConfig, jobs: usize) -> Self {
        Workspace {
            config,
            jobs,
            recover: false,
            backend: Backend::Auto,
            files: Vec::new(),
            extract_cache: HashMap::new(),
            verify_cache: HashMap::new(),
            stats_cache: HashMap::new(),
            class_keys: BTreeMap::new(),
            disk_cache: HashMap::new(),
            totals: WorkspaceStats::default(),
            last: WorkspaceStats::default(),
        }
    }

    /// Switches recovery mode on or off. Changing the mode invalidates
    /// every cached parse of source-backed files — the same text parses
    /// differently under the two grammars.
    pub fn set_recover(&mut self, recover: bool) {
        if self.recover == recover {
            return;
        }
        self.recover = recover;
        for file in &mut self.files {
            if file.source.is_some() {
                file.parsed = None;
                file.degraded = Diagnostics::new();
            }
        }
    }

    /// Whether recovery mode is on.
    pub fn recover(&self) -> bool {
        self.recover
    }

    /// Selects the claim-checking backend for subsequent rounds (see
    /// [`crate::backend`]). All backends decide identical verdicts — the
    /// differential suite pins this — so switching does **not** invalidate
    /// cached verify results: an entry computed under one backend answers
    /// for any other. (A violation witness is whichever shortest
    /// counterexample the computing engine picked.)
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The claim-checking backend in effect.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Adds a file, or replaces its source if the name is already
    /// registered (keeping its position in project order). Re-registering
    /// identical source is free: the parse cache is kept.
    pub fn set_file(&mut self, name: impl Into<String>, source: impl Into<String>) {
        let name = name.into();
        let source = source.into();
        let fingerprint = fnv1a(&[name.as_bytes(), source.as_bytes()]);
        match self.files.iter_mut().find(|f| f.name == name) {
            Some(state) => {
                if state.fingerprint != fingerprint {
                    state.fingerprint = fingerprint;
                    state.source = Some(source);
                    state.parsed = None;
                    state.degraded = Diagnostics::new();
                }
            }
            None => self.files.push(FileState {
                name,
                fingerprint,
                source: Some(source),
                parsed: None,
                degraded: Diagnostics::new(),
            }),
        }
    }

    /// Registers an already-parsed module under `name`, bypassing the
    /// parser (used by
    /// [`Checker::check_module`](crate::checker::Checker::check_module)).
    /// The module's fingerprint is derived from its printed form.
    pub fn set_parsed_module(&mut self, name: impl Into<String>, module: Module) {
        let name = name.into();
        let printed = print_module(&module);
        let fingerprint = fnv1a(&[name.as_bytes(), printed.as_bytes()]);
        if let Some(state) = self.files.iter_mut().find(|f| f.name == name) {
            if state.fingerprint == fingerprint {
                return;
            }
        }
        let units = class_units(&name, &module);
        let state = FileState {
            name: name.clone(),
            fingerprint,
            source: None,
            parsed: Some(Ok(units)),
            degraded: degraded_diags(&module),
        };
        match self.files.iter_mut().find(|f| f.name == name) {
            Some(existing) => *existing = state,
            None => self.files.push(state),
        }
    }

    /// Removes a file from the project. Returns whether it was present.
    pub fn remove_file(&mut self, name: &str) -> bool {
        let before = self.files.len();
        self.files.retain(|f| f.name != name);
        before != self.files.len()
    }

    /// The registered file names, in project order.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(|f| f.name.as_str())
    }

    /// Counters and timings accumulated since the workspace was created.
    pub fn stats(&self) -> &WorkspaceStats {
        &self.totals
    }

    /// Counters and timings of the most recent [`check`](Self::check)
    /// round only.
    pub fn last_round(&self) -> &WorkspaceStats {
        &self.last
    }

    /// Runs one verification round over the current file set, reusing
    /// every cached artifact whose fingerprints still match.
    ///
    /// # Errors
    ///
    /// Returns the first parse failure in project order. Parse results
    /// (including failures) are cached, so an unchanged broken file fails
    /// again without re-parsing.
    pub fn check(&mut self) -> Result<Checked, CheckError> {
        let mut round = WorkspaceStats {
            rounds: 1,
            ..WorkspaceStats::default()
        };

        // Phase 1: (re-)parse changed files.
        let t = Instant::now();
        for file in &mut self.files {
            if file.parsed.is_some() {
                round.parse_cache_hits += 1;
                continue;
            }
            round.files_parsed += 1;
            let source = file
                .source
                .as_deref()
                .expect("files without source are registered pre-parsed");
            file.parsed = Some(if self.recover {
                let module = parse_module_recover(source);
                file.degraded = degraded_diags(&module);
                Ok(class_units(&file.name, &module))
            } else {
                match parse_module(source) {
                    Ok(module) => Ok(class_units(&file.name, &module)),
                    Err(e) => Err(e),
                }
            });
        }
        round.parse_time = t.elapsed();
        let first_failure = self.files.iter().find_map(|file| match &file.parsed {
            Some(Err(error)) => Some(CheckError {
                file: file.name.clone(),
                error: error.clone(),
            }),
            _ => None,
        });
        if let Some(failure) = first_failure {
            self.finish_round(round);
            return Err(failure);
        }

        // Phase 2: the class list. Duplicate names resolve to the later
        // definition (Python's last-definition semantics); each shadowed
        // definition is reported and dropped before any stage runs, so
        // the winner is deterministic and explicit.
        let mut all: Vec<(&str, &ClassUnit)> = Vec::new();
        for file in &self.files {
            if let Some(Ok(units)) = &file.parsed {
                for unit in units {
                    all.push((&file.name, unit));
                }
            }
        }
        let mut last_index: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, (_, unit)) in all.iter().enumerate() {
            last_index.insert(unit.name.as_str(), i);
        }
        let mut duplicate_diags = Diagnostics::new();
        for (i, (file, unit)) in all.iter().enumerate() {
            let winner = last_index[unit.name.as_str()];
            if winner == i {
                continue;
            }
            let (winner_file, _) = all[winner];
            let message = if *file == winner_file {
                format!(
                    "class `{}` defined more than once in {file}; the later \
                     definition is used",
                    unit.name
                )
            } else {
                format!(
                    "class `{}` defined in both {file} and {winner_file}; the \
                     definition in {winner_file} is used",
                    unit.name
                )
            };
            duplicate_diags.push(Diagnostic::error(codes::BAD_ANNOTATION, message));
        }
        let units: Vec<&ClassUnit> = all
            .iter()
            .enumerate()
            .filter(|(i, (_, unit))| last_index[unit.name.as_str()] == *i)
            .map(|(_, (_, unit))| *unit)
            .collect();

        // Phase 3: extraction + spec validation for classes whose
        // fingerprint is new.
        let t = Instant::now();
        let mut extract_entries: Vec<Option<Arc<ExtractEntry>>> = units
            .iter()
            .map(|u| self.extract_cache.get(&u.fingerprint).cloned())
            .collect();
        let missing: Vec<usize> = (0..units.len())
            .filter(|&i| extract_entries[i].is_none())
            .collect();
        round.extracted = missing.len() as u64;
        round.extract_cache_hits = (units.len() - missing.len()) as u64;
        let fresh = par_map(self.effective_jobs(), &missing, |&i| {
            Arc::new(run_extract(units[i]))
        });
        for (&i, entry) in missing.iter().zip(fresh) {
            self.extract_cache
                .insert(units[i].fingerprint, entry.clone());
            extract_entries[i] = Some(entry);
        }
        let extract_entries: Vec<Arc<ExtractEntry>> =
            extract_entries.into_iter().map(Option::unwrap).collect();
        round.extract_time = t.elapsed();

        // Phase 4: dependency fingerprints and the spec index.
        let fp_of: BTreeMap<&str, u64> = units
            .iter()
            .map(|u| (u.name.as_str(), u.fingerprint))
            .collect();
        let spec_index: BTreeMap<String, ClassSpec> = extract_entries
            .iter()
            .filter_map(|e| e.extraction.as_ref())
            .map(|x| (x.name.clone(), x.spec.clone()))
            .collect();
        let dep_fingerprints: Vec<u64> = extract_entries
            .iter()
            .zip(&units)
            .map(|(entry, unit)| match &entry.extraction {
                None => unit.fingerprint,
                Some(x) => {
                    let mut parts: Vec<Vec<u8>> = vec![unit.fingerprint.to_le_bytes().to_vec()];
                    for dep in x.dependencies() {
                        parts.push(dep.as_bytes().to_vec());
                        let dep_fp = fp_of.get(dep).copied().unwrap_or(u64::MAX);
                        parts.push(dep_fp.to_le_bytes().to_vec());
                    }
                    let slices: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
                    fnv1a(&slices)
                }
            })
            .collect();

        // Phase 5: resolution + lints + verification for invalidated
        // classes.
        let t = Instant::now();
        let mut verify_entries: Vec<Option<Arc<VerifyEntry>>> = units
            .iter()
            .enumerate()
            .map(|(i, u)| {
                extract_entries[i].extraction.as_ref()?;
                self.verify_cache
                    .get(&(u.fingerprint, dep_fingerprints[i]))
                    .cloned()
            })
            .collect();
        let missing: Vec<usize> = (0..units.len())
            .filter(|&i| verify_entries[i].is_none() && extract_entries[i].extraction.is_some())
            .collect();
        round.verified = missing.len() as u64;
        round.verify_cache_hits = units
            .iter()
            .enumerate()
            .filter(|(i, _)| extract_entries[*i].extraction.is_some())
            .count() as u64
            - round.verified;
        let config = &self.config;
        let backend = self.backend;
        let disk_cache = &self.disk_cache;
        let fresh = par_map(self.effective_jobs(), &missing, |&i| {
            let extraction = extract_entries[i]
                .extraction
                .clone()
                .expect("verify stage only runs for @sys classes");
            let key = (units[i].fingerprint, dep_fingerprints[i]);
            match disk_cache.get(&key) {
                Some(saved) => (
                    Arc::new(run_verify_restored(extraction, &spec_index, saved)),
                    true,
                ),
                None => (
                    Arc::new(run_verify(
                        extraction,
                        units[i],
                        &spec_index,
                        config,
                        backend,
                    )),
                    false,
                ),
            }
        });
        for (&i, (entry, from_disk)) in missing.iter().zip(fresh) {
            round.fast_path_proven += entry.verdict.fast_path_skips as u64;
            round.antichain_frontier += entry.verdict.antichain_frontier;
            round.antichain_pruned += entry.verdict.antichain_pruned;
            round.verify_disk_hits += u64::from(from_disk);
            self.verify_cache
                .insert((units[i].fingerprint, dep_fingerprints[i]), entry.clone());
            verify_entries[i] = Some(entry);
        }
        round.verify_time = t.elapsed();

        // Phase 6: assemble the report in class order — the same stage
        // ordering as the sequential pipeline, normalized at the end, so
        // cached, parallel, and cold runs are byte-identical.
        let t = Instant::now();
        let mut diagnostics = Diagnostics::new();
        for entry in &extract_entries {
            diagnostics.extend(entry.extract_diags.clone());
        }
        for entry in &extract_entries {
            diagnostics.extend(entry.validate_diags.clone());
        }
        for entry in verify_entries.iter().flatten() {
            diagnostics.extend(entry.resolve_diags.clone());
        }
        for entry in verify_entries.iter().flatten() {
            diagnostics.extend(entry.lint_diags.clone());
        }
        let mut usage_violations: Vec<(String, UsageViolation)> = Vec::new();
        let mut claim_violations: Vec<(String, ClaimViolation)> = Vec::new();
        let mut integrations = Vec::new();
        let mut systems: Vec<System> = Vec::new();
        for entry in verify_entries.iter().flatten() {
            diagnostics.extend(entry.verdict.diagnostics.clone());
            for v in &entry.verdict.usage_violations {
                usage_violations.push((entry.system.name.clone(), v.clone()));
            }
            for v in &entry.verdict.claim_violations {
                claim_violations.push((entry.system.name.clone(), v.clone()));
            }
            if let Some(integ) = &entry.verdict.integration {
                integrations.push((entry.system.name.clone(), integ.clone()));
            }
            systems.push(entry.system.clone());
        }
        for file in &self.files {
            diagnostics.extend(file.degraded.clone());
        }
        diagnostics.extend(duplicate_diags);
        self.config.apply(&mut diagnostics);
        if self.config.level(codes::INVALID_SUBSYSTEM_USAGE) != LintLevel::Deny {
            usage_violations.clear();
        }
        if self.config.level(codes::FAIL_TO_MEET_REQUIREMENT) != LintLevel::Deny {
            claim_violations.clear();
        }
        let checked = Checked {
            systems: systems.into_iter().collect::<SystemSet>(),
            integrations,
            report: CheckReport {
                diagnostics,
                usage_violations,
                claim_violations,
            },
        };
        round.assemble_time = t.elapsed();

        // Drop cache entries the round did not touch: after an edit the
        // superseded fingerprints can never hit again.
        let live_extract: HashSet<u64> = units.iter().map(|u| u.fingerprint).collect();
        self.extract_cache.retain(|fp, _| live_extract.contains(fp));
        let live_verify: HashSet<(u64, u64)> = units
            .iter()
            .zip(&dep_fingerprints)
            .map(|(u, &d)| (u.fingerprint, d))
            .collect();
        self.verify_cache.retain(|key, _| live_verify.contains(key));
        self.stats_cache.retain(|key, _| live_verify.contains(key));
        self.class_keys = units
            .iter()
            .enumerate()
            .filter(|(i, _)| extract_entries[*i].extraction.is_some())
            .map(|(i, u)| (u.name.clone(), (u.fingerprint, dep_fingerprints[i])))
            .collect();

        self.finish_round(round);
        Ok(checked)
    }

    /// The statistics of a verified class, cached per class fingerprint.
    ///
    /// Statistics determinize and minimize the class's spec language —
    /// export-grade work that used to be recomputed on every call. The
    /// workspace computes them at most once per `(class, dependencies)`
    /// fingerprint pair; unchanged classes hit the cache across rounds and
    /// repeated queries. Returns `None` before the first
    /// [`check`](Self::check) round, or for names that are not `@sys`
    /// classes of the current file set.
    ///
    /// Hit/miss counts accumulate in [`stats`](Self::stats) as
    /// [`WorkspaceStats::stats_cache_hits`] /
    /// [`WorkspaceStats::stats_computed`].
    pub fn class_stats(&mut self, class: &str) -> Option<Arc<SystemStats>> {
        let key = *self.class_keys.get(class)?;
        if let Some(stats) = self.stats_cache.get(&key) {
            self.totals.stats_cache_hits += 1;
            return Some(stats.clone());
        }
        let entry = self.verify_cache.get(&key)?;
        let stats = Arc::new(system_stats(&entry.system));
        self.totals.stats_computed += 1;
        self.stats_cache.insert(key, stats.clone());
        Some(stats)
    }

    /// Seeds the workspace from a persistent cache file written by
    /// [`save_disk_cache`](Self::save_disk_cache). Subsequent
    /// [`check`](Self::check) rounds restore matching classes instead of
    /// re-running the expensive analyses, counting each restore in
    /// [`WorkspaceStats::verify_disk_hits`].
    ///
    /// Loading never fails: corrupt or version-mismatched files degrade
    /// to a smaller (possibly empty) cache — see [`crate::persist`].
    pub fn load_disk_cache(&mut self, path: impl AsRef<std::path::Path>) -> persist::LoadOutcome {
        let outcome = persist::load(path.as_ref());
        for (key, saved) in &outcome.entries {
            self.disk_cache.insert(*key, saved.clone());
        }
        outcome
    }

    /// Atomically persists the verify-stage products of every class of
    /// the last completed round, so a future process can
    /// [`load_disk_cache`](Self::load_disk_cache) them. Returns the
    /// number of records written.
    pub fn save_disk_cache(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let records: Vec<((u64, u64), SavedVerify)> = self
            .verify_cache
            .iter()
            .map(|(&key, entry)| {
                (
                    key,
                    SavedVerify {
                        lint_diags: entry.lint_diags.clone(),
                        verdict_diags: entry.verdict.diagnostics.clone(),
                        usage_violations: entry.verdict.usage_violations.clone(),
                        claim_violations: entry.verdict.claim_violations.clone(),
                        fast_path_skips: entry.verdict.fast_path_skips,
                    },
                )
            })
            .collect();
        persist::save(
            path.as_ref(),
            records.iter().map(|(key, saved)| (*key, saved)),
        )
    }

    fn finish_round(&mut self, round: WorkspaceStats) {
        self.totals.absorb(&round);
        self.last = round;
    }

    fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// One `W014` per construct recovery mode degraded to `skip`: the model
/// claims nothing about the skipped region, so every downstream verdict
/// is conditional on the region being irrelevant to the protocol.
fn degraded_diags(module: &Module) -> Diagnostics {
    let mut out = Diagnostics::new();
    for d in collect_degraded(module) {
        out.push(
            Diagnostic::warning(
                codes::CONSTRUCT_DEGRADED,
                format!("construct degraded to `skip`: {}", d.reason),
            )
            .with_span(d.span)
            .with_note(
                "the model treats this region as doing nothing; verification \
                 results do not cover it",
            ),
        );
    }
    out
}

/// Splits a module into per-class units, fingerprinting each class by its
/// printed AST plus its position and file (so diagnostics spans stay exact
/// under incremental reuse).
fn class_units(file: &str, module: &Module) -> Vec<ClassUnit> {
    let mut units = Vec::new();
    for stmt in &module.body {
        let Stmt::ClassDef(class) = stmt else {
            continue;
        };
        let solo = Module {
            body: vec![Stmt::ClassDef(class.clone())],
        };
        let printed = print_module(&solo);
        let fingerprint = fnv1a(&[
            file.as_bytes(),
            &class.span.start.to_le_bytes(),
            printed.as_bytes(),
        ]);
        units.push(ClassUnit {
            name: class.name.node.clone(),
            fingerprint,
            solo: Arc::new(solo),
        });
    }
    units
}

/// The extraction stage of one class: pass 1 plus spec validation.
fn run_extract(unit: &ClassUnit) -> ExtractEntry {
    let class = unit
        .solo
        .classes()
        .next()
        .expect("solo modules hold exactly one class");
    let mut extract_diags = Diagnostics::new();
    let extraction = extract_class(class, &mut extract_diags);
    let mut validate_diags = Diagnostics::new();
    if let Some(x) = &extraction {
        validate_spec(&x.spec, &mut validate_diags);
    }
    ExtractEntry {
        extraction,
        extract_diags,
        validate_diags,
    }
}

/// The verification stage of one class: resolution against the subsystem
/// specs, the per-class lint passes, and usage/claim verification.
fn run_verify(
    extraction: ClassExtraction,
    unit: &ClassUnit,
    spec_index: &BTreeMap<String, ClassSpec>,
    config: &LintConfig,
    backend: Backend,
) -> VerifyEntry {
    let mut resolve_diags = Diagnostics::new();
    let system = resolve_class(extraction, spec_index, &mut resolve_diags);

    // Usage verification and the typestate lints read the *specs* of the
    // subsystems, never their resolved systems, so spec-only stand-ins
    // keep the stage independent of every other class's resolution. The
    // other lint passes only inspect the class under analysis (the scope's
    // one class present in `unit.solo`), so the widened scope still
    // reproduces the module-level run exactly.
    let mut verify_scope: Vec<System> = vec![system.clone()];
    if let SystemKind::Composite(info) = &system.kind {
        for sub in &info.subsystems {
            if sub.class_name == system.name {
                continue;
            }
            if verify_scope.iter().any(|s| s.name == sub.class_name) {
                continue;
            }
            if let Some(spec) = spec_index.get(&sub.class_name) {
                verify_scope.push(System {
                    name: sub.class_name.clone(),
                    kind: SystemKind::Base,
                    spec: spec.clone(),
                    claims: Vec::new(),
                });
            }
        }
    }
    let verify_scope: SystemSet = verify_scope.into_iter().collect();

    let mut lint_diags = Diagnostics::new();
    run_lints(&unit.solo, &verify_scope, config, &mut lint_diags);

    let proven = proven_fields(unit.solo.class(&system.name), &system, &verify_scope);
    let verdict = verify_system(&system, &verify_scope, &proven, backend);

    VerifyEntry {
        system,
        verdict,
        resolve_diags,
        lint_diags,
    }
}

/// The verification stage restored from an on-disk cache hit: re-runs
/// only the cheap, deterministic reconstruction (resolution, and the
/// integration automaton for composites) and replays the persisted
/// results of the expensive analyses — lints, the typestate fast-path
/// proof, usage inclusion, and claim checking all stay skipped.
///
/// Soundness rests on the cache key: the `(class fingerprint, dependency
/// fingerprint)` pair covers every input those analyses read, so a hit
/// means the persisted products are exactly what a fresh run would
/// compute.
fn run_verify_restored(
    extraction: ClassExtraction,
    spec_index: &BTreeMap<String, ClassSpec>,
    saved: &SavedVerify,
) -> VerifyEntry {
    let mut resolve_diags = Diagnostics::new();
    let system = resolve_class(extraction, spec_index, &mut resolve_diags);
    let integration = system
        .is_composite()
        .then(|| crate::integration::build_integration(&system));
    VerifyEntry {
        system,
        verdict: SystemVerdict {
            integration,
            diagnostics: saved.verdict_diags.clone(),
            usage_violations: saved.usage_violations.clone(),
            claim_violations: saved.claim_violations.clone(),
            fast_path_skips: saved.fast_path_skips,
            // Restored rounds run no inclusion search, so they report no
            // antichain work — the counters measure what this round did.
            antichain_frontier: 0,
            antichain_pruned: 0,
        },
        resolve_diags,
        lint_diags: saved.lint_diags.clone(),
    }
}

/// Maps `f` over `items` on a scoped worker pool of at most `jobs`
/// threads, returning results in input order. `jobs <= 1` (or a single
/// item) runs inline on the calling thread.
fn par_map<T: Sync, R: Send>(jobs: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("worker result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker result slot poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

/// FNV-1a over a sequence of byte slices — a stable, dependency-free
/// content fingerprint (collisions are astronomically unlikely at project
/// scale and would only cause a stale-cache reuse within one process).
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        // Length-prefix each part so concatenation ambiguity cannot alias
        // two different part sequences.
        for b in (part.len() as u64).to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        for &b in *part {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}
