//! Model extraction (§3 of the paper).
//!
//! The three steps, in order:
//!
//! 1. **Method dependency extraction** ([`dependency`]) — the graph of
//!    entry/exit nodes and ordering constraints (§3.1, Fig. 3);
//! 2. **Method behavior extraction** ([`lower`]) — lowering method bodies
//!    to the imperative calculus and inferring per-exit behaviors (§3.2,
//!    Fig. 4);
//! 3. **Method invocation analysis** ([`invocation`]) — defined-operation
//!    checks and exhaustive `match` over exit points (§3, step 3).

pub mod cfg;
pub mod dependency;
pub mod invocation;
pub mod lower;
