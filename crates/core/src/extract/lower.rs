//! Lowering MicroPython method bodies to the imperative calculus.
//!
//! This implements the abstraction step of §3.2: *"the syntax of the source
//! language is an abstraction of MicroPython that captures the control flow
//! of the program and function calls — our input language ignores the
//! intermediate values being calculated."*
//!
//! * Calls on declared subsystem fields (`self.a.open()`) become events
//!   `a.open`; every other expression becomes `skip`.
//! * `if`/`elif`/`else` and `match`/`case` become nondeterministic choice.
//! * `for` and `while` become `loop(*)`; calls in the condition/iterable
//!   are placed so their evaluation order is preserved.
//! * Every `return` becomes a `return` at a fresh exit point, and the
//!   declared next-operations (Table 2 forms) are recorded per exit.
//! * The body is wrapped as `body; return` at a synthetic *implicit exit*
//!   so falling off the end is modeled as `return []` (Python's `None`).

use micropython_parser::ast::{Expr, ExprKind, FuncDef, Pattern, Stmt};
use micropython_parser::Span;
use shelley_ir::{ExitId, Program};
use shelley_regular::{Alphabet, Symbol};
use std::collections::{BTreeMap, BTreeSet};

/// The statically-recognized shape of a `return` value (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReturnForm {
    /// `return` with no value.
    Bare,
    /// `return ["m1", ..., "mn"]`.
    List,
    /// `return ["m1", ...], value`.
    TupleWithList,
    /// Any other value — the next-operations cannot be determined.
    Other,
    /// The synthetic exit for bodies that can fall off the end.
    Implicit,
}

/// One exit point discovered during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredExit {
    /// Declared next-operation names (empty for `return []`, bare returns,
    /// undeterminable forms, and the implicit exit).
    pub next: Vec<String>,
    /// The `return`'s span (absent for the implicit exit).
    pub span: Option<Span>,
    /// Which Table 2 form the return had.
    pub form: ReturnForm,
}

/// A call on a constrained (subsystem) field, for invocation analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The subsystem field (`a` in `self.a.open()`).
    pub field: String,
    /// The invoked method name.
    pub method: String,
    /// Where the call was written.
    pub span: Span,
    /// Whether the call is the subject of a `match` statement.
    pub scrutinized: bool,
}

/// A `match` whose subject is a constrained call, for exhaustiveness
/// analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSite {
    /// The subsystem field of the subject call.
    pub field: String,
    /// The method of the subject call.
    pub method: String,
    /// The `match` statement's span.
    pub span: Span,
    /// Per case: the set of next-operation strings in the pattern (when the
    /// pattern is a string-list, possibly inside a tuple), its span, and
    /// whether it is a catch-all (wildcard or capture).
    pub cases: Vec<MatchCaseInfo>,
}

/// Summary of one `case` arm for exhaustiveness checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchCaseInfo {
    /// The string set of a list pattern, if the pattern has that shape.
    pub strings: Option<BTreeSet<String>>,
    /// Whether the pattern matches anything (`_` or a capture).
    pub catch_all: bool,
    /// The pattern's span.
    pub span: Span,
}

/// The result of lowering one method body.
#[derive(Debug, Clone)]
pub struct LoweredMethod {
    /// The lowered program, wrapped as `body; return(implicit)`.
    pub program: Program,
    /// Exit points indexed by [`ExitId`]; the implicit exit is last.
    pub exits: Vec<LoweredExit>,
    /// All constrained call sites in source order.
    pub calls: Vec<CallSite>,
    /// All `match` statements over constrained calls.
    pub matches: Vec<MatchSite>,
    /// Spans of `break`/`continue` statements (over-approximated as `skip`).
    pub loop_jumps: Vec<Span>,
    /// Assignments to constrained fields (`self.a = ...`) — aliasing the
    /// analysis cannot track.
    pub field_writes: Vec<(String, Span)>,
}

impl LoweredMethod {
    /// The [`ExitId`] of the synthetic implicit exit.
    pub fn implicit_exit(&self) -> ExitId {
        self.exits.len() - 1
    }
}

/// Lowers `func`'s body, treating `fields` as the constrained subsystem
/// fields. Event symbols (`field.method`) are interned into `alphabet`.
pub fn lower_method(
    func: &FuncDef,
    fields: &BTreeSet<String>,
    alphabet: &mut Alphabet,
) -> LoweredMethod {
    let mut ctx = LowerCtx {
        fields,
        alphabet,
        exits: Vec::new(),
        calls: Vec::new(),
        matches: Vec::new(),
        loop_jumps: Vec::new(),
        field_writes: Vec::new(),
    };
    let body = ctx.lower_stmts(&func.body);
    // Implicit exit: Python returns None when the body falls through.
    let implicit = ctx.exits.len();
    ctx.exits.push(LoweredExit {
        next: Vec::new(),
        span: None,
        form: ReturnForm::Implicit,
    });
    let program = Program::seq(body, Program::ret(implicit));
    LoweredMethod {
        program,
        exits: ctx.exits,
        calls: ctx.calls,
        matches: ctx.matches,
        loop_jumps: ctx.loop_jumps,
        field_writes: ctx.field_writes,
    }
}

struct LowerCtx<'a> {
    fields: &'a BTreeSet<String>,
    alphabet: &'a mut Alphabet,
    exits: Vec<LoweredExit>,
    calls: Vec<CallSite>,
    matches: Vec<MatchSite>,
    loop_jumps: Vec<Span>,
    field_writes: Vec<(String, Span)>,
}

impl LowerCtx<'_> {
    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Program {
        Program::seq_all(stmts.iter().map(|s| self.lower_stmt(s)))
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Program {
        match stmt {
            Stmt::Expr(e) => self.lower_expr(&e.expr, false),
            Stmt::Assign(a) => {
                // Aliasing hazard: reassigning a constrained field makes the
                // model diverge from the running object.
                if let ExprKind::Attribute { value, attr } = &a.target.kind {
                    if matches!(&value.kind, ExprKind::Name(n) if n == "self")
                        && self.fields.contains(&attr.node)
                    {
                        self.field_writes.push((attr.node.clone(), a.span));
                    }
                }
                // Evaluation order: value first, then any calls in the
                // target (e.g. a subscript index).
                let v = self.lower_expr(&a.value, false);
                let t = self.lower_expr(&a.target, false);
                Program::seq(v, t)
            }
            Stmt::Return(r) => {
                let (calls, exit) = match &r.value {
                    None => (
                        Program::skip(),
                        LoweredExit {
                            next: Vec::new(),
                            span: Some(r.span),
                            form: ReturnForm::Bare,
                        },
                    ),
                    Some(value) => {
                        let calls = self.lower_expr(value, false);
                        let (next, form) = extract_next_ops(value);
                        (
                            calls,
                            LoweredExit {
                                next,
                                span: Some(r.span),
                                form,
                            },
                        )
                    }
                };
                let id = self.exits.len();
                self.exits.push(exit);
                Program::seq(calls, Program::ret(id))
            }
            Stmt::If(ifs) => {
                // Each branch: condition calls then body. The conditions of
                // later branches are evaluated only if earlier ones fail;
                // the abstraction keeps their calls inside the respective
                // choice arm, prefixed by all earlier condition calls.
                let mut arms: Vec<Program> = Vec::new();
                let mut cond_prefix: Vec<Program> = Vec::new();
                for (cond, body) in &ifs.branches {
                    let cond_calls = self.lower_expr(cond, false);
                    cond_prefix.push(cond_calls);
                    let mut arm = Program::seq_all(cond_prefix.iter().cloned());
                    arm = Program::seq(arm, self.lower_stmts(body));
                    arms.push(arm);
                }
                let else_arm = {
                    let all_conds = Program::seq_all(cond_prefix.iter().cloned());
                    match &ifs.orelse {
                        Some(body) => Program::seq(all_conds, self.lower_stmts(body)),
                        None => all_conds,
                    }
                };
                arms.push(else_arm);
                Program::choice(arms)
            }
            Stmt::Match(ms) => {
                // The subject is evaluated once, before branching.
                let subject = self.lower_expr(&ms.subject, true);
                // Record the match for exhaustiveness analysis when the
                // subject is a constrained call.
                if let Some((path, method)) = ms.subject.as_self_method_call() {
                    if let [field] = path.as_slice() {
                        if self.fields.contains(*field) {
                            let cases = ms
                                .cases
                                .iter()
                                .map(|c| MatchCaseInfo {
                                    strings: pattern_strings(&c.pattern),
                                    catch_all: matches!(
                                        c.pattern,
                                        Pattern::Wildcard(_) | Pattern::Capture(_)
                                    ),
                                    span: c.pattern.span(),
                                })
                                .collect();
                            self.matches.push(MatchSite {
                                field: (*field).to_owned(),
                                method: method.to_owned(),
                                span: ms.span,
                                cases,
                            });
                        }
                    }
                }
                let arms: Vec<Program> =
                    ms.cases.iter().map(|c| self.lower_stmts(&c.body)).collect();
                Program::seq(subject, Program::choice(arms))
            }
            Stmt::While(ws) => {
                // cond (body cond)* — the condition runs before every
                // iteration and once more on exit.
                let cond = self.lower_expr(&ws.cond, false);
                let body = self.lower_stmts(&ws.body);
                Program::seq(cond.clone(), Program::loop_(Program::seq(body, cond)))
            }
            Stmt::For(fs) => {
                // The iterable is evaluated once; the body loops.
                let iter = self.lower_expr(&fs.iter, false);
                let body = self.lower_stmts(&fs.body);
                Program::seq(iter, Program::loop_(body))
            }
            Stmt::Break(span) | Stmt::Continue(span) => {
                self.loop_jumps.push(*span);
                Program::skip()
            }
            Stmt::Pass(_) | Stmt::Import(_) => Program::skip(),
            // Nested definitions are outside the analyzed subset; their
            // bodies do not run at method-execution time.
            Stmt::ClassDef(_) | Stmt::FuncDef(_) => Program::skip(),
            Stmt::Try(t) => {
                // Exceptions can interrupt the try body at any call
                // boundary, so the abstraction over-approximates with a
                // choice of observable completions: the body ran to the end
                // (plus `else`), the body was cut short and a handler ran,
                // or a handler ran alone (interruption before any call).
                // `finally` always runs afterwards.
                let body = self.lower_stmts(&t.body);
                let orelse = match &t.orelse {
                    Some(b) => self.lower_stmts(b),
                    None => Program::skip(),
                };
                let mut arms = vec![Program::seq(body.clone(), orelse)];
                for h in &t.handlers {
                    let exc = match &h.exc {
                        Some(e) => self.lower_expr(e, false),
                        None => Program::skip(),
                    };
                    let handler = Program::seq(exc, self.lower_stmts(&h.body));
                    arms.push(handler.clone());
                    arms.push(Program::seq(body.clone(), handler));
                }
                let tried = Program::choice(arms);
                let finally = match &t.finally {
                    Some(b) => self.lower_stmts(b),
                    None => Program::skip(),
                };
                Program::seq(tried, finally)
            }
            Stmt::With(w) => {
                // Context managers are entered in order, then the body runs.
                // `__enter__`/`__exit__` of unconstrained objects are
                // invisible to the alphabet, so this is a plain sequence.
                let mut parts = Vec::new();
                for item in &w.items {
                    parts.push(self.lower_expr(&item.context, false));
                    if let Some(target) = &item.target {
                        parts.push(self.lower_expr(target, false));
                    }
                }
                parts.push(self.lower_stmts(&w.body));
                Program::seq_all(parts)
            }
            Stmt::Raise(r) => {
                // The raised expression is evaluated; the jump itself is
                // control-flow the regular abstraction already
                // over-approximates (like `break`).
                let mut parts = Vec::new();
                for e in r.exc.iter().chain(r.cause.iter()) {
                    parts.push(self.lower_expr(e, false));
                }
                Program::seq_all(parts)
            }
            // A degraded region is exactly the paper's `skip`: whatever the
            // original source did, the model claims nothing about it. W014
            // reports the imprecision.
            Stmt::Degraded(_) => Program::skip(),
        }
    }

    /// Lowers the constrained calls inside an expression, in evaluation
    /// order (arguments before the call itself, left to right).
    fn lower_expr(&mut self, expr: &Expr, scrutinized: bool) -> Program {
        let mut parts = Vec::new();
        self.collect_calls(expr, scrutinized, &mut parts);
        Program::seq_all(parts)
    }

    fn collect_calls(&mut self, expr: &Expr, scrutinized: bool, out: &mut Vec<Program>) {
        match &expr.kind {
            ExprKind::Call { func, args } => {
                // Arguments are evaluated before the call fires.
                // (The callee chain of an unconstrained call may itself
                // contain calls, e.g. `self.registry().lookup()`.)
                if let Some((path, method)) = expr.as_self_method_call() {
                    if let [field] = path.as_slice() {
                        if self.fields.contains(*field) {
                            for a in args {
                                self.collect_calls(a, false, out);
                            }
                            let event = format!("{field}.{method}");
                            let sym: Symbol = self.alphabet.intern(&event);
                            self.calls.push(CallSite {
                                field: (*field).to_owned(),
                                method: method.to_owned(),
                                span: expr.span,
                                scrutinized,
                            });
                            out.push(Program::call(sym));
                            return;
                        }
                    }
                }
                self.collect_calls(func, false, out);
                for a in args {
                    self.collect_calls(a, false, out);
                }
            }
            ExprKind::Attribute { value, .. } => self.collect_calls(value, false, out),
            ExprKind::Subscript { value, index } => {
                self.collect_calls(value, false, out);
                self.collect_calls(index, false, out);
            }
            ExprKind::List(items) | ExprKind::Tuple(items) | ExprKind::Set(items) => {
                for i in items {
                    self.collect_calls(i, false, out);
                }
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    self.collect_calls(k, false, out);
                    self.collect_calls(v, false, out);
                }
            }
            ExprKind::BinOp { left, right, .. } => {
                self.collect_calls(left, false, out);
                self.collect_calls(right, false, out);
            }
            ExprKind::UnaryOp { operand, .. } => self.collect_calls(operand, false, out),
            // `await` is transparent: the awaited call happens.
            ExprKind::Await(operand) => self.collect_calls(operand, scrutinized, out),
            ExprKind::Starred { value, .. } => self.collect_calls(value, false, out),
            ExprKind::Comp {
                element,
                value,
                clauses,
                ..
            } => {
                // Iterables are evaluated eagerly; the element/filters run
                // per iteration — approximated as a single evaluation (the
                // loop body's calls appear at least once in the order they
                // are written, matching the `for`-statement abstraction
                // without its `loop`, which the subset's verifier would
                // over-penalize for lazy generators).
                for c in clauses {
                    self.collect_calls(&c.iter, false, out);
                }
                for c in clauses {
                    for cond in &c.ifs {
                        self.collect_calls(cond, false, out);
                    }
                }
                self.collect_calls(element, false, out);
                if let Some(v) = value {
                    self.collect_calls(v, false, out);
                }
            }
            // A lambda body does not run at definition time.
            ExprKind::Lambda { .. } => {}
            ExprKind::Name(_)
            | ExprKind::Str(_)
            | ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Bool(_)
            | ExprKind::NoneLit
            | ExprKind::FString(_) => {}
        }
    }
}

/// Extracts declared next-operations from a return value (Table 2).
fn extract_next_ops(value: &Expr) -> (Vec<String>, ReturnForm) {
    if let Some(list) = value.as_string_list() {
        return (
            list.into_iter().map(str::to_owned).collect(),
            ReturnForm::List,
        );
    }
    if let ExprKind::Tuple(items) = &value.kind {
        if let Some(first) = items.first() {
            if let Some(list) = first.as_string_list() {
                return (
                    list.into_iter().map(str::to_owned).collect(),
                    ReturnForm::TupleWithList,
                );
            }
        }
    }
    (Vec::new(), ReturnForm::Other)
}

/// The string set of a list pattern (possibly the first element of a tuple
/// pattern), if it has that shape.
fn pattern_strings(p: &Pattern) -> Option<BTreeSet<String>> {
    match p {
        Pattern::List(items, _) => items
            .iter()
            .map(|i| match i {
                Pattern::Literal(e) => match &e.kind {
                    ExprKind::Str(s) => Some(s.clone()),
                    _ => None,
                },
                _ => None,
            })
            .collect(),
        Pattern::Tuple(items, _) => items.first().and_then(pattern_strings),
        _ => None,
    }
}

/// A convenience wrapper mapping qualified event names back to
/// `(field, method)` pairs.
pub fn split_event(name: &str) -> Option<(&str, &str)> {
    name.split_once('.')
}

/// Builds the map from subsystem field names to the class they are
/// instantiated with, by scanning `__init__` for `self.x = Class()`
/// assignments.
pub fn subsystem_classes(func: &FuncDef) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    collect_field_inits(&func.body, &mut out);
    out
}

fn collect_field_inits(stmts: &[Stmt], out: &mut BTreeMap<String, String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(a) => {
                let ExprKind::Attribute { value, attr } = &a.target.kind else {
                    continue;
                };
                if !matches!(&value.kind, ExprKind::Name(n) if n == "self") {
                    continue;
                }
                let ExprKind::Call { func, .. } = &a.value.kind else {
                    continue;
                };
                if let ExprKind::Name(class_name) = &func.kind {
                    out.insert(attr.node.clone(), class_name.clone());
                }
            }
            Stmt::If(ifs) => {
                for (_, body) in &ifs.branches {
                    collect_field_inits(body, out);
                }
                if let Some(body) = &ifs.orelse {
                    collect_field_inits(body, out);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micropython_parser::parse_module;
    use shelley_ir::{denote_exits, infer};

    fn lower_first_method(src: &str, fields: &[&str]) -> (Alphabet, LoweredMethod) {
        let m = parse_module(src).unwrap();
        let class = m.classes().next().unwrap();
        let func = class.methods().next().unwrap();
        let fields: BTreeSet<String> = fields.iter().map(|s| s.to_string()).collect();
        let mut ab = Alphabet::new();
        let lowered = lower_method(func, &fields, &mut ab);
        (ab, lowered)
    }

    #[test]
    fn lowers_open_a_of_badsector() {
        let src = r#"
class BadSector:
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []
"#;
        let (ab, lowered) = lower_first_method(src, &["a", "b"]);
        // Events: a.test, a.open, a.clean.
        assert!(ab.lookup("a.test").is_some());
        assert!(ab.lookup("a.open").is_some());
        assert!(ab.lookup("a.clean").is_some());
        // Two explicit exits + the implicit one.
        assert_eq!(lowered.exits.len(), 3);
        assert_eq!(lowered.exits[0].next, vec!["open_b"]);
        assert!(lowered.exits[1].next.is_empty());
        assert_eq!(lowered.exits[1].form, ReturnForm::List);
        // Behavior: a.test then (a.open | a.clean).
        let behavior = infer(&lowered.program);
        let t = ab.lookup("a.test").unwrap();
        let o = ab.lookup("a.open").unwrap();
        let c = ab.lookup("a.clean").unwrap();
        assert!(behavior.matches(&[t, o]));
        assert!(behavior.matches(&[t, c]));
        assert!(!behavior.matches(&[o]));
        // Match is recorded for exhaustiveness analysis.
        assert_eq!(lowered.matches.len(), 1);
        assert_eq!(lowered.matches[0].method, "test");
        assert_eq!(lowered.matches[0].cases.len(), 2);
        // The implicit exit is unreachable: the match-lowered choice always
        // returns. Verify via the exit-tagged denotation.
        let (_, exits) = denote_exits(&lowered.program);
        let implicit = lowered.implicit_exit();
        let implicit_live = exits
            .iter()
            .any(|(e, r)| *e == implicit && !r.is_empty_language());
        // Both cases return, but the abstraction cannot know the match is
        // exhaustive over runtime values, so the implicit exit IS reachable
        // through the zero-case path only if choice had a fallthrough arm —
        // match lowering has no fallthrough, so it is dead.
        assert!(!implicit_live);
    }

    #[test]
    fn if_without_else_reaches_implicit_exit() {
        let src = r#"
class C:
    def m(self):
        if ready:
            self.a.go()
            return []
"#;
        let (ab, lowered) = lower_first_method(src, &["a"]);
        let (_, exits) = denote_exits(&lowered.program);
        let implicit = lowered.implicit_exit();
        let live = exits
            .iter()
            .any(|(e, r)| *e == implicit && !r.is_empty_language());
        assert!(live, "else-less if must fall through");
        let _ = ab;
    }

    #[test]
    fn while_loops_place_condition_calls() {
        let src = r#"
class C:
    def m(self):
        while self.a.poll():
            self.a.step()
        return []
"#;
        let (ab, lowered) = lower_first_method(src, &["a"]);
        let poll = ab.lookup("a.poll").unwrap();
        let step = ab.lookup("a.step").unwrap();
        let behavior = infer(&lowered.program);
        // Zero iterations: poll only.
        assert!(behavior.matches(&[poll]));
        // Two iterations: poll step poll step poll.
        assert!(behavior.matches(&[poll, step, poll, step, poll]));
        // Body cannot run without the condition being evaluated.
        assert!(!behavior.matches(&[step]));
    }

    #[test]
    fn for_loop_iterates_body() {
        let src = r#"
class C:
    def m(self):
        for v in self.valves():
            self.a.tick()
        return []
"#;
        let (ab, lowered) = lower_first_method(src, &["a"]);
        let tick = ab.lookup("a.tick").unwrap();
        let behavior = infer(&lowered.program);
        assert!(behavior.matches(&[]));
        assert!(behavior.matches(&[tick, tick, tick]));
    }

    #[test]
    fn unconstrained_calls_are_skip() {
        let src = r#"
class C:
    def m(self):
        print("hello")
        self.helper()
        time.sleep(1)
        return []
"#;
        let (ab, lowered) = lower_first_method(src, &["a"]);
        assert_eq!(ab.len(), 0);
        assert!(lowered.calls.is_empty());
        let behavior = infer(&lowered.program);
        assert!(behavior.matches(&[]));
    }

    #[test]
    fn nested_call_arguments_evaluate_first() {
        let src = r#"
class C:
    def m(self):
        self.a.open(self.b.test())
        return []
"#;
        let (ab, lowered) = lower_first_method(src, &["a", "b"]);
        let open = ab.lookup("a.open").unwrap();
        let test = ab.lookup("b.test").unwrap();
        let behavior = infer(&lowered.program);
        assert!(behavior.matches(&[test, open]));
        assert!(!behavior.matches(&[open, test]));
        assert_eq!(lowered.calls.len(), 2);
    }

    #[test]
    fn tuple_return_forms() {
        let src = r#"
class C:
    def m(self):
        return ["close"], 2
"#;
        let (_, lowered) = lower_first_method(src, &[]);
        assert_eq!(lowered.exits[0].next, vec!["close"]);
        assert_eq!(lowered.exits[0].form, ReturnForm::TupleWithList);
    }

    #[test]
    fn bare_and_other_returns() {
        let src = r#"
class C:
    def m(self):
        if x:
            return
        return 42
"#;
        let (_, lowered) = lower_first_method(src, &[]);
        assert_eq!(lowered.exits[0].form, ReturnForm::Bare);
        assert_eq!(lowered.exits[1].form, ReturnForm::Other);
    }

    #[test]
    fn break_is_overapproximated() {
        let src = r#"
class C:
    def m(self):
        while running:
            if stop:
                break
            self.a.step()
        return []
"#;
        let (_, lowered) = lower_first_method(src, &["a"]);
        assert_eq!(lowered.loop_jumps.len(), 1);
    }

    #[test]
    fn subsystem_classes_from_init() {
        let src = r#"
class S:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()
        self.count = 0
        self.pin = Pin(27, OUT)
"#;
        let m = parse_module(src).unwrap();
        let class = m.classes().next().unwrap();
        let init = class.method("__init__").unwrap();
        let map = subsystem_classes(init);
        assert_eq!(map.get("a"), Some(&"Valve".to_string()));
        assert_eq!(map.get("b"), Some(&"Valve".to_string()));
        assert_eq!(map.get("pin"), Some(&"Pin".to_string()));
        assert!(!map.contains_key("count"));
    }

    #[test]
    fn elif_chains_keep_condition_calls_ordered() {
        let src = r#"
class C:
    def m(self):
        if self.a.first():
            pass
        elif self.a.second():
            pass
        return []
"#;
        let (ab, lowered) = lower_first_method(src, &["a"]);
        let first = ab.lookup("a.first").unwrap();
        let second = ab.lookup("a.second").unwrap();
        let behavior = infer(&lowered.program);
        // Taking the elif branch requires evaluating both conditions.
        assert!(behavior.matches(&[first, second]));
        // Taking the if branch evaluates only the first condition.
        assert!(behavior.matches(&[first]));
        // The second condition can never fire before the first.
        assert!(!behavior.matches(&[second]));
    }
}
