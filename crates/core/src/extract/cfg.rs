//! A control-flow graph over MicroPython method bodies.
//!
//! The lowering of §3.2 erases control flow into regular expressions,
//! which is what verification needs — but flow-sensitive *lints* need the
//! statement-level graph back: which statements can execute at all
//! (`W009`), and which subsystem fields are definitely assigned when a
//! statement runs (`E008`/`W010`). This module builds that graph.
//!
//! Shape: one node per statement plus synthetic `Entry`/`Exit` nodes.
//! `return` edges into `Exit`; `break` edges to the statement after the
//! loop; `continue` edges back to the loop head; `if`/`match` fan out per
//! arm; `while`/`for` have a back edge from the body end to the head and a
//! zero-iteration edge past the loop. A `match` without a catch-all arm
//! keeps a fall-through edge (Python falls through when no case matches).
//!
//! Each node also records which subsystem fields the statement *reads*
//! (`self.f` anywhere but a plain assignment target) and *writes* (a plain
//! `self.f = ...`), so definite-assignment dataflow runs directly on the
//! graph.

use micropython_parser::ast::{Expr, ExprKind, Stmt};
use micropython_parser::Span;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a node in a [`Cfg`].
pub type NodeId = usize;

/// What a node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The unique entry node.
    Entry,
    /// The unique exit node (targets of `return` and of falling off the
    /// end of the body).
    Exit,
    /// One source statement.
    Stmt,
}

/// One node of the graph.
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// Entry, exit, or statement.
    pub kind: NodeKind,
    /// The statement's span (`None` for entry/exit).
    pub span: Option<Span>,
    /// Constrained fields this statement reads, with the read's span, in
    /// evaluation order. For `self.a = expr`, reads inside `expr` are
    /// recorded but the target itself is not.
    pub reads: Vec<(String, Span)>,
    /// Constrained fields this statement writes (`self.a = ...`).
    pub writes: Vec<String>,
    /// Method calls this statement performs, in evaluation order
    /// (arguments before the call itself, mirroring the lowering). Only
    /// calls the analyses can interpret are recorded: `self.f.m()` on a
    /// constrained field `f` and sibling `self.m()` calls.
    pub calls: Vec<CallEvent>,
    /// Whether `calls` diverges from the lowering of §3.2 at this node: an
    /// `if` head carries calls from conditions past the first (the lowering
    /// evaluates only a prefix of the conditions per arm), or a `for` head
    /// carries calls in its iterable (the lowering evaluates it once while
    /// the graph's back edge re-executes the head). Trace-sensitive
    /// analyses must treat such a node as unknown rather than replay
    /// `calls`.
    pub calls_inexact: bool,
}

/// One interpreted call inside a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallEvent {
    /// What is being called.
    pub target: CallTarget,
    /// The call expression's span.
    pub span: Span,
}

/// The callee of a [`CallEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `self.field.method()` where `field` is constrained.
    Subsystem {
        /// The subsystem field.
        field: String,
        /// The method invoked on it.
        method: String,
    },
    /// `self.method()` — a sibling method of the same class.
    SelfMethod {
        /// The method invoked on `self`.
        method: String,
    },
}

/// A method body's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    nodes: Vec<CfgNode>,
    succs: Vec<Vec<NodeId>>,
    entry: NodeId,
    exit: NodeId,
    dead: Vec<Span>,
    /// Per `match` head without a catch-all arm: the successor index at
    /// which its fall-through edges begin (everything before it enters a
    /// case arm). The lowering of §3.2 has no fall-through arm, so these
    /// edges are *phantom* with respect to the verified model.
    phantom_from: BTreeMap<NodeId, usize>,
}

impl Cfg {
    /// Builds the graph of `body`, tracking reads/writes of `fields`.
    /// Pass an empty set when only reachability matters.
    pub fn of_body(body: &[Stmt], fields: &BTreeSet<String>) -> Cfg {
        let mut b = Builder {
            nodes: vec![
                CfgNode {
                    kind: NodeKind::Entry,
                    span: None,
                    reads: Vec::new(),
                    writes: Vec::new(),
                    calls: Vec::new(),
                    calls_inexact: false,
                },
                CfgNode {
                    kind: NodeKind::Exit,
                    span: None,
                    reads: Vec::new(),
                    writes: Vec::new(),
                    calls: Vec::new(),
                    calls_inexact: false,
                },
            ],
            succs: vec![Vec::new(), Vec::new()],
            fields,
            loops: Vec::new(),
            dead: Vec::new(),
            phantom_from: BTreeMap::new(),
        };
        let ends = b.block(body, vec![ENTRY]);
        for end in ends {
            b.edge(end, EXIT);
        }
        Cfg {
            nodes: b.nodes,
            succs: b.succs,
            entry: ENTRY,
            exit: EXIT,
            dead: b.dead,
            phantom_from: b.phantom_from,
        }
    }

    /// The entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of nodes (statements + 2).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &CfgNode {
        &self.nodes[id]
    }

    /// Successor edges of a node.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id]
    }

    /// Whether the `index`-th successor edge of `from` is a `match`
    /// fall-through edge absent from the lowering of §3.2 (which has no
    /// fall-through arm). Reachability lints keep these edges; analyses
    /// aligned with the verified model must not propagate along them.
    pub fn edge_is_phantom(&self, from: NodeId, index: usize) -> bool {
        self.phantom_from.get(&from).is_some_and(|&k| index >= k)
    }

    /// All nodes, in source order (entry first, exit second).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &CfgNode)> {
        self.nodes.iter().enumerate()
    }

    /// Predecessor lists, indexed by node.
    pub fn predecessors(&self) -> Vec<Vec<NodeId>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (from, succs) in self.succs.iter().enumerate() {
            for &to in succs {
                preds[to].push(from);
            }
        }
        preds
    }

    /// Which nodes can execute, by forward reachability from entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(q) = stack.pop() {
            for &next in &self.succs[q] {
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        seen
    }

    /// Spans of dead statements: the *first* statement of every region that
    /// can never execute (the rest of the region is suppressed to avoid
    /// cascading reports), in source order.
    pub fn dead_code(&self) -> &[Span] {
        &self.dead
    }
}

const ENTRY: NodeId = 0;
const EXIT: NodeId = 1;

struct Builder<'a> {
    nodes: Vec<CfgNode>,
    succs: Vec<Vec<NodeId>>,
    fields: &'a BTreeSet<String>,
    /// Stack of enclosing loops: `(head, collected break nodes)`.
    loops: Vec<(NodeId, Vec<NodeId>)>,
    dead: Vec<Span>,
    phantom_from: BTreeMap<NodeId, usize>,
}

impl Builder<'_> {
    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    fn stmt_node(&mut self, stmt: &Stmt, preds: &[NodeId]) -> NodeId {
        let mut node = CfgNode {
            kind: NodeKind::Stmt,
            span: Some(stmt.span()),
            reads: Vec::new(),
            writes: Vec::new(),
            calls: Vec::new(),
            calls_inexact: false,
        };
        record_accesses(stmt, self.fields, &mut node);
        record_calls(stmt, self.fields, &mut node);
        let id = self.nodes.len();
        self.nodes.push(node);
        self.succs.push(Vec::new());
        for &p in preds {
            self.edge(p, id);
        }
        id
    }

    /// Threads a statement list: each statement's node gets edges from the
    /// current predecessor frontier; the returned frontier is where control
    /// can be after the whole block.
    fn block(&mut self, stmts: &[Stmt], mut preds: Vec<NodeId>) -> Vec<NodeId> {
        let mut live = true;
        for stmt in stmts {
            if preds.is_empty() && live {
                // First statement of a dead region; descendants and later
                // siblings stay unreported.
                self.dead.push(stmt.span());
                live = false;
            }
            let node = self.stmt_node(stmt, &preds);
            preds = match stmt {
                Stmt::Return(_) => {
                    self.edge(node, EXIT);
                    Vec::new()
                }
                Stmt::Break(_) => {
                    if let Some((_, breaks)) = self.loops.last_mut() {
                        breaks.push(node);
                    }
                    Vec::new()
                }
                Stmt::Continue(_) => {
                    if let Some(&(head, _)) = self.loops.last() {
                        self.edge(node, head);
                    }
                    Vec::new()
                }
                Stmt::If(ifs) => {
                    let mut ends = Vec::new();
                    for (_, body) in &ifs.branches {
                        ends.extend(self.block(body, vec![node]));
                    }
                    match &ifs.orelse {
                        Some(body) => ends.extend(self.block(body, vec![node])),
                        // No else: the condition may be false.
                        None => ends.push(node),
                    }
                    ends
                }
                Stmt::Match(ms) => {
                    let mut ends = Vec::new();
                    let mut has_catch_all = false;
                    for case in &ms.cases {
                        has_catch_all |= matches!(
                            case.pattern,
                            micropython_parser::ast::Pattern::Wildcard(_)
                                | micropython_parser::ast::Pattern::Capture(_)
                        );
                        ends.extend(self.block(&case.body, vec![node]));
                    }
                    if !has_catch_all {
                        // No case may match: Python falls through. Edges the
                        // frontier adds from here on bypass every arm, which
                        // the lowering cannot do — mark where they start.
                        self.phantom_from.insert(node, self.succs[node].len());
                        ends.push(node);
                    }
                    ends
                }
                Stmt::While(ws) => {
                    self.loops.push((node, Vec::new()));
                    let body_ends = self.block(&ws.body, vec![node]);
                    for end in body_ends {
                        self.edge(end, node);
                    }
                    let (_, breaks) = self.loops.pop().expect("loop stack");
                    // Past the loop: condition false at the head, or break.
                    let mut ends = vec![node];
                    ends.extend(breaks);
                    ends
                }
                Stmt::For(fs) => {
                    self.loops.push((node, Vec::new()));
                    let body_ends = self.block(&fs.body, vec![node]);
                    for end in body_ends {
                        self.edge(end, node);
                    }
                    let (_, breaks) = self.loops.pop().expect("loop stack");
                    let mut ends = vec![node];
                    ends.extend(breaks);
                    ends
                }
                Stmt::Raise(_) => {
                    // Control leaves the method (or the enclosing `try`,
                    // which the graph over-approximates as leaving).
                    self.edge(node, EXIT);
                    Vec::new()
                }
                Stmt::Try(t) => {
                    let body_ends = self.block(&t.body, vec![node]);
                    let mut ends = match &t.orelse {
                        Some(b) => self.block(b, body_ends.clone()),
                        None => body_ends.clone(),
                    };
                    for h in &t.handlers {
                        // A handler runs after the body was interrupted at
                        // any point; the head node plus the body frontier
                        // conservatively stand in for every such point.
                        let mut preds = vec![node];
                        preds.extend(body_ends.iter().copied());
                        ends.extend(self.block(&h.body, preds));
                    }
                    match &t.finally {
                        Some(b) => self.block(b, ends),
                        None => ends,
                    }
                }
                Stmt::With(ws) => self.block(&ws.body, vec![node]),
                // Straight-line statements (nested defs do not run here; a
                // degraded region is opaque skip).
                Stmt::Assign(_)
                | Stmt::Expr(_)
                | Stmt::Pass(_)
                | Stmt::Import(_)
                | Stmt::ClassDef(_)
                | Stmt::FuncDef(_)
                | Stmt::Degraded(_) => vec![node],
            };
        }
        preds
    }
}

/// Records reads and writes of constrained fields for one statement
/// (without descending into nested blocks — those get their own nodes).
fn record_accesses(stmt: &Stmt, fields: &BTreeSet<String>, node: &mut CfgNode) {
    match stmt {
        Stmt::Assign(a) => {
            // Value evaluates first.
            collect_reads(&a.value, fields, &mut node.reads);
            if let Some(field) = plain_field_target(&a.target, fields) {
                if a.aug_op.is_some() {
                    // `self.a += x` reads before it writes.
                    node.reads.push((field.to_owned(), a.target.span));
                }
                node.writes.push(field.to_owned());
            } else {
                collect_reads(&a.target, fields, &mut node.reads);
            }
        }
        Stmt::Expr(e) => collect_reads(&e.expr, fields, &mut node.reads),
        Stmt::Return(r) => {
            if let Some(value) = &r.value {
                collect_reads(value, fields, &mut node.reads);
            }
        }
        // For compound statements the node covers only the head: the
        // condition / subject / iterable, evaluated before branching.
        Stmt::If(ifs) => {
            for (cond, _) in &ifs.branches {
                collect_reads(cond, fields, &mut node.reads);
            }
        }
        Stmt::Match(ms) => collect_reads(&ms.subject, fields, &mut node.reads),
        Stmt::While(ws) => collect_reads(&ws.cond, fields, &mut node.reads),
        Stmt::For(fs) => collect_reads(&fs.iter, fields, &mut node.reads),
        Stmt::Raise(r) => {
            for e in r.exc.iter().chain(r.cause.iter()) {
                collect_reads(e, fields, &mut node.reads);
            }
        }
        Stmt::With(ws) => {
            for item in &ws.items {
                collect_reads(&item.context, fields, &mut node.reads);
                if let Some(target) = &item.target {
                    if let Some(field) = plain_field_target(target, fields) {
                        node.writes.push(field.to_owned());
                    } else {
                        collect_reads(target, fields, &mut node.reads);
                    }
                }
            }
        }
        Stmt::Try(t) => {
            // Handler exception expressions have no node of their own; they
            // are charged to the `try` head.
            for h in &t.handlers {
                if let Some(exc) = &h.exc {
                    collect_reads(exc, fields, &mut node.reads);
                }
            }
        }
        Stmt::Pass(_)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Import(_)
        | Stmt::ClassDef(_)
        | Stmt::FuncDef(_)
        | Stmt::Degraded(_) => {}
    }
}

/// `self.f` when `f` is a constrained field and the expression is exactly
/// that attribute (a plain-assignment target, i.e. a write).
fn plain_field_target<'e>(target: &'e Expr, fields: &BTreeSet<String>) -> Option<&'e str> {
    let ExprKind::Attribute { value, attr } = &target.kind else {
        return None;
    };
    let is_self = matches!(&value.kind, ExprKind::Name(n) if n == "self");
    (is_self && fields.contains(&attr.node)).then_some(attr.node.as_str())
}

/// Collects `self.f` reads (for constrained `f`) inside an expression, in
/// evaluation order.
fn collect_reads(expr: &Expr, fields: &BTreeSet<String>, out: &mut Vec<(String, Span)>) {
    if let ExprKind::Attribute { value, attr } = &expr.kind {
        if matches!(&value.kind, ExprKind::Name(n) if n == "self") && fields.contains(&attr.node) {
            out.push((attr.node.clone(), expr.span));
            return;
        }
    }
    match &expr.kind {
        ExprKind::Attribute { value, .. } => collect_reads(value, fields, out),
        ExprKind::Call { func, args } => {
            for a in args {
                collect_reads(a, fields, out);
            }
            collect_reads(func, fields, out);
        }
        ExprKind::Subscript { value, index } => {
            collect_reads(value, fields, out);
            collect_reads(index, fields, out);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) | ExprKind::Set(items) => {
            for i in items {
                collect_reads(i, fields, out);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                collect_reads(k, fields, out);
                collect_reads(v, fields, out);
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            collect_reads(left, fields, out);
            collect_reads(right, fields, out);
        }
        ExprKind::UnaryOp { operand, .. } => collect_reads(operand, fields, out),
        ExprKind::Await(operand) => collect_reads(operand, fields, out),
        ExprKind::Starred { value, .. } => collect_reads(value, fields, out),
        ExprKind::Comp {
            element,
            value,
            clauses,
            ..
        } => {
            for c in clauses {
                collect_reads(&c.iter, fields, out);
            }
            for c in clauses {
                for cond in &c.ifs {
                    collect_reads(cond, fields, out);
                }
            }
            collect_reads(element, fields, out);
            if let Some(v) = value {
                collect_reads(v, fields, out);
            }
        }
        // A lambda body does not run at definition time.
        ExprKind::Lambda { .. } => {}
        ExprKind::Name(_)
        | ExprKind::Str(_)
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::FString(_) => {}
    }
}

/// Records interpreted calls for one statement, in evaluation order
/// (without descending into nested blocks — those get their own nodes).
fn record_calls(stmt: &Stmt, fields: &BTreeSet<String>, node: &mut CfgNode) {
    match stmt {
        Stmt::Assign(a) => {
            collect_calls(&a.value, fields, &mut node.calls);
            collect_calls(&a.target, fields, &mut node.calls);
        }
        Stmt::Expr(e) => collect_calls(&e.expr, fields, &mut node.calls),
        Stmt::Return(r) => {
            if let Some(value) = &r.value {
                collect_calls(value, fields, &mut node.calls);
            }
        }
        // Compound statement nodes cover only the head, evaluated before
        // branching.
        Stmt::If(ifs) => {
            for (i, (cond, _)) in ifs.branches.iter().enumerate() {
                let before = node.calls.len();
                collect_calls(cond, fields, &mut node.calls);
                // The lowering gives arm k only the first k conditions; the
                // graph runs all of them on every arm.
                if i > 0 && node.calls.len() > before {
                    node.calls_inexact = true;
                }
            }
        }
        Stmt::Match(ms) => collect_calls(&ms.subject, fields, &mut node.calls),
        Stmt::While(ws) => collect_calls(&ws.cond, fields, &mut node.calls),
        Stmt::For(fs) => {
            collect_calls(&fs.iter, fields, &mut node.calls);
            // The lowering evaluates the iterable once; the back edge
            // through this head would replay it every iteration.
            node.calls_inexact = !node.calls.is_empty();
        }
        Stmt::Raise(r) => {
            for e in r.exc.iter().chain(r.cause.iter()) {
                collect_calls(e, fields, &mut node.calls);
            }
        }
        Stmt::With(ws) => {
            for item in &ws.items {
                collect_calls(&item.context, fields, &mut node.calls);
                if let Some(target) = &item.target {
                    collect_calls(target, fields, &mut node.calls);
                }
            }
        }
        Stmt::Try(t) => {
            for h in &t.handlers {
                if let Some(exc) = &h.exc {
                    let before = node.calls.len();
                    collect_calls(exc, fields, &mut node.calls);
                    // The lowering keeps each handler's exception
                    // expression inside its own choice arm; the head node
                    // replays all of them.
                    if node.calls.len() > before {
                        node.calls_inexact = true;
                    }
                }
            }
        }
        Stmt::Pass(_)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Import(_)
        | Stmt::ClassDef(_)
        | Stmt::FuncDef(_)
        | Stmt::Degraded(_) => {}
    }
}

/// Collects interpreted calls inside an expression, in evaluation order
/// (arguments before the call itself — the same order the lowering uses).
fn collect_calls(expr: &Expr, fields: &BTreeSet<String>, out: &mut Vec<CallEvent>) {
    match &expr.kind {
        ExprKind::Call { func, args } => {
            if let Some((path, method)) = expr.as_self_method_call() {
                let target = match path.as_slice() {
                    [field] if fields.contains(*field) => Some(CallTarget::Subsystem {
                        field: (*field).to_owned(),
                        method: method.to_owned(),
                    }),
                    [] => Some(CallTarget::SelfMethod {
                        method: method.to_owned(),
                    }),
                    _ => None,
                };
                if let Some(target) = target {
                    for a in args {
                        collect_calls(a, fields, out);
                    }
                    out.push(CallEvent {
                        target,
                        span: expr.span,
                    });
                    return;
                }
            }
            collect_calls(func, fields, out);
            for a in args {
                collect_calls(a, fields, out);
            }
        }
        ExprKind::Attribute { value, .. } => collect_calls(value, fields, out),
        ExprKind::Subscript { value, index } => {
            collect_calls(value, fields, out);
            collect_calls(index, fields, out);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) | ExprKind::Set(items) => {
            for i in items {
                collect_calls(i, fields, out);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                collect_calls(k, fields, out);
                collect_calls(v, fields, out);
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            collect_calls(left, fields, out);
            collect_calls(right, fields, out);
        }
        ExprKind::UnaryOp { operand, .. } => collect_calls(operand, fields, out),
        // `await` is transparent: the awaited call happens.
        ExprKind::Await(operand) => collect_calls(operand, fields, out),
        ExprKind::Starred { value, .. } => collect_calls(value, fields, out),
        ExprKind::Comp {
            element,
            value,
            clauses,
            ..
        } => {
            for c in clauses {
                collect_calls(&c.iter, fields, out);
            }
            for c in clauses {
                for cond in &c.ifs {
                    collect_calls(cond, fields, out);
                }
            }
            collect_calls(element, fields, out);
            if let Some(v) = value {
                collect_calls(v, fields, out);
            }
        }
        // A lambda body does not run at definition time.
        ExprKind::Lambda { .. } => {}
        ExprKind::Name(_)
        | ExprKind::Str(_)
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::FString(_) => {}
    }
}

/// The definite/possible assignment facts computed by [`assignment_flow`].
#[derive(Debug, Clone)]
pub struct AssignmentFlow {
    /// Per node: fields assigned on *every* path reaching the node.
    pub must_in: Vec<BTreeSet<String>>,
    /// Per node: fields assigned on *some* path reaching the node.
    pub may_in: Vec<BTreeSet<String>>,
    /// Forward reachability (unreachable nodes carry no meaningful facts).
    pub reachable: Vec<bool>,
}

impl AssignmentFlow {
    /// Facts at the exit node: fields definitely / possibly assigned when
    /// the body finishes.
    pub fn at_exit(&self, cfg: &Cfg) -> (&BTreeSet<String>, &BTreeSet<String>) {
        (&self.must_in[cfg.exit()], &self.may_in[cfg.exit()])
    }
}

/// Forward definite-assignment dataflow over `cfg`.
///
/// `universe` is the set of all tracked fields. Must-facts start at the
/// full universe (top) and intersect over predecessors; may-facts start
/// empty and union. Both are monotone, so the worklist terminates.
pub fn assignment_flow(cfg: &Cfg, universe: &BTreeSet<String>) -> AssignmentFlow {
    let n = cfg.num_nodes();
    let preds = cfg.predecessors();
    let reachable = cfg.reachable();
    let mut must_in: Vec<BTreeSet<String>> = vec![universe.clone(); n];
    let mut may_in: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    must_in[cfg.entry()] = BTreeSet::new();

    let out_of = |id: NodeId, inset: &BTreeSet<String>, cfg: &Cfg| {
        let mut out = inset.clone();
        out.extend(cfg.node(id).writes.iter().cloned());
        out
    };

    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if id == cfg.entry() || !reachable[id] {
                continue;
            }
            let mut new_must: Option<BTreeSet<String>> = None;
            let mut new_may = BTreeSet::new();
            for &p in &preds[id] {
                if !reachable[p] {
                    continue;
                }
                let p_must = out_of(p, &must_in[p], cfg);
                new_must = Some(match new_must {
                    None => p_must,
                    Some(acc) => acc.intersection(&p_must).cloned().collect(),
                });
                new_may.extend(out_of(p, &may_in[p], cfg));
            }
            let new_must = new_must.unwrap_or_default();
            if new_must != must_in[id] {
                must_in[id] = new_must;
                changed = true;
            }
            if new_may != may_in[id] {
                may_in[id] = new_may;
                changed = true;
            }
        }
    }

    AssignmentFlow {
        must_in,
        may_in,
        reachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micropython_parser::parse_module;

    fn body_of(src: &str) -> Vec<Stmt> {
        let m = parse_module(src).unwrap();
        let class = m.classes().next().unwrap();
        let body = class.methods().next().unwrap().body.clone();
        body
    }

    fn fields(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn straight_line_has_no_dead_code() {
        let body = body_of("class C:\n    def m(self):\n        x = 1\n        return []\n");
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        assert!(cfg.dead_code().is_empty());
        // entry, x=1, return, exit all reachable.
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn statement_after_return_is_dead() {
        let body = body_of(
            "class C:\n    def m(self):\n        return []\n        x = 1\n        y = 2\n",
        );
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        // Only the first statement of the dead region is reported.
        assert_eq!(cfg.dead_code().len(), 1);
        let reach = cfg.reachable();
        let dead_nodes: Vec<_> = cfg
            .nodes()
            .filter(|(id, n)| n.kind == NodeKind::Stmt && !reach[*id])
            .collect();
        assert_eq!(dead_nodes.len(), 2);
    }

    #[test]
    fn all_branches_returning_kills_the_tail() {
        let body = body_of(
            "class C:\n    def m(self):\n        if x:\n            return [\"a\"]\n        else:\n            return [\"b\"]\n        done()\n",
        );
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        assert_eq!(cfg.dead_code().len(), 1);
    }

    #[test]
    fn else_less_if_keeps_the_tail_alive() {
        let body = body_of(
            "class C:\n    def m(self):\n        if x:\n            return []\n        done()\n",
        );
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        assert!(cfg.dead_code().is_empty());
    }

    #[test]
    fn code_after_break_is_dead_but_loop_exit_lives() {
        let body = body_of(
            "class C:\n    def m(self):\n        while x:\n            break\n            dead()\n        alive()\n        return []\n",
        );
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        assert_eq!(cfg.dead_code().len(), 1);
        // alive() and return remain reachable via the break edge.
        let reach = cfg.reachable();
        assert!(reach[cfg.exit()]);
    }

    #[test]
    fn match_without_catch_all_falls_through() {
        let body = body_of(
            "class C:\n    def m(self):\n        match v:\n            case [\"a\"]:\n                return []\n        after()\n",
        );
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        assert!(cfg.dead_code().is_empty());
    }

    #[test]
    fn match_with_catch_all_seals_the_tail() {
        let body = body_of(
            "class C:\n    def m(self):\n        match v:\n            case [\"a\"]:\n                return []\n            case _:\n                return []\n        after()\n",
        );
        let cfg = Cfg::of_body(&body, &BTreeSet::new());
        assert_eq!(cfg.dead_code().len(), 1);
    }

    #[test]
    fn assignment_flow_straight_line() {
        let body = body_of(
            "class C:\n    def __init__(self):\n        self.a = Valve()\n        self.b = Valve()\n",
        );
        let universe = fields(&["a", "b"]);
        let cfg = Cfg::of_body(&body, &universe);
        let flow = assignment_flow(&cfg, &universe);
        let (must, may) = flow.at_exit(&cfg);
        assert_eq!(must, &universe);
        assert_eq!(may, &universe);
    }

    #[test]
    fn assignment_flow_branch_only_may() {
        let body = body_of(
            "class C:\n    def __init__(self):\n        self.a = Valve()\n        if ok:\n            self.b = Valve()\n",
        );
        let universe = fields(&["a", "b"]);
        let cfg = Cfg::of_body(&body, &universe);
        let flow = assignment_flow(&cfg, &universe);
        let (must, may) = flow.at_exit(&cfg);
        assert!(must.contains("a") && !must.contains("b"));
        assert!(may.contains("b"));
    }

    #[test]
    fn assignment_flow_loop_body_is_not_definite() {
        let body = body_of(
            "class C:\n    def __init__(self):\n        for v in vs:\n            self.a = Valve()\n",
        );
        let universe = fields(&["a"]);
        let cfg = Cfg::of_body(&body, &universe);
        let flow = assignment_flow(&cfg, &universe);
        let (must, may) = flow.at_exit(&cfg);
        assert!(!must.contains("a"), "loop may run zero times");
        assert!(may.contains("a"));
    }

    #[test]
    fn call_events_are_recorded_in_evaluation_order() {
        let body = body_of(
            "class C:\n    def m(self):\n        self.a.open(self.b.prep())\n        self.helper()\n        if self.a.probe():\n            pass\n        return []\n",
        );
        let universe = fields(&["a", "b"]);
        let cfg = Cfg::of_body(&body, &universe);
        let stmts: Vec<&CfgNode> = cfg
            .nodes()
            .filter(|(_, n)| n.kind == NodeKind::Stmt)
            .map(|(_, n)| n)
            .collect();
        // Argument call fires before the enclosing call.
        assert_eq!(
            stmts[0].calls.iter().map(|c| &c.target).collect::<Vec<_>>(),
            vec![
                &CallTarget::Subsystem {
                    field: "b".into(),
                    method: "prep".into()
                },
                &CallTarget::Subsystem {
                    field: "a".into(),
                    method: "open".into()
                },
            ]
        );
        assert_eq!(
            stmts[1].calls[0].target,
            CallTarget::SelfMethod {
                method: "helper".into()
            }
        );
        // The `if` head records the condition's call.
        assert_eq!(
            stmts[2].calls[0].target,
            CallTarget::Subsystem {
                field: "a".into(),
                method: "probe".into()
            }
        );
    }

    #[test]
    fn match_fall_through_edges_are_phantom() {
        let body = body_of(
            "class C:\n    def m(self):\n        match self.a.test():\n            case [\"open\"]:\n                self.a.open()\n        after()\n        return []\n",
        );
        let universe = fields(&["a"]);
        let cfg = Cfg::of_body(&body, &universe);
        let (match_id, _) = cfg
            .nodes()
            .find(|(_, n)| !n.calls.is_empty())
            .expect("match head");
        let succs = cfg.successors(match_id);
        assert_eq!(succs.len(), 2, "arm entry + fall-through");
        assert!(!cfg.edge_is_phantom(match_id, 0));
        assert!(cfg.edge_is_phantom(match_id, 1));
        // Every other node has only real edges.
        for (id, _) in cfg.nodes() {
            if id != match_id {
                for i in 0..cfg.successors(id).len() {
                    assert!(!cfg.edge_is_phantom(id, i));
                }
            }
        }
    }

    #[test]
    fn divergent_heads_are_marked_inexact() {
        let body = body_of(
            "class C:\n    def m(self):\n        if self.a.first():\n            pass\n        elif self.a.second():\n            pass\n        if self.a.only():\n            pass\n        for v in self.a.iter():\n            pass\n        while self.a.poll():\n            pass\n        return []\n",
        );
        let universe = fields(&["a"]);
        let cfg = Cfg::of_body(&body, &universe);
        let heads: Vec<&CfgNode> = cfg
            .nodes()
            .filter(|(_, n)| !n.calls.is_empty())
            .map(|(_, n)| n)
            .collect();
        assert_eq!(heads.len(), 4);
        assert!(heads[0].calls_inexact, "elif condition call diverges");
        assert!(!heads[1].calls_inexact, "single condition is exact");
        assert!(heads[2].calls_inexact, "for iterable replays on back edge");
        assert!(!heads[3].calls_inexact, "while re-evaluates in both");
    }

    #[test]
    fn reads_and_writes_are_recorded() {
        let body = body_of(
            "class C:\n    def __init__(self):\n        self.a = Valve()\n        self.a.reset()\n        self.b = wrap(self.a)\n",
        );
        let universe = fields(&["a", "b"]);
        let cfg = Cfg::of_body(&body, &universe);
        let stmts: Vec<&CfgNode> = cfg
            .nodes()
            .filter(|(_, n)| n.kind == NodeKind::Stmt)
            .map(|(_, n)| n)
            .collect();
        assert_eq!(stmts[0].writes, vec!["a"]);
        assert!(stmts[0].reads.is_empty());
        assert_eq!(stmts[1].reads[0].0, "a");
        assert_eq!(stmts[2].writes, vec!["b"]);
        assert_eq!(stmts[2].reads[0].0, "a");
    }
}
