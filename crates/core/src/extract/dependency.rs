//! Method dependency extraction (§3.1, Figure 3).
//!
//! The dependency graph is a directed graph where the nodes are the entry
//! point of each method plus every exit point, and arcs are ordering
//! constraints: each entry links to its exits, and each exit links to the
//! entry of every method it `return`s.

use crate::spec::ClassSpec;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A node of the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepNode {
    /// The single entry node of a method.
    Entry(String),
    /// The `i`-th exit node of a method.
    Exit(String, usize),
}

/// The method-dependency graph of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyGraph {
    /// The class name.
    pub class: String,
    /// All nodes.
    pub nodes: Vec<DepNode>,
    /// Arcs as `(from, to)` indices into `nodes`.
    pub edges: Vec<(usize, usize)>,
}

impl DependencyGraph {
    /// Builds the dependency graph of `spec` exactly as §3.1 describes.
    pub fn from_spec(spec: &ClassSpec) -> DependencyGraph {
        let mut nodes = Vec::new();
        let mut index: BTreeMap<DepNode, usize> = BTreeMap::new();
        let mut intern = |n: DepNode, nodes: &mut Vec<DepNode>| -> usize {
            if let Some(&i) = index.get(&n) {
                return i;
            }
            let i = nodes.len();
            nodes.push(n.clone());
            index.insert(n, i);
            i
        };
        let mut edges = Vec::new();
        // One entry node per method; one exit node per return.
        for op in &spec.operations {
            let entry = intern(DepNode::Entry(op.name.clone()), &mut nodes);
            for (ei, _) in op.exits.iter().enumerate() {
                let exit = intern(DepNode::Exit(op.name.clone(), ei), &mut nodes);
                edges.push((entry, exit));
            }
        }
        // Exit → entry of each returned method.
        for op in &spec.operations {
            for (ei, exit_spec) in op.exits.iter().enumerate() {
                let exit = intern(DepNode::Exit(op.name.clone(), ei), &mut nodes);
                for next in &exit_spec.next {
                    if spec.operation(next).is_some() {
                        let entry = intern(DepNode::Entry(next.clone()), &mut nodes);
                        edges.push((exit, entry));
                    }
                }
            }
        }
        DependencyGraph {
            class: spec.name.clone(),
            nodes,
            edges,
        }
    }

    /// Number of entry nodes.
    pub fn entry_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, DepNode::Entry(_)))
            .count()
    }

    /// Number of exit nodes.
    pub fn exit_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, DepNode::Exit(..)))
            .count()
    }

    /// Successor node indices of `node`.
    pub fn successors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .filter(move |(f, _)| *f == node)
            .map(|(_, t)| *t)
    }

    /// Renders the graph as Graphviz DOT (the shape of Figure 3).
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.class);
        let _ = writeln!(out, "  rankdir=LR;");
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                DepNode::Entry(name) => {
                    let _ = writeln!(out, "  n{i} [label=\"{name}\", shape=box, style=rounded];");
                }
                DepNode::Exit(name, ei) => {
                    let _ = writeln!(out, "  n{i} [label=\"{name}/exit{ei}\", shape=ellipse];");
                }
            }
        }
        for (f, t) in &self.edges {
            let _ = writeln!(out, "  n{f} -> n{t};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::OpKind;
    use crate::spec::{ClassSpec, ExitSpec, OperationSpec};

    /// The `Sector` class of Listing 3.1 (code elided to returns).
    fn sector_spec() -> ClassSpec {
        let exit = |next: &[&str]| ExitSpec {
            next: next.iter().map(|s| s.to_string()).collect(),
            span: None,
            implicit: false,
        };
        ClassSpec {
            name: "Sector".into(),
            operations: vec![
                OperationSpec {
                    name: "open_a".into(),
                    kind: OpKind::Initial,
                    exits: vec![exit(&["close_a", "open_b"]), exit(&["clean_a"])],
                    span: None,
                },
                OperationSpec {
                    name: "clean_a".into(),
                    kind: OpKind::Middle,
                    exits: vec![exit(&["open_a"])],
                    span: None,
                },
                OperationSpec {
                    name: "close_a".into(),
                    kind: OpKind::Middle,
                    exits: vec![exit(&["open_a"])],
                    span: None,
                },
                OperationSpec {
                    name: "open_b".into(),
                    kind: OpKind::Final,
                    exits: vec![exit(&[]), exit(&[])],
                    span: None,
                },
            ],
        }
    }

    #[test]
    fn sector_graph_shape_matches_section_3_1() {
        // "we have 4 methods ... so there are 4 entry nodes"; open_a has 2
        // returns → 2 exit nodes; open_b has 2 returns → 2 exits;
        // clean_a/close_a 1 each. Total 6 exits.
        let g = DependencyGraph::from_spec(&sector_spec());
        assert_eq!(g.entry_count(), 4);
        assert_eq!(g.exit_count(), 6);
        // Entry→exit edges: 6. Exit→entry edges: open_a/exit0 → close_a,
        // open_b (2); open_a/exit1 → clean_a (1); clean_a → open_a (1);
        // close_a → open_a (1); open_b exits → none. Total 5.
        assert_eq!(g.edges.len(), 6 + 5);
    }

    #[test]
    fn exit_a_links_to_both_returned_methods() {
        let g = DependencyGraph::from_spec(&sector_spec());
        // Find exit node (A) = open_a/exit0.
        let exit_a = g
            .nodes
            .iter()
            .position(|n| *n == DepNode::Exit("open_a".into(), 0))
            .unwrap();
        let succ: Vec<&DepNode> = g.successors(exit_a).map(|i| &g.nodes[i]).collect();
        assert!(succ.contains(&&DepNode::Entry("close_a".into())));
        assert!(succ.contains(&&DepNode::Entry("open_b".into())));
        assert_eq!(succ.len(), 2);
    }

    #[test]
    fn dot_output_names_all_methods() {
        let g = DependencyGraph::from_spec(&sector_spec());
        let dot = g.to_dot();
        for name in ["open_a", "clean_a", "close_a", "open_b"] {
            assert!(dot.contains(name), "missing {name}");
        }
        assert!(dot.contains("open_a/exit0"));
        assert!(dot.contains("open_b/exit1"));
    }

    #[test]
    fn undefined_next_operations_are_skipped() {
        let mut spec = sector_spec();
        spec.operations[1].exits[0].next = vec!["missing".into()];
        let g = DependencyGraph::from_spec(&spec);
        // No edge to a nonexistent entry.
        assert!(g
            .nodes
            .iter()
            .all(|n| *n != DepNode::Entry("missing".into())));
    }
}
