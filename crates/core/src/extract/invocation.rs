//! Method invocation analysis (§3, step 3).
//!
//! Two checks:
//!
//! * **defined operations** — every call `self.x.m()` on a constrained
//!   field must target an operation defined by `x`'s class;
//! * **matching exit points** — a `match` over a constrained call must
//!   handle every distinct next-set of the callee's exit points (§2.2,
//!   *Matching exit points*); impossible cases are flagged, and constrained
//!   calls with several exit classes that are *not* scrutinized get a
//!   warning.

use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use crate::extract::lower::LoweredMethod;
use crate::spec::ClassSpec;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Runs invocation analysis for one lowered method.
///
/// `subsystems` maps each constrained field to the [`ClassSpec`] of its
/// class. Diagnostics are appended to `diagnostics`.
pub fn check_invocations(
    method_name: &str,
    lowered: &LoweredMethod,
    subsystems: &BTreeMap<String, &ClassSpec>,
    diagnostics: &mut Diagnostics,
) {
    // 1. Defined operations.
    for call in &lowered.calls {
        let Some(spec) = subsystems.get(&call.field) else {
            continue; // unknown fields are reported by the system builder
        };
        if spec.operation(&call.method).is_none() {
            let defined: Vec<&str> = spec.operations.iter().map(|o| o.name.as_str()).collect();
            diagnostics.push(
                Diagnostic::error(
                    codes::UNDEFINED_OPERATION,
                    format!(
                        "method `{method_name}` invokes `{}.{}`, but class \
                         `{}` defines no operation `{}`",
                        call.field, call.method, spec.name, call.method
                    ),
                )
                .with_span(call.span)
                .with_note(format!("defined operations: {}", defined.join(", "))),
            );
        }
    }

    // 2. Exhaustive matches over exit points.
    for m in &lowered.matches {
        let Some(spec) = subsystems.get(&m.field) else {
            continue;
        };
        if spec.operation(&m.method).is_none() {
            continue; // already reported above
        }
        let exit_sets = spec.exit_next_sets(&m.method);
        let has_catch_all = m.cases.iter().any(|c| c.catch_all);
        let covered: Vec<&BTreeSet<String>> =
            m.cases.iter().filter_map(|c| c.strings.as_ref()).collect();
        // Every exit class must be handled by some case (or a catch-all).
        if !has_catch_all {
            let missing: Vec<String> = exit_sets
                .iter()
                .filter(|set| !covered.contains(set))
                .map(render_set)
                .collect();
            if !missing.is_empty() {
                diagnostics.push(
                    Diagnostic::error(
                        codes::NON_EXHAUSTIVE_MATCH,
                        format!(
                            "`match` on `{}.{}` in `{method_name}` does not \
                             handle all exit points of `{}`",
                            m.field, m.method, m.method
                        ),
                    )
                    .with_span(m.span)
                    .with_note(format!("unhandled exit points: {}", missing.join("; "))),
                );
            }
        }
        // Impossible cases: a string-list pattern matching no exit class.
        for case in &m.cases {
            if let Some(strings) = &case.strings {
                if !exit_sets.iter().any(|set| set == strings) {
                    diagnostics.push(
                        Diagnostic::warning(
                            codes::UNREACHABLE_CASE,
                            format!(
                                "case {} can never match an exit point of \
                                 `{}.{}`",
                                render_set(strings),
                                m.field,
                                m.method
                            ),
                        )
                        .with_span(case.span),
                    );
                }
            }
        }
    }

    // 3. Unscrutinized calls with several exit classes.
    for call in &lowered.calls {
        if call.scrutinized {
            continue;
        }
        let Some(spec) = subsystems.get(&call.field) else {
            continue;
        };
        if spec.operation(&call.method).is_none() {
            continue;
        }
        if spec.exit_next_sets(&call.method).len() > 1 {
            diagnostics.push(
                Diagnostic::warning(
                    codes::UNSCRUTINIZED_EXITS,
                    format!(
                        "`{}.{}` has several exit points but its result is \
                         not scrutinized by a `match` in `{method_name}`",
                        call.field, call.method
                    ),
                )
                .with_span(call.span),
            );
        }
    }

    // 4. Field reassignment: the analysis ignores aliasing (§2), so a
    // subsystem field overwritten mid-protocol silently desynchronizes the
    // model from the object.
    for (field, span) in &lowered.field_writes {
        diagnostics.push(
            Diagnostic::warning(
                codes::FIELD_REASSIGNED,
                format!(
                    "subsystem field `{field}` is reassigned in \
                     `{method_name}`; the analysis ignores aliasing and will \
                     keep using the original object's model"
                ),
            )
            .with_span(*span),
        );
    }

    // 5. Loop jumps are over-approximated.
    for span in &lowered.loop_jumps {
        diagnostics.push(
            Diagnostic::warning(
                codes::LOOP_JUMP_APPROXIMATED,
                format!(
                    "`break`/`continue` in `{method_name}` is over-approximated \
                     by the loop abstraction"
                ),
            )
            .with_span(*span),
        );
    }
}

fn render_set(set: &BTreeSet<String>) -> String {
    let items: Vec<String> = set.iter().map(|s| format!("\"{s}\"")).collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::OpKind;
    use crate::extract::lower::lower_method;
    use crate::spec::{ExitSpec, OperationSpec};
    use micropython_parser::parse_module;
    use shelley_regular::Alphabet;

    fn valve_spec() -> ClassSpec {
        let exit = |next: &[&str]| ExitSpec {
            next: next.iter().map(|s| s.to_string()).collect(),
            span: None,
            implicit: false,
        };
        ClassSpec {
            name: "Valve".into(),
            operations: vec![
                OperationSpec {
                    name: "test".into(),
                    kind: OpKind::Initial,
                    exits: vec![exit(&["open"]), exit(&["clean"])],
                    span: None,
                },
                OperationSpec {
                    name: "open".into(),
                    kind: OpKind::Middle,
                    exits: vec![exit(&["close"])],
                    span: None,
                },
                OperationSpec {
                    name: "close".into(),
                    kind: OpKind::Final,
                    exits: vec![exit(&["test"])],
                    span: None,
                },
                OperationSpec {
                    name: "clean".into(),
                    kind: OpKind::Final,
                    exits: vec![exit(&["test"])],
                    span: None,
                },
            ],
        }
    }

    fn check(src: &str) -> Diagnostics {
        let m = parse_module(src).unwrap();
        let class = m.classes().next().unwrap();
        let func = class.methods().next().unwrap();
        let fields: BTreeSet<String> = BTreeSet::from(["a".to_string()]);
        let mut ab = Alphabet::new();
        let lowered = lower_method(func, &fields, &mut ab);
        let spec = valve_spec();
        let subsystems: BTreeMap<String, &ClassSpec> = BTreeMap::from([("a".to_string(), &spec)]);
        let mut diags = Diagnostics::new();
        check_invocations(&func.name.node, &lowered, &subsystems, &mut diags);
        diags
    }

    #[test]
    fn undefined_operation_reported() {
        let d = check("class C:\n    def m(self):\n        self.a.pump()\n        return []\n");
        assert_eq!(d.by_code(codes::UNDEFINED_OPERATION).count(), 1);
        let diag = d.by_code(codes::UNDEFINED_OPERATION).next().unwrap();
        assert!(diag.message.contains("a.pump"));
        assert!(diag.notes[0].contains("test, open, close, clean"));
    }

    #[test]
    fn exhaustive_match_passes() {
        let d = check(
            r#"
class C:
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#,
        );
        assert!(!d.has_errors(), "{:?}", d);
    }

    #[test]
    fn non_exhaustive_match_reported() {
        let d = check(
            r#"
class C:
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return []
"#,
        );
        assert_eq!(d.by_code(codes::NON_EXHAUSTIVE_MATCH).count(), 1);
        let diag = d.by_code(codes::NON_EXHAUSTIVE_MATCH).next().unwrap();
        assert!(diag.notes[0].contains("clean"));
    }

    #[test]
    fn catch_all_silences_exhaustiveness() {
        let d = check(
            r#"
class C:
    def m(self):
        match self.a.test():
            case ["open"]:
                return []
            case _:
                return []
"#,
        );
        assert_eq!(d.by_code(codes::NON_EXHAUSTIVE_MATCH).count(), 0);
    }

    #[test]
    fn impossible_case_warned() {
        let d = check(
            r#"
class C:
    def m(self):
        match self.a.test():
            case ["open"]:
                return []
            case ["clean"]:
                return []
            case ["explode"]:
                return []
"#,
        );
        assert_eq!(d.by_code(codes::UNREACHABLE_CASE).count(), 1);
    }

    #[test]
    fn unscrutinized_multi_exit_call_warned() {
        let d = check("class C:\n    def m(self):\n        self.a.test()\n        return []\n");
        assert_eq!(d.by_code(codes::UNSCRUTINIZED_EXITS).count(), 1);
    }

    #[test]
    fn single_exit_call_needs_no_match() {
        let d = check("class C:\n    def m(self):\n        self.a.close()\n        return []\n");
        assert_eq!(d.by_code(codes::UNSCRUTINIZED_EXITS).count(), 0);
        assert!(!d.has_errors());
    }
}
