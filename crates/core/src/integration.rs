//! The integration automaton of a composite class.
//!
//! The composite's own specification fixes *which operations can be called
//! in which order*; each operation's extracted behavior (per exit point)
//! fixes *which subsystem events the operation emits*. Splicing the
//! behavior fragments between the specification's exit states yields one
//! NFA — the **integration automaton** — whose language is the set of all
//! event sequences any legal complete usage of the composite can produce,
//! with *operation markers* interleaved so counterexamples read like the
//! paper's (`open_a, a.test, a.open`).

use crate::system::{CompositeInfo, System};
use shelley_ir::denote_exits;
use shelley_regular::{Label, Nfa, Regex, Symbol};
use std::collections::BTreeMap;

/// The integration automaton plus the bookkeeping to interpret its words.
#[derive(Debug, Clone)]
pub struct Integration {
    /// The automaton. Words interleave marker symbols (operation names)
    /// with subsystem events (`a.test`).
    pub nfa: Nfa,
    /// The marker symbols.
    pub markers: std::collections::BTreeSet<Symbol>,
}

/// Builds the integration automaton of a composite system.
///
/// # Panics
///
/// Panics if `system` is not composite (callers check first).
pub fn build_integration(system: &System) -> Integration {
    let info: &CompositeInfo = system
        .composite()
        .expect("integration requires a composite system");
    let alphabet = info.alphabet.clone();
    let spec = &system.spec;

    // Per-operation, per-live-exit behaviors.
    // The spec's exits were filtered to live ones in declaration order, so
    // re-deriving the live list from the lowered program matches 1:1.
    let mut behaviors: BTreeMap<(usize, usize), Regex> = BTreeMap::new();
    for (oi, op) in spec.operations.iter().enumerate() {
        let Some(lowered) = info.methods.get(&op.name) else {
            continue;
        };
        let (_, tagged) = denote_exits(&lowered.program);
        let tagged: BTreeMap<usize, Regex> = tagged.into_iter().collect();
        let mut live_exit_ids: Vec<usize> = tagged
            .iter()
            .filter(|(_, r)| !r.is_empty_language())
            .map(|(e, _)| *e)
            .collect();
        live_exit_ids.sort_unstable();
        for (ei, exit_id) in live_exit_ids.into_iter().enumerate() {
            if ei < op.exits.len() {
                behaviors.insert((oi, ei), tagged[&exit_id].clone());
            }
        }
    }

    let mut b = Nfa::builder(alphabet.clone());
    let start = b.add_state();
    b.set_start(start);
    // Zero usage is a legal complete usage.
    b.mark_accepting(start);

    // One state per spec exit.
    let mut exit_state: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (oi, op) in spec.operations.iter().enumerate() {
        for ei in 0..op.exits.len() {
            let s = b.add_state();
            exit_state.insert((oi, ei), s);
            if op.kind.is_final() {
                b.mark_accepting(s);
            }
        }
    }

    let index_of: BTreeMap<&str, usize> = spec
        .operations
        .iter()
        .enumerate()
        .map(|(i, o)| (o.name.as_str(), i))
        .collect();

    // Splice an operation invocation from `from` into each exit of `op`.
    let splice = |b: &mut shelley_regular::NfaBuilder, from: usize, oi: usize| {
        let op = &spec.operations[oi];
        let marker = alphabet
            .lookup(&op.name)
            .expect("marker symbol interned during system building");
        let entry = b.add_state();
        b.add_edge(from, Label::Sym(marker), entry);
        for ei in 0..op.exits.len() {
            let behavior = behaviors.get(&(oi, ei)).cloned().unwrap_or(Regex::Epsilon);
            let tail = b.add_regex(entry, &behavior);
            b.add_edge(tail, Label::Eps, exit_state[&(oi, ei)]);
        }
    };

    // From start: initial operations.
    for (oi, op) in spec.operations.iter().enumerate() {
        if op.kind.is_initial() {
            splice(&mut b, start, oi);
        }
    }
    // From each exit: the declared next operations.
    for (oi, op) in spec.operations.iter().enumerate() {
        for (ei, exit) in op.exits.iter().enumerate() {
            let from = exit_state[&(oi, ei)];
            for next in &exit.next {
                if let Some(&ni) = index_of.get(next.as_str()) {
                    splice(&mut b, from, ni);
                }
            }
        }
    }

    Integration {
        nfa: b.build(),
        markers: info.markers.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::build_systems;
    use micropython_parser::parse_module;
    use shelley_regular::ops::strip_markers;

    const BADSECTOR: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#;

    #[test]
    fn badsector_integration_contains_paper_counterexample() {
        let m = parse_module(BADSECTOR).unwrap();
        let (systems, diags) = build_systems(&m);
        assert!(!diags.has_errors(), "{:?}", diags);
        let bs = systems.get("BadSector").unwrap();
        let integration = build_integration(bs);
        let ab = integration.nfa.alphabet().clone();
        let s = |n: &str| ab.lookup(n).unwrap();
        // The paper's counterexample: open_a, a.test, a.open — a complete
        // usage of BadSector (open_a is final) whose a-projection is the
        // incomplete Valve run test·open.
        assert!(integration
            .nfa
            .accepts(&[s("open_a"), s("a.test"), s("a.open")]));
        // The clean branch: open_a, a.test, a.clean.
        assert!(integration
            .nfa
            .accepts(&[s("open_a"), s("a.test"), s("a.clean")]));
        // The full run through open_b.
        assert!(integration.nfa.accepts(&[
            s("open_a"),
            s("a.test"),
            s("a.open"),
            s("open_b"),
            s("b.test"),
            s("b.open"),
            s("a.close"),
            s("b.close"),
        ]));
        // Empty usage.
        assert!(integration.nfa.accepts(&[]));
        // open_b cannot come first (not initial).
        assert!(!integration
            .nfa
            .accepts(&[s("open_b"), s("b.test"), s("b.clean")]));
        // Events cannot appear without their operation marker.
        assert!(!integration.nfa.accepts(&[s("a.test"), s("a.open")]));
    }

    #[test]
    fn markers_strip_to_event_traces() {
        let m = parse_module(BADSECTOR).unwrap();
        let (systems, _) = build_systems(&m);
        let bs = systems.get("BadSector").unwrap();
        let integration = build_integration(bs);
        let ab = integration.nfa.alphabet().clone();
        let s = |n: &str| ab.lookup(n).unwrap();
        let word = vec![s("open_a"), s("a.test"), s("a.clean")];
        let stripped = strip_markers(&word, &integration.markers);
        assert_eq!(stripped, vec![s("a.test"), s("a.clean")]);
    }
}
