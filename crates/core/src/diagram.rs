//! Behavior diagrams (Figures 1–3 of the paper).
//!
//! Shelley "includes a visualization tool that automatically generates
//! behavior diagrams based on the code annotations and based on the
//! control flow of the code under analysis". This module renders:
//!
//! * [`spec_diagram`] — the operation diagram of a class (Fig. 1: nodes are
//!   operations, arrows are allowed successions, initial operations get a
//!   start arrow, final operations a double border);
//! * [`DependencyGraph::to_dot`](crate::extract::dependency::DependencyGraph::to_dot)
//!   — the entry/exit dependency graph (Fig. 3);
//! * [`integration_diagram`] — the integration automaton of a composite
//!   (Fig. 2's underlying structure).

use crate::integration::Integration;
use crate::spec::ClassSpec;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders the operation diagram of a class (the shape of Figure 1).
pub fn spec_diagram(spec: &ClassSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", spec.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  label=\"{}\";", spec.name);
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  __start [shape=point];");
    for op in &spec.operations {
        if op.kind.is_final() {
            let _ = writeln!(out, "  \"{}\" [shape=doublecircle];", op.name);
        }
        if op.kind.is_initial() {
            let _ = writeln!(out, "  __start -> \"{}\";", op.name);
        }
    }
    // Deduplicated op → next edges.
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    for op in &spec.operations {
        for exit in &op.exits {
            for next in &exit.next {
                edges.insert((op.name.clone(), next.clone()));
            }
        }
    }
    for (from, to) in edges {
        let _ = writeln!(out, "  \"{from}\" -> \"{to}\";");
    }
    out.push_str("}\n");
    out
}

/// Renders the integration automaton of a composite (Figure 2's underlying
/// graph: operation markers and subsystem events interleaved).
pub fn integration_diagram(class_name: &str, integration: &Integration) -> String {
    integration.nfa.to_dot(class_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integration::build_integration;
    use crate::system::build_systems;
    use micropython_parser::parse_module;

    const VALVE: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

    #[test]
    fn figure1_valve_diagram() {
        let m = parse_module(VALVE).unwrap();
        let (systems, _) = build_systems(&m);
        let dot = spec_diagram(&systems.get("Valve").unwrap().spec);
        // Start arrow into test only.
        assert_eq!(dot.matches("__start -> ").count(), 1);
        assert!(dot.contains("__start -> \"test\""));
        // Final ops are double circles.
        assert!(dot.contains("\"close\" [shape=doublecircle]"));
        assert!(dot.contains("\"clean\" [shape=doublecircle]"));
        assert!(!dot.contains("\"open\" [shape=doublecircle]"));
        // The five transitions of Fig. 1.
        for edge in [
            "\"test\" -> \"open\"",
            "\"test\" -> \"clean\"",
            "\"open\" -> \"close\"",
            "\"close\" -> \"test\"",
            "\"clean\" -> \"test\"",
        ] {
            assert!(dot.contains(edge), "missing {edge}");
        }
    }

    #[test]
    fn integration_diagram_renders() {
        let src = format!(
            r#"{VALVE}
@sys(["a"])
class S:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#
        );
        let m = parse_module(&src).unwrap();
        let (systems, _) = build_systems(&m);
        let sys = systems.get("S").unwrap();
        let integration = build_integration(sys);
        let dot = integration_diagram("S", &integration);
        assert!(dot.contains("digraph \"S\""));
        assert!(dot.contains("cycle"));
        assert!(dot.contains("a.test"));
    }
}
