//! Class specifications: the operation model of a `@sys` class.
//!
//! A specification is the data of §3.1's method-dependency graph: a set of
//! operations, which of them are initial/final, and — per *exit point*
//! (return site) — the set of operations allowed next. Compiling the
//! specification yields an NFA whose states are exit points; its language
//! is the set of **complete usages** of the class (starting at an initial
//! operation, ending at a final one; the empty usage is always legal).

use crate::annotations::OpKind;
use micropython_parser::Span;
use shelley_regular::lang::{self, NfaView};
use shelley_regular::{Alphabet, Dfa, Label, Nfa, StateId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One exit point (return site) of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExitSpec {
    /// Names of the operations that may be invoked next (`return ["close"]`
    /// → `["close"]`; `return []` → empty).
    pub next: Vec<String>,
    /// Where the `return` was written (absent for implicit returns).
    pub span: Option<Span>,
    /// Whether this exit was synthesized for a body that can fall off the
    /// end without a `return`.
    pub implicit: bool,
}

/// One operation (an `@op*`-annotated method).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationSpec {
    /// The method name.
    pub name: String,
    /// Initial/final/middle (Table 1).
    pub kind: OpKind,
    /// Exit points in source order.
    pub exits: Vec<ExitSpec>,
    /// Where the method was declared.
    pub span: Option<Span>,
}

/// The specification (operation model) of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// The class name.
    pub name: String,
    /// Operations in declaration order.
    pub operations: Vec<OperationSpec>,
}

impl ClassSpec {
    /// Finds an operation by name.
    pub fn operation(&self, name: &str) -> Option<&OperationSpec> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Names of the initial operations.
    pub fn initial_ops(&self) -> impl Iterator<Item = &OperationSpec> {
        self.operations.iter().filter(|o| o.kind.is_initial())
    }

    /// The distinct next-sets of an operation's exits — the "exit classes"
    /// a caller must scrutinize with `match` (§2.2, *Matching exit
    /// points*).
    pub fn exit_next_sets(&self, op: &str) -> Vec<BTreeSet<String>> {
        let Some(op) = self.operation(op) else {
            return Vec::new();
        };
        let mut seen: Vec<BTreeSet<String>> = Vec::new();
        for exit in &op.exits {
            let set: BTreeSet<String> = exit.next.iter().cloned().collect();
            if !seen.contains(&set) {
                seen.push(set);
            }
        }
        seen
    }
}

/// The exit-point automaton of a specification, with the bookkeeping
/// needed to explain runs (which state is which exit).
#[derive(Debug, Clone)]
pub struct SpecAutomaton {
    nfa: Nfa,
    /// `(operation index, exit index)` for each exit state id.
    exit_info: BTreeMap<StateId, (usize, usize)>,
    start: StateId,
}

impl SpecAutomaton {
    /// The underlying NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The start state (no operation invoked yet).
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Which `(operation, exit)` a state represents, if it is an exit state.
    pub fn exit_at(&self, state: StateId) -> Option<(usize, usize)> {
        self.exit_info.get(&state).copied()
    }

    /// The spec language as a lazy [`Lang`](shelley_regular::lang::Lang)
    /// view — what verification drives; no subset construction happens.
    pub fn view(&self) -> NfaView<'_> {
        NfaView::new(&self.nfa)
    }

    /// Determinizes the spec language for export (diagrams, NuSMV,
    /// statistics) through the shared materialization helper.
    ///
    /// Checks never need this: they explore [`view`](Self::view) lazily.
    pub fn materialize(&self) -> Dfa {
        lang::materialize(&self.view())
    }
}

/// Compiles `spec` into its exit-point automaton over `alphabet`.
///
/// Event symbols are the operation names, optionally qualified with
/// `prefix.` (so the `Valve` spec of field `a` speaks `a.test`, `a.open`,
/// …). All operation symbols are interned into `alphabet` by
/// [`intern_spec_events`] before this is called.
///
/// States: one start state plus one state per exit point. Transitions:
/// `start --op--> exit(op, i)` for every initial `op` and each of its
/// exits; `exit(e) --op'--> exit(op', j)` whenever `op' ∈ next(e)`.
/// Accepting: the start state (empty usage) and every exit of a final
/// operation.
pub fn spec_automaton(
    spec: &ClassSpec,
    prefix: Option<&str>,
    alphabet: Arc<Alphabet>,
) -> SpecAutomaton {
    let sym_of = |name: &str| {
        let full = qualify(prefix, name);
        alphabet
            .lookup(&full)
            .unwrap_or_else(|| panic!("operation symbol `{full}` not interned"))
    };

    let mut b = Nfa::builder(alphabet.clone());
    let start = b.add_state();
    b.set_start(start);
    b.mark_accepting(start);

    // Allocate exit states.
    let mut exit_state: BTreeMap<(usize, usize), StateId> = BTreeMap::new();
    let mut exit_info: BTreeMap<StateId, (usize, usize)> = BTreeMap::new();
    for (oi, op) in spec.operations.iter().enumerate() {
        for ei in 0..op.exits.len() {
            let s = b.add_state();
            exit_state.insert((oi, ei), s);
            exit_info.insert(s, (oi, ei));
            if op.kind.is_final() {
                b.mark_accepting(s);
            }
        }
    }

    // start --op--> exits of initial ops.
    for (oi, op) in spec.operations.iter().enumerate() {
        if op.kind.is_initial() {
            let sym = sym_of(&op.name);
            for ei in 0..op.exits.len() {
                b.add_edge(start, Label::Sym(sym), exit_state[&(oi, ei)]);
            }
        }
    }

    // exit --op'--> exits of op' for each op' in next(exit).
    let index_of: BTreeMap<&str, usize> = spec
        .operations
        .iter()
        .enumerate()
        .map(|(i, o)| (o.name.as_str(), i))
        .collect();
    for (oi, op) in spec.operations.iter().enumerate() {
        for (ei, exit) in op.exits.iter().enumerate() {
            let from = exit_state[&(oi, ei)];
            for next_name in &exit.next {
                let Some(&ni) = index_of.get(next_name.as_str()) else {
                    // Undefined next-operations are reported by validation;
                    // the automaton simply omits the edge.
                    continue;
                };
                let sym = sym_of(next_name);
                for nei in 0..spec.operations[ni].exits.len() {
                    b.add_edge(from, Label::Sym(sym), exit_state[&(ni, nei)]);
                }
            }
        }
    }

    SpecAutomaton {
        nfa: b.build(),
        exit_info,
        start,
    }
}

/// Interns every operation symbol of `spec` (qualified with `prefix.` if
/// given) into `alphabet`.
pub fn intern_spec_events(spec: &ClassSpec, prefix: Option<&str>, alphabet: &mut Alphabet) {
    for op in &spec.operations {
        alphabet.intern(&qualify(prefix, &op.name));
    }
}

/// Qualifies an operation name with an instance prefix (`a` + `open` →
/// `a.open`).
pub fn qualify(prefix: Option<&str>, name: &str) -> String {
    match prefix {
        Some(p) => format!("{p}.{name}"),
        None => name.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_regular::Dfa;

    /// The Valve specification of Listing 2.1.
    pub(crate) fn valve_spec() -> ClassSpec {
        ClassSpec {
            name: "Valve".into(),
            operations: vec![
                OperationSpec {
                    name: "test".into(),
                    kind: OpKind::Initial,
                    exits: vec![
                        ExitSpec {
                            next: vec!["open".into()],
                            span: None,
                            implicit: false,
                        },
                        ExitSpec {
                            next: vec!["clean".into()],
                            span: None,
                            implicit: false,
                        },
                    ],
                    span: None,
                },
                OperationSpec {
                    name: "open".into(),
                    kind: OpKind::Middle,
                    exits: vec![ExitSpec {
                        next: vec!["close".into()],
                        span: None,
                        implicit: false,
                    }],
                    span: None,
                },
                OperationSpec {
                    name: "close".into(),
                    kind: OpKind::Final,
                    exits: vec![ExitSpec {
                        next: vec!["test".into()],
                        span: None,
                        implicit: false,
                    }],
                    span: None,
                },
                OperationSpec {
                    name: "clean".into(),
                    kind: OpKind::Final,
                    exits: vec![ExitSpec {
                        next: vec!["test".into()],
                        span: None,
                        implicit: false,
                    }],
                    span: None,
                },
            ],
        }
    }

    fn valve_automaton(prefix: Option<&str>) -> (Arc<Alphabet>, SpecAutomaton) {
        let spec = valve_spec();
        let mut ab = Alphabet::new();
        intern_spec_events(&spec, prefix, &mut ab);
        let ab = Arc::new(ab);
        let auto = spec_automaton(&spec, prefix, ab.clone());
        (ab, auto)
    }

    #[test]
    fn valve_accepts_paper_usages() {
        let (ab, auto) = valve_automaton(None);
        let s = |n: &str| ab.lookup(n).unwrap();
        let nfa = auto.nfa();
        // Empty usage is legal.
        assert!(nfa.accepts(&[]));
        // test → open → close.
        assert!(nfa.accepts(&[s("test"), s("open"), s("close")]));
        // test → clean.
        assert!(nfa.accepts(&[s("test"), s("clean")]));
        // Repeat cycles: close returns ["test"].
        assert!(nfa.accepts(&[s("test"), s("open"), s("close"), s("test"), s("clean")]));
    }

    #[test]
    fn valve_rejects_bad_usages() {
        let (ab, auto) = valve_automaton(None);
        let s = |n: &str| ab.lookup(n).unwrap();
        let nfa = auto.nfa();
        // The BadSector failure: test → open is incomplete (open not final).
        assert!(!nfa.accepts(&[s("test"), s("open")]));
        // Cannot start with open (not initial).
        assert!(!nfa.accepts(&[s("open"), s("close")]));
        // Cannot clean after open.
        assert!(!nfa.accepts(&[s("test"), s("open"), s("clean")]));
        // Only test alone is incomplete too.
        assert!(!nfa.accepts(&[s("test")]));
    }

    #[test]
    fn qualified_automaton_speaks_prefixed_events() {
        let (ab, auto) = valve_automaton(Some("a"));
        let s = |n: &str| ab.lookup(n).unwrap();
        assert!(auto.nfa().accepts(&[s("a.test"), s("a.clean")]));
        assert!(ab.lookup("test").is_none());
    }

    #[test]
    fn exit_states_are_tracked() {
        let (_, auto) = valve_automaton(None);
        // 5 exits total (test has 2, the other three 1 each) + start.
        assert_eq!(auto.nfa().num_states(), 6);
        let exits: Vec<(usize, usize)> = (0..auto.nfa().num_states())
            .filter_map(|q| auto.exit_at(q))
            .collect();
        assert_eq!(exits.len(), 5);
        assert!(auto.exit_at(auto.start()).is_none());
    }

    #[test]
    fn exit_next_sets_deduplicate() {
        let spec = valve_spec();
        let sets = spec.exit_next_sets("test");
        assert_eq!(sets.len(), 2);
        assert!(sets.contains(&BTreeSet::from(["open".to_string()])));
        assert!(sets.contains(&BTreeSet::from(["clean".to_string()])));
        assert_eq!(spec.exit_next_sets("close").len(), 1);
        assert!(spec.exit_next_sets("missing").is_empty());
    }

    #[test]
    fn spec_language_is_regular_and_deterministic_after_compilation() {
        let (_, auto) = valve_automaton(None);
        let dfa = auto.materialize().minimize();
        assert!(dfa.num_states() >= 3);
        // Deterministic check agrees with the NFA on enumerated words.
        for w in dfa.enumerate_words(5, 200) {
            assert!(auto.nfa().accepts(&w));
        }
    }

    #[test]
    fn materialize_matches_eager_subset_construction() {
        let (_, auto) = valve_automaton(Some("a"));
        let lazy = auto.materialize();
        let eager = Dfa::from_nfa(auto.nfa());
        assert_eq!(lazy.num_states(), eager.num_states());
        assert!(lazy.equivalent(&eager).is_ok());
    }
}
