//! `W009`: statements that can never execute.
//!
//! The lowering's exit-tagged denotation already proves some *exits* dead;
//! this pass works at statement granularity instead, flagging code after a
//! `return` (or after a `break`/`continue`, or after an `if`/`match` whose
//! every arm leaves the method) inside any method of a `@sys` class.

use super::{LintContext, LintPass};
use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use crate::extract::cfg::Cfg;
use std::collections::BTreeSet;

/// See the module docs.
pub struct UnreachableCode;

impl LintPass for UnreachableCode {
    fn name(&self) -> &'static str {
        "unreachable-code"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::UNREACHABLE_STATEMENT]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Diagnostics) {
        let no_fields = BTreeSet::new();
        for system in ctx.systems.iter() {
            let Some(class) = ctx.module.class(&system.name) else {
                continue;
            };
            for func in class.methods() {
                let cfg = Cfg::of_body(&func.body, &no_fields);
                for &span in cfg.dead_code() {
                    out.push(
                        Diagnostic::warning(
                            codes::UNREACHABLE_STATEMENT,
                            format!(
                                "unreachable statement in `{}` of `{}`: every \
                                 path before it already left the method",
                                func.name.node, system.name
                            ),
                        )
                        .with_span(span),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::checker::Checker;
    use crate::diagnostics::codes;

    #[test]
    fn flags_code_after_return() {
        let src = "@sys\nclass V:\n    @op_initial_final\n    def go(self):\n        return []\n        self.cleanup()\n";
        let checked = Checker::new().check_source(src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::UNREACHABLE_STATEMENT)
                .count(),
            1
        );
    }

    #[test]
    fn flags_tail_after_exhaustive_if() {
        let src = "@sys\nclass V:\n    @op_initial_final\n    def go(self):\n        if ready:\n            return []\n        else:\n            return []\n        log()\n";
        let checked = Checker::new().check_source(src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::UNREACHABLE_STATEMENT)
                .count(),
            1
        );
    }

    #[test]
    fn silent_on_live_code() {
        let src = "@sys\nclass V:\n    @op_initial_final\n    def go(self):\n        if ready:\n            return []\n        self.cleanup()\n        return []\n";
        let checked = Checker::new().check_source(src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::UNREACHABLE_STATEMENT)
                .count(),
            0
        );
    }

    #[test]
    fn ignores_classes_without_sys() {
        let src = "class Helper:\n    def go(self):\n        return 1\n        dead()\n";
        let checked = Checker::new().check_source(src).unwrap();
        assert!(checked.report.diagnostics.is_empty());
    }
}
