//! `E009`/`W012`/`W013`: automaton-typestate protocol lints.
//!
//! Backed by [`crate::dataflow::typestate`]: for every subsystem field of
//! a composite class, the analysis tracks the set of dependency-automaton
//! states at each program point, stepping per call and flowing through
//! interprocedural summaries for sibling calls.
//!
//! * `E009` — a call is proven to leave the dependency's protocol on
//!   *every* tracked path that can still complete an accepted usage; the
//!   message carries a shortest violating trace, paper-style.
//! * `W012` — a call leaves the protocol on *some* tracked path.
//! * `W013` — a dependency operation no reachable statement ever invokes:
//!   the inferred behavior cannot exercise it, so either the model
//!   over-promises or the implementation under-uses its dependency. The
//!   paper's `Valve`-with-`clean` example: an `App` that only ever runs
//!   `test · open · close` leaves `clean` dead.

use super::{LintContext, LintPass};
use crate::dataflow::typestate::analyze_class;
use crate::diagnostics::{codes, Diagnostic, Diagnostics};

/// See the module docs.
pub struct Typestate;

impl LintPass for Typestate {
    fn name(&self) -> &'static str {
        "typestate-protocol"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[
            codes::DEFINITE_PROTOCOL_VIOLATION,
            codes::POSSIBLE_PROTOCOL_VIOLATION,
            codes::DEAD_SUBSYSTEM_OPERATION,
        ]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Diagnostics) {
        for system in ctx.systems.iter() {
            let Some(class) = ctx.module.class(&system.name) else {
                continue;
            };
            let Some(report) = analyze_class(class, system, ctx.systems) else {
                continue;
            };
            for finding in &report.findings {
                if finding.definite {
                    let trace = finding
                        .witness
                        .as_deref()
                        .map(|w| format!("; shortest violating trace: {w}"))
                        .unwrap_or_default();
                    out.push(
                        Diagnostic::error(
                            codes::DEFINITE_PROTOCOL_VIOLATION,
                            format!(
                                "calling `self.{}.{}()` in operation `{}` of \
                                 `{}` violates the protocol of `{}` on every \
                                 path reaching it{trace}",
                                finding.field,
                                finding.called,
                                finding.op,
                                system.name,
                                finding.dep_class,
                            ),
                        )
                        .with_span(finding.span),
                    );
                } else {
                    out.push(
                        Diagnostic::warning(
                            codes::POSSIBLE_PROTOCOL_VIOLATION,
                            format!(
                                "calling `self.{}.{}()` in operation `{}` of \
                                 `{}` may violate the protocol of `{}` on \
                                 some path",
                                finding.field,
                                finding.called,
                                finding.op,
                                system.name,
                                finding.dep_class,
                            ),
                        )
                        .with_span(finding.span),
                    );
                }
            }
            for (field, dep_class) in &report.deps {
                let Some(dep) = ctx.systems.get(dep_class) else {
                    continue;
                };
                let invoked = &report.invoked[field];
                for op in &dep.spec.operations {
                    if !invoked.contains(&op.name) {
                        out.push(
                            Diagnostic::warning(
                                codes::DEAD_SUBSYSTEM_OPERATION,
                                format!(
                                    "operation `{}` of `{}` is never invoked \
                                     on subsystem `{}` of `{}`",
                                    op.name, dep_class, field, system.name
                                ),
                            )
                            .with_span(class.name.span),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::build_systems;
    use micropython_parser::parse_module;

    fn lint(src: &str) -> Diagnostics {
        let module = parse_module(src).unwrap();
        let (systems, _) = build_systems(&module);
        let mut out = Diagnostics::default();
        let ctx = LintContext {
            module: &module,
            systems: &systems,
        };
        Typestate.run(&ctx, &mut out);
        out
    }

    const VALVE: &str = "\
@sys
class Valve:
    @op_initial
    def test(self):
        return [\"open\", \"clean\"]

    @op
    def open(self):
        return [\"close\"]

    @op_final
    def close(self):
        return []

    @op_final
    def clean(self):
        return []
";

    #[test]
    fn definite_violation_message_carries_trace() {
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.test()
        self.a.open()
        self.a.open()
        self.a.close()
        return []
"
        );
        let out = lint(&src);
        let e009: Vec<_> = out
            .iter()
            .filter(|d| d.code == codes::DEFINITE_PROTOCOL_VIOLATION)
            .collect();
        assert_eq!(e009.len(), 1);
        assert!(
            e009[0]
                .message
                .contains("shortest violating trace: test, open, open"),
            "{}",
            e009[0].message
        );
    }

    #[test]
    fn dead_operation_warns_per_unused_dependency_op() {
        let src = format!(
            "{VALVE}
@sys([\"a\"])
class App:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.test()
        self.a.clean()
        return []
"
        );
        let out = lint(&src);
        let dead: Vec<String> = out
            .iter()
            .filter(|d| d.code == codes::DEAD_SUBSYSTEM_OPERATION)
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(dead.len(), 2, "{dead:?}");
        assert!(dead[0].contains("`close`") || dead[1].contains("`close`"));
        assert!(dead[0].contains("`open`") || dead[1].contains("`open`"));
    }
}
