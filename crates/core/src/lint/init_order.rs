//! `E008`/`W010`: subsystem fields used before (or without definite)
//! initialization.
//!
//! For every composite class the pass runs the forward definite-assignment
//! dataflow of [`crate::extract::cfg`] over `__init__`:
//!
//! * a read of a declared subsystem field at a point where **no** path has
//!   assigned it is `E008` (the call would raise `AttributeError`);
//! * a read where only **some** paths have assigned it is `W010`;
//! * a field only *possibly* assigned when `__init__` finishes is `W010`
//!   at every method call site that uses it (the lowered methods'
//!   [`CallSite`](crate::extract::lower::CallSite)s).
//!
//! Fields never assigned at all are `E005` (subsystem resolution) and are
//! not re-reported here.

use super::{LintContext, LintPass};
use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use crate::extract::cfg::{assignment_flow, Cfg, NodeKind};
use std::collections::BTreeSet;

/// See the module docs.
pub struct InitOrder;

impl LintPass for InitOrder {
    fn name(&self) -> &'static str {
        "init-order"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::USE_BEFORE_INIT, codes::MAYBE_UNINIT_SUBSYSTEM]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Diagnostics) {
        for system in ctx.systems.iter() {
            let Some(info) = system.composite() else {
                continue;
            };
            let fields: BTreeSet<String> =
                info.subsystems.iter().map(|s| s.field.clone()).collect();
            if fields.is_empty() {
                continue;
            }
            let Some(class) = ctx.module.class(&system.name) else {
                continue;
            };
            let Some(init) = class.method("__init__") else {
                // No __init__ at all: resolution already reported E005.
                continue;
            };

            let cfg = Cfg::of_body(&init.body, &fields);
            let flow = assignment_flow(&cfg, &fields);

            // Reads inside __init__, against the facts at each statement.
            for (id, node) in cfg.nodes() {
                if node.kind != NodeKind::Stmt || !flow.reachable[id] {
                    continue;
                }
                // Within one statement, earlier writes of the same
                // statement do not cover its reads (value evaluates
                // first), so reads check the IN sets directly.
                let must = &flow.must_in[id];
                let may = &flow.may_in[id];
                for (field, span) in &node.reads {
                    if !may.contains(field) {
                        out.push(
                            Diagnostic::error(
                                codes::USE_BEFORE_INIT,
                                format!(
                                    "subsystem field `{field}` of `{}` is used \
                                     in `__init__` before any assignment \
                                     reaches this point",
                                    system.name
                                ),
                            )
                            .with_span(*span),
                        );
                    } else if !must.contains(field) {
                        out.push(
                            Diagnostic::warning(
                                codes::MAYBE_UNINIT_SUBSYSTEM,
                                format!(
                                    "subsystem field `{field}` of `{}` may be \
                                     uninitialized here: it is assigned on \
                                     some but not all paths of `__init__`",
                                    system.name
                                ),
                            )
                            .with_span(*span),
                        );
                    }
                }
            }

            // Fields not definitely assigned when __init__ finishes, used
            // by operations.
            let (must_exit, may_exit) = flow.at_exit(&cfg);
            for field in &fields {
                if must_exit.contains(field) || !may_exit.contains(field) {
                    // Definitely assigned, or never assigned (E005).
                    continue;
                }
                for (op_name, lowered) in &info.methods {
                    if let Some(call) = lowered.calls.iter().find(|c| &c.field == field) {
                        out.push(
                            Diagnostic::warning(
                                codes::MAYBE_UNINIT_SUBSYSTEM,
                                format!(
                                    "operation `{op_name}` of `{}` uses \
                                     subsystem `{field}`, which `__init__` \
                                     assigns only on some paths",
                                    system.name
                                ),
                            )
                            .with_span(call.span),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::checker::Checker;
    use crate::diagnostics::codes;

    const VALVE: &str =
        "@sys\nclass Valve:\n    @op_initial_final\n    def test(self):\n        return []\n";

    #[test]
    fn use_before_assignment_is_an_error() {
        let src = format!(
            "{VALVE}\n@sys([\"a\"])\nclass S:\n    def __init__(self):\n        self.a.reset()\n        self.a = Valve()\n\n    @op_initial_final\n    def go(self):\n        self.a.test()\n        return []\n"
        );
        let checked = Checker::new().check_source(&src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::USE_BEFORE_INIT)
                .count(),
            1
        );
    }

    #[test]
    fn branch_only_assignment_warns_at_init_read_and_op_use() {
        let src = format!(
            "{VALVE}\n@sys([\"a\"])\nclass S:\n    def __init__(self):\n        if flag:\n            self.a = Valve()\n        self.a.prime()\n\n    @op_initial_final\n    def go(self):\n        self.a.test()\n        return []\n"
        );
        let checked = Checker::new().check_source(&src).unwrap();
        // One W010 at the read in __init__, one at the op's call site.
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::MAYBE_UNINIT_SUBSYSTEM)
                .count(),
            2
        );
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::USE_BEFORE_INIT)
                .count(),
            0
        );
    }

    #[test]
    fn straight_line_init_is_silent() {
        let src = format!(
            "{VALVE}\n@sys([\"a\"])\nclass S:\n    def __init__(self):\n        self.a = Valve()\n        self.a.prime()\n\n    @op_initial_final\n    def go(self):\n        self.a.test()\n        return []\n"
        );
        let checked = Checker::new().check_source(&src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::USE_BEFORE_INIT)
                .count()
                + checked
                    .report
                    .diagnostics
                    .by_code(codes::MAYBE_UNINIT_SUBSYSTEM)
                    .count(),
            0
        );
    }

    #[test]
    fn both_branches_assigning_is_definite() {
        let src = format!(
            "{VALVE}\n@sys([\"a\"])\nclass S:\n    def __init__(self):\n        if flag:\n            self.a = Valve()\n        else:\n            self.a = Valve()\n        self.a.prime()\n\n    @op_initial_final\n    def go(self):\n        self.a.test()\n        return []\n"
        );
        let checked = Checker::new().check_source(&src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::MAYBE_UNINIT_SUBSYSTEM)
                .count(),
            0
        );
    }
}
