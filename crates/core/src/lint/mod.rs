//! The lint framework: flow-sensitive passes and per-code level control.
//!
//! Verification proper (subsystem usage, claims) decides pass/fail;
//! *lints* are the advisory layer around it. Every diagnostic carries a
//! stable code from [`crate::diagnostics::codes`], and a [`LintConfig`]
//! maps codes to [`LintLevel`]s the way `rustc -A/-W/-D` does:
//!
//! * `Allow` drops the diagnostic entirely;
//! * `Warn` keeps (or demotes) it as a warning;
//! * `Deny` promotes it to an error, failing verification.
//!
//! [`LintConfig::deny_warnings`] promotes every remaining warning except
//! codes explicitly set to `Warn` (which act like rustc's `--force-warn`).
//!
//! The passes themselves ([`default_passes`]) run between system building
//! and verification. They are flow-sensitive: each builds or reuses the
//! control-flow graph of [`crate::extract::cfg`] over method bodies,
//! which the regular-language lowering of §3.2 deliberately erases.

mod init_order;
mod self_calls;
mod typestate;
mod unreachable;

pub use init_order::InitOrder;
pub use self_calls::SelfCalls;
pub use typestate::Typestate;
pub use unreachable::UnreachableCode;

use crate::diagnostics::{code_info, Diagnostics, Severity, REGISTRY};
use crate::system::SystemSet;
use micropython_parser::ast::Module;
use std::collections::BTreeMap;
use std::fmt;

/// How diagnostics with a given code are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Drop the diagnostic.
    Allow,
    /// Report as a warning.
    Warn,
    /// Report as an error (verification fails).
    Deny,
}

/// The `-A`/`-W`/`-D` code given to [`LintConfig::set`] was not a known
/// diagnostic code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCode(pub String);

impl fmt::Display for UnknownCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut known: Vec<&str> = REGISTRY.iter().map(|info| info.code).collect();
        known.sort_unstable();
        write!(
            f,
            "unknown diagnostic code `{}` (known codes: {})",
            self.0,
            known.join(", ")
        )
    }
}

impl std::error::Error for UnknownCode {}

/// Per-code lint levels plus the deny-warnings switch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: BTreeMap<&'static str, LintLevel>,
    /// Promote every warning (not explicitly set to `Warn`) to an error.
    pub deny_warnings: bool,
}

impl LintConfig {
    /// The default configuration: registry defaults, warnings allowed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the level of one code.
    ///
    /// # Errors
    ///
    /// Rejects codes absent from [`crate::diagnostics::REGISTRY`].
    pub fn set(&mut self, code: &str, level: LintLevel) -> Result<(), UnknownCode> {
        let info = code_info(code).ok_or_else(|| UnknownCode(code.to_owned()))?;
        self.overrides.insert(info.code, level);
        Ok(())
    }

    /// The effective level of a code (override, else registry default).
    pub fn level(&self, code: &str) -> LintLevel {
        if let Some(&level) = self.overrides.get(code) {
            return level;
        }
        match code_info(code).map(|i| i.default_severity) {
            Some(Severity::Error) => LintLevel::Deny,
            _ => LintLevel::Warn,
        }
    }

    /// Whether the code was explicitly set to `Warn` (exempt from
    /// [`deny_warnings`](Self::deny_warnings)).
    fn forced_warn(&self, code: &str) -> bool {
        self.overrides.get(code) == Some(&LintLevel::Warn)
    }

    /// Applies the configuration to a collection: drops allowed codes,
    /// adjusts severities, then sorts and deduplicates ([`Diagnostics::normalize`]).
    ///
    /// Only explicit overrides reshape a diagnostic's severity — with no
    /// override the authored severity stands, so a code whose registry
    /// default is `Error` may still be emitted as an advisory warning
    /// (e.g. E007 on claims that mention unknown events).
    pub fn apply(&self, diagnostics: &mut Diagnostics) {
        let kept = std::mem::take(diagnostics);
        for mut d in kept {
            match self.overrides.get(d.code) {
                Some(LintLevel::Allow) => continue,
                Some(LintLevel::Warn) => d.severity = Severity::Warning,
                Some(LintLevel::Deny) => d.severity = Severity::Error,
                None => {}
            }
            if self.deny_warnings && d.severity == Severity::Warning && !self.forced_warn(d.code) {
                d.severity = Severity::Error;
            }
            diagnostics.push(d);
        }
        diagnostics.normalize();
    }
}

/// Everything a pass may inspect: the parsed module and the systems built
/// from it.
pub struct LintContext<'a> {
    /// The module under analysis.
    pub module: &'a Module,
    /// The `@sys` systems built from it (specs, lowered methods).
    pub systems: &'a SystemSet,
}

/// One lint pass.
pub trait LintPass {
    /// A short machine-friendly pass name (`"unreachable-code"`).
    fn name(&self) -> &'static str;

    /// The codes the pass can emit.
    fn codes(&self) -> &'static [&'static str];

    /// Runs the pass, appending findings to `out`.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Diagnostics);
}

/// The built-in passes, in execution order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(UnreachableCode),
        Box::new(InitOrder),
        Box::new(SelfCalls),
        Box::new(Typestate),
    ]
}

/// Runs every default pass over `module`/`systems`.
///
/// A pass whose every emitted code is `Allow`ed by `config` is skipped
/// entirely (its analysis cost is saved, not just its output filtered).
pub fn run_lints(module: &Module, systems: &SystemSet, config: &LintConfig, out: &mut Diagnostics) {
    let ctx = LintContext { module, systems };
    for pass in default_passes() {
        if pass
            .codes()
            .iter()
            .all(|code| config.level(code) == LintLevel::Allow)
        {
            continue;
        }
        pass.run(&ctx, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{codes, Diagnostic};

    #[test]
    fn defaults_follow_the_registry() {
        let config = LintConfig::new();
        assert_eq!(config.level(codes::UNDEFINED_OPERATION), LintLevel::Deny);
        assert_eq!(config.level(codes::IMPLICIT_RETURN), LintLevel::Warn);
        assert_eq!(
            config.level(codes::INVALID_SUBSYSTEM_USAGE),
            LintLevel::Deny
        );
    }

    #[test]
    fn unknown_codes_are_rejected() {
        let mut config = LintConfig::new();
        assert_eq!(
            config.set("E999", LintLevel::Allow),
            Err(UnknownCode("E999".into()))
        );
        assert!(config.set("W003", LintLevel::Allow).is_ok());
    }

    #[test]
    fn apply_drops_promotes_and_demotes() {
        let mut config = LintConfig::new();
        config
            .set(codes::IMPLICIT_RETURN, LintLevel::Allow)
            .unwrap();
        config
            .set(codes::UNREACHABLE_OPERATION, LintLevel::Deny)
            .unwrap();
        config
            .set(codes::NO_INITIAL_OPERATION, LintLevel::Warn)
            .unwrap();
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning(codes::IMPLICIT_RETURN, "dropped"));
        ds.push(Diagnostic::warning(
            codes::UNREACHABLE_OPERATION,
            "promoted",
        ));
        ds.push(Diagnostic::error(codes::NO_INITIAL_OPERATION, "demoted"));
        ds.push(Diagnostic::warning(codes::FIELD_REASSIGNED, "untouched"));
        config.apply(&mut ds);
        assert_eq!(ds.len(), 3);
        assert!(ds.by_code(codes::IMPLICIT_RETURN).next().is_none());
        assert_eq!(
            ds.by_code(codes::UNREACHABLE_OPERATION)
                .next()
                .unwrap()
                .severity,
            Severity::Error
        );
        assert_eq!(
            ds.by_code(codes::NO_INITIAL_OPERATION)
                .next()
                .unwrap()
                .severity,
            Severity::Warning
        );
        assert_eq!(
            ds.by_code(codes::FIELD_REASSIGNED).next().unwrap().severity,
            Severity::Warning
        );
    }

    #[test]
    fn deny_warnings_spares_forced_warn() {
        let mut config = LintConfig::new();
        config.deny_warnings = true;
        config.set(codes::IMPLICIT_RETURN, LintLevel::Warn).unwrap();
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning(
            codes::IMPLICIT_RETURN,
            "stays a warning",
        ));
        ds.push(Diagnostic::warning(
            codes::FIELD_REASSIGNED,
            "becomes an error",
        ));
        config.apply(&mut ds);
        assert_eq!(
            ds.by_code(codes::IMPLICIT_RETURN).next().unwrap().severity,
            Severity::Warning
        );
        assert_eq!(
            ds.by_code(codes::FIELD_REASSIGNED).next().unwrap().severity,
            Severity::Error
        );
    }

    #[test]
    fn apply_is_idempotent() {
        let mut config = LintConfig::new();
        config.deny_warnings = true;
        config
            .set(codes::IMPLICIT_RETURN, LintLevel::Allow)
            .unwrap();
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning(codes::FIELD_REASSIGNED, "x"));
        ds.push(Diagnostic::warning(codes::IMPLICIT_RETURN, "y"));
        config.apply(&mut ds);
        let once = ds.clone();
        config.apply(&mut ds);
        assert_eq!(ds, once);
    }

    #[test]
    fn every_default_pass_emits_registered_codes() {
        for pass in default_passes() {
            assert!(!pass.codes().is_empty(), "{}", pass.name());
            for code in pass.codes() {
                assert!(
                    crate::diagnostics::code_info(code).is_some(),
                    "pass `{}` emits unregistered `{code}`",
                    pass.name()
                );
            }
        }
    }
}
