//! `W011`: operations invoking sibling operations directly.
//!
//! The protocol of a `@sys` class is driven by the *environment*: an
//! operation finishes, declares its next-operations, and the environment
//! picks one. A direct `self.other_op()` call inside an operation body
//! sidesteps that contract — the model does not see the transition, so
//! the verified automaton and the running object diverge.

use super::{LintContext, LintPass};
use crate::diagnostics::{codes, Diagnostic, Diagnostics};
use micropython_parser::ast::{Expr, ExprKind, Stmt};
use std::collections::BTreeSet;

/// See the module docs.
pub struct SelfCalls;

impl LintPass for SelfCalls {
    fn name(&self) -> &'static str {
        "sibling-operation-calls"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[codes::SIBLING_OPERATION_CALL]
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Diagnostics) {
        for system in ctx.systems.iter() {
            let ops: BTreeSet<&str> = system
                .spec
                .operations
                .iter()
                .map(|op| op.name.as_str())
                .collect();
            if ops.is_empty() {
                continue;
            }
            let Some(class) = ctx.module.class(&system.name) else {
                continue;
            };
            for func in class.methods() {
                // Only operation bodies are protocol-bound; helpers and
                // `__init__` may orchestrate freely.
                if !ops.contains(func.name.node.as_str()) {
                    continue;
                }
                let mut calls = Vec::new();
                for stmt in &func.body {
                    collect_self_calls(stmt, &mut calls);
                }
                for (callee, span) in calls {
                    if !ops.contains(callee.as_str()) {
                        continue;
                    }
                    let wording = if callee == func.name.node {
                        "calls itself"
                    } else {
                        "calls sibling operation"
                    };
                    out.push(
                        Diagnostic::warning(
                            codes::SIBLING_OPERATION_CALL,
                            format!(
                                "operation `{}` of `{}` {wording} \
                                 `self.{callee}()` directly; operations are \
                                 invoked by the environment following the \
                                 declared next-operations",
                                func.name.node, system.name
                            ),
                        )
                        .with_span(span),
                    );
                }
            }
        }
    }
}

/// Collects `self.m()` calls (no field path) in a statement, recursively.
fn collect_self_calls(stmt: &Stmt, out: &mut Vec<(String, micropython_parser::Span)>) {
    match stmt {
        Stmt::Expr(e) => expr_self_calls(&e.expr, out),
        Stmt::Assign(a) => {
            expr_self_calls(&a.value, out);
            expr_self_calls(&a.target, out);
        }
        Stmt::Return(r) => {
            if let Some(v) = &r.value {
                expr_self_calls(v, out);
            }
        }
        Stmt::If(ifs) => {
            for (cond, body) in &ifs.branches {
                expr_self_calls(cond, out);
                for s in body {
                    collect_self_calls(s, out);
                }
            }
            if let Some(body) = &ifs.orelse {
                for s in body {
                    collect_self_calls(s, out);
                }
            }
        }
        Stmt::Match(ms) => {
            expr_self_calls(&ms.subject, out);
            for case in &ms.cases {
                for s in &case.body {
                    collect_self_calls(s, out);
                }
            }
        }
        Stmt::While(ws) => {
            expr_self_calls(&ws.cond, out);
            for s in &ws.body {
                collect_self_calls(s, out);
            }
        }
        Stmt::For(fs) => {
            expr_self_calls(&fs.iter, out);
            for s in &fs.body {
                collect_self_calls(s, out);
            }
        }
        Stmt::Try(t) => {
            for s in &t.body {
                collect_self_calls(s, out);
            }
            for h in &t.handlers {
                if let Some(exc) = &h.exc {
                    expr_self_calls(exc, out);
                }
                for s in &h.body {
                    collect_self_calls(s, out);
                }
            }
            for body in t.orelse.iter().chain(t.finally.iter()) {
                for s in body {
                    collect_self_calls(s, out);
                }
            }
        }
        Stmt::With(ws) => {
            for item in &ws.items {
                expr_self_calls(&item.context, out);
                if let Some(target) = &item.target {
                    expr_self_calls(target, out);
                }
            }
            for s in &ws.body {
                collect_self_calls(s, out);
            }
        }
        Stmt::Raise(r) => {
            for e in r.exc.iter().chain(r.cause.iter()) {
                expr_self_calls(e, out);
            }
        }
        Stmt::Pass(_)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Import(_)
        | Stmt::ClassDef(_)
        | Stmt::FuncDef(_)
        | Stmt::Degraded(_) => {}
    }
}

fn expr_self_calls(expr: &Expr, out: &mut Vec<(String, micropython_parser::Span)>) {
    if let Some((path, method)) = expr.as_self_method_call() {
        if path.is_empty() {
            out.push((method.to_owned(), expr.span));
        }
    }
    match &expr.kind {
        ExprKind::Call { func, args } => {
            expr_self_calls(func, out);
            for a in args {
                expr_self_calls(a, out);
            }
        }
        ExprKind::Attribute { value, .. } => expr_self_calls(value, out),
        ExprKind::Subscript { value, index } => {
            expr_self_calls(value, out);
            expr_self_calls(index, out);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) | ExprKind::Set(items) => {
            for i in items {
                expr_self_calls(i, out);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                expr_self_calls(k, out);
                expr_self_calls(v, out);
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            expr_self_calls(left, out);
            expr_self_calls(right, out);
        }
        ExprKind::UnaryOp { operand, .. } => expr_self_calls(operand, out),
        ExprKind::Await(operand) => expr_self_calls(operand, out),
        ExprKind::Starred { value, .. } => expr_self_calls(value, out),
        ExprKind::Comp {
            element,
            value,
            clauses,
            ..
        } => {
            for c in clauses {
                expr_self_calls(&c.iter, out);
                for cond in &c.ifs {
                    expr_self_calls(cond, out);
                }
            }
            expr_self_calls(element, out);
            if let Some(v) = value {
                expr_self_calls(v, out);
            }
        }
        // A lambda body runs later (if at all), but a sibling-operation
        // call written inside one still sidesteps the protocol — report it.
        ExprKind::Lambda { body, .. } => expr_self_calls(body, out),
        ExprKind::Name(_)
        | ExprKind::Str(_)
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::FString(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::checker::Checker;
    use crate::diagnostics::codes;

    #[test]
    fn sibling_call_is_flagged() {
        let src = "@sys\nclass V:\n    @op_initial\n    def a(self):\n        self.b()\n        return [\"b\"]\n\n    @op_final\n    def b(self):\n        return []\n";
        let checked = Checker::new().check_source(src).unwrap();
        let d = checked
            .report
            .diagnostics
            .by_code(codes::SIBLING_OPERATION_CALL)
            .next()
            .expect("W011 expected");
        assert!(d.message.contains("calls sibling operation"));
    }

    #[test]
    fn self_recursion_is_flagged() {
        let src = "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        self.a()\n        return []\n";
        let checked = Checker::new().check_source(src).unwrap();
        let d = checked
            .report
            .diagnostics
            .by_code(codes::SIBLING_OPERATION_CALL)
            .next()
            .expect("W011 expected");
        assert!(d.message.contains("calls itself"));
    }

    #[test]
    fn helper_calls_are_fine() {
        let src = "@sys\nclass V:\n    @op_initial_final\n    def a(self):\n        self.log()\n        return []\n\n    def log(self):\n        pass\n";
        let checked = Checker::new().check_source(src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::SIBLING_OPERATION_CALL)
                .count(),
            0
        );
    }

    #[test]
    fn init_may_call_operations() {
        let src = "@sys\nclass V:\n    def __init__(self):\n        self.a()\n\n    @op_initial_final\n    def a(self):\n        return []\n";
        let checked = Checker::new().check_source(src).unwrap();
        assert_eq!(
            checked
                .report
                .diagnostics
                .by_code(codes::SIBLING_OPERATION_CALL)
                .count(),
            0
        );
    }
}
