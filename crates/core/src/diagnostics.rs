//! Diagnostics: structured errors and warnings with source locations.

use micropython_parser::{SourceFile, Span};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Non-fatal advice; verification continues.
    Warning,
    /// Verification failure or malformed input.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// `E` codes are errors, `W` codes warnings. The two `specification`
/// failures of the paper (§2.2) are [`codes::INVALID_SUBSYSTEM_USAGE`] and
/// [`codes::FAIL_TO_MEET_REQUIREMENT`].
pub mod codes {
    /// A method invokes an operation its subsystem's class does not define.
    pub const UNDEFINED_OPERATION: &str = "E001";
    /// A `return` names a next-operation the class does not define.
    pub const UNDEFINED_NEXT_OPERATION: &str = "E002";
    /// A `match` over a constrained call does not handle every exit point.
    pub const NON_EXHAUSTIVE_MATCH: &str = "E003";
    /// Class annotation is malformed (`@sys` arguments, duplicate ops, …).
    pub const BAD_ANNOTATION: &str = "E004";
    /// A `@sys(["x"])` field is never assigned in `__init__` or has an
    /// unknown class.
    pub const UNKNOWN_SUBSYSTEM: &str = "E005";
    /// A class has no `@op_initial` operation.
    pub const NO_INITIAL_OPERATION: &str = "E006";
    /// A claim formula failed to parse.
    pub const BAD_CLAIM: &str = "E007";
    /// The paper's "INVALID SUBSYSTEM USAGE" specification error.
    pub const INVALID_SUBSYSTEM_USAGE: &str = "E100";
    /// The paper's "FAIL TO MEET REQUIREMENT" specification error.
    pub const FAIL_TO_MEET_REQUIREMENT: &str = "E101";
    /// A case pattern can never match any exit point of the callee.
    pub const UNREACHABLE_CASE: &str = "W001";
    /// An operation is unreachable from the initial operations.
    pub const UNREACHABLE_OPERATION: &str = "W002";
    /// A method body may finish without a `return` declaring next
    /// operations (treated as `return []`).
    pub const IMPLICIT_RETURN: &str = "W003";
    /// No final operation is reachable from some reachable exit (the object
    /// can get stuck).
    pub const NO_FINAL_REACHABLE: &str = "W004";
    /// An unknown decorator was ignored.
    pub const UNKNOWN_DECORATOR: &str = "W005";
    /// A constrained call with several exit points is not scrutinized by a
    /// `match` (all continuations are merged).
    pub const UNSCRUTINIZED_EXITS: &str = "W006";
    /// `break`/`continue` are over-approximated by the loop abstraction.
    pub const LOOP_JUMP_APPROXIMATED: &str = "W007";
    /// A subsystem field is reassigned outside `__init__` — the analysis
    /// ignores aliasing, so the model may not reflect the new object.
    pub const FIELD_REASSIGNED: &str = "W008";
}

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code (see [`codes`]).
    pub code: &'static str,
    /// Primary source location, when known.
    pub span: Option<Span>,
    /// Main message.
    pub message: String,
    /// Additional free-form lines (counterexamples, per-subsystem details).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Appends a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic, with a source snippet when a file is given.
    pub fn render(&self, source: Option<&SourceFile>) -> String {
        let mut out = match (self.span, source) {
            (Some(span), Some(file)) => file.render_diagnostic(
                span,
                &format!("{} [{}]", self.severity, self.code),
                &self.message,
            ),
            _ => format!("{} [{}]: {}", self.severity, self.code, self.message),
        };
        for note in &self.notes {
            out.push_str("\n  ");
            out.push_str(note);
        }
        out
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// All diagnostics in order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Only the errors.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Only the warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any error is present.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Merges another collection into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Finds diagnostics by code.
    pub fn by_code<'a>(
        &'a self,
        code: &'a str,
    ) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.items.iter().filter(move |d| d.code == code)
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_without_source() {
        let d = Diagnostic::error(codes::UNDEFINED_OPERATION, "no such operation `pump`")
            .with_note("defined operations: test, open, close");
        let s = d.render(None);
        assert!(s.contains("error [E001]"));
        assert!(s.contains("pump"));
        assert!(s.contains("\n  defined operations"));
    }

    #[test]
    fn render_with_source_snippet() {
        let file = SourceFile::new("v.py", "self.a.pump()\n");
        let d = Diagnostic::error(codes::UNDEFINED_OPERATION, "no such operation")
            .with_span(Span::new(7, 11));
        let s = d.render(Some(&file));
        assert!(s.contains("v.py:1:8"));
        assert!(s.contains("^^^^"));
    }

    #[test]
    fn collection_queries() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::error(codes::INVALID_SUBSYSTEM_USAGE, "x"));
        ds.push(Diagnostic::warning(codes::UNREACHABLE_OPERATION, "y"));
        assert!(ds.has_errors());
        assert_eq!(ds.errors().count(), 1);
        assert_eq!(ds.warnings().count(), 1);
        assert_eq!(ds.by_code(codes::INVALID_SUBSYSTEM_USAGE).count(), 1);
        assert_eq!(ds.len(), 2);
    }
}
