//! Diagnostics: structured errors and warnings with source locations.

use micropython_parser::{SourceFile, Span};
use serde::Value;
use std::fmt;

/// Severity of a diagnostic.
///
/// Serializes as the lowercase word the text renderer prints (`"warning"`
/// / `"error"`), so the JSON and SARIF surfaces agree with [`fmt::Display`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(rename_all = "snake_case")]
pub enum Severity {
    /// Non-fatal advice; verification continues.
    Warning,
    /// Verification failure or malformed input.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// `E` codes are errors, `W` codes warnings. The two `specification`
/// failures of the paper (§2.2) are [`codes::INVALID_SUBSYSTEM_USAGE`] and
/// [`codes::FAIL_TO_MEET_REQUIREMENT`].
pub mod codes {
    /// A method invokes an operation its subsystem's class does not define.
    pub const UNDEFINED_OPERATION: &str = "E001";
    /// A `return` names a next-operation the class does not define.
    pub const UNDEFINED_NEXT_OPERATION: &str = "E002";
    /// A `match` over a constrained call does not handle every exit point.
    pub const NON_EXHAUSTIVE_MATCH: &str = "E003";
    /// Class annotation is malformed (`@sys` arguments, duplicate ops, …).
    pub const BAD_ANNOTATION: &str = "E004";
    /// A `@sys(["x"])` field is never assigned in `__init__` or has an
    /// unknown class.
    pub const UNKNOWN_SUBSYSTEM: &str = "E005";
    /// A class has no `@op_initial` operation.
    pub const NO_INITIAL_OPERATION: &str = "E006";
    /// A claim formula failed to parse.
    pub const BAD_CLAIM: &str = "E007";
    /// A subsystem field is used in `__init__` before it is assigned on
    /// every path reaching the use.
    pub const USE_BEFORE_INIT: &str = "E008";
    /// The typestate analysis proves a subsystem call violates the
    /// dependency's protocol on every tracked path that can still
    /// complete an accepted usage.
    pub const DEFINITE_PROTOCOL_VIOLATION: &str = "E009";
    /// The paper's "INVALID SUBSYSTEM USAGE" specification error.
    pub const INVALID_SUBSYSTEM_USAGE: &str = "E100";
    /// The paper's "FAIL TO MEET REQUIREMENT" specification error.
    pub const FAIL_TO_MEET_REQUIREMENT: &str = "E101";
    /// A case pattern can never match any exit point of the callee.
    pub const UNREACHABLE_CASE: &str = "W001";
    /// An operation is unreachable from the initial operations.
    pub const UNREACHABLE_OPERATION: &str = "W002";
    /// A method body may finish without a `return` declaring next
    /// operations (treated as `return []`).
    pub const IMPLICIT_RETURN: &str = "W003";
    /// No final operation is reachable from some reachable exit (the object
    /// can get stuck).
    pub const NO_FINAL_REACHABLE: &str = "W004";
    /// An unknown decorator was ignored.
    pub const UNKNOWN_DECORATOR: &str = "W005";
    /// A constrained call with several exit points is not scrutinized by a
    /// `match` (all continuations are merged).
    pub const UNSCRUTINIZED_EXITS: &str = "W006";
    /// `break`/`continue` are over-approximated by the loop abstraction.
    pub const LOOP_JUMP_APPROXIMATED: &str = "W007";
    /// A subsystem field is reassigned outside `__init__` — the analysis
    /// ignores aliasing, so the model may not reflect the new object.
    pub const FIELD_REASSIGNED: &str = "W008";
    /// A statement can never execute: every path before it returns (or
    /// jumps out of the enclosing loop).
    pub const UNREACHABLE_STATEMENT: &str = "W009";
    /// A subsystem field is assigned on some but not all paths of
    /// `__init__`, so operations using it may see it uninitialized.
    pub const MAYBE_UNINIT_SUBSYSTEM: &str = "W010";
    /// An operation calls a sibling operation directly (`self.op()`),
    /// bypassing the protocol that the environment drives.
    pub const SIBLING_OPERATION_CALL: &str = "W011";
    /// The typestate analysis finds a path on which a subsystem call
    /// leaves the dependency's protocol (other paths may be fine).
    pub const POSSIBLE_PROTOCOL_VIOLATION: &str = "W012";
    /// A dependency operation no reachable statement ever invokes.
    pub const DEAD_SUBSYSTEM_OPERATION: &str = "W013";
    /// Recovery mode degraded an out-of-subset construct to `skip`; the
    /// model claims nothing about the skipped region.
    pub const CONSTRUCT_DEGRADED: &str = "W014";
}

/// Metadata for one stable diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code (`"E001"`, `"W009"`, …).
    pub code: &'static str,
    /// A kebab-case rule name (used as the SARIF rule name).
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The severity the code carries unless reconfigured.
    pub default_severity: Severity,
}

/// Every diagnostic code the checker can emit, in code order.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: codes::UNDEFINED_OPERATION,
        name: "undefined-operation",
        summary: "a method invokes an operation its subsystem's class does not define",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::UNDEFINED_NEXT_OPERATION,
        name: "undefined-next-operation",
        summary: "a `return` names a next-operation the class does not define",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::NON_EXHAUSTIVE_MATCH,
        name: "non-exhaustive-match",
        summary: "a `match` over a constrained call does not handle every exit point",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::BAD_ANNOTATION,
        name: "bad-annotation",
        summary: "a class annotation is malformed",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::UNKNOWN_SUBSYSTEM,
        name: "unknown-subsystem",
        summary: "a `@sys([...])` field is never assigned in `__init__` or has an unknown class",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::NO_INITIAL_OPERATION,
        name: "no-initial-operation",
        summary: "a class has no `@op_initial` operation",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::BAD_CLAIM,
        name: "bad-claim",
        summary: "a claim formula failed to parse",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::USE_BEFORE_INIT,
        name: "use-before-init",
        summary: "a subsystem field is used in `__init__` before any assignment reaches the use",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::DEFINITE_PROTOCOL_VIOLATION,
        name: "definite-protocol-violation",
        summary: "a subsystem call violates the dependency's protocol on every tracked path",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::INVALID_SUBSYSTEM_USAGE,
        name: "invalid-subsystem-usage",
        summary: "the paper's INVALID SUBSYSTEM USAGE specification error",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::FAIL_TO_MEET_REQUIREMENT,
        name: "fail-to-meet-requirement",
        summary: "the paper's FAIL TO MEET REQUIREMENT specification error",
        default_severity: Severity::Error,
    },
    CodeInfo {
        code: codes::UNREACHABLE_CASE,
        name: "unreachable-case",
        summary: "a case pattern can never match any exit point of the callee",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::UNREACHABLE_OPERATION,
        name: "unreachable-operation",
        summary: "an operation is unreachable from the initial operations",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::IMPLICIT_RETURN,
        name: "implicit-return",
        summary: "a method body may finish without a `return` declaring next operations",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::NO_FINAL_REACHABLE,
        name: "no-final-reachable",
        summary: "no final operation is reachable from some reachable exit",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::UNKNOWN_DECORATOR,
        name: "unknown-decorator",
        summary: "an unknown decorator was ignored",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::UNSCRUTINIZED_EXITS,
        name: "unscrutinized-exits",
        summary: "a constrained call with several exit points is not scrutinized by a `match`",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::LOOP_JUMP_APPROXIMATED,
        name: "loop-jump-approximated",
        summary: "`break`/`continue` are over-approximated by the loop abstraction",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::FIELD_REASSIGNED,
        name: "field-reassigned",
        summary: "a subsystem field is reassigned outside `__init__`",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::UNREACHABLE_STATEMENT,
        name: "unreachable-statement",
        summary: "a statement can never execute because every path before it returns",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::MAYBE_UNINIT_SUBSYSTEM,
        name: "maybe-uninit-subsystem",
        summary: "a subsystem field is assigned on some but not all paths of `__init__`",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::SIBLING_OPERATION_CALL,
        name: "sibling-operation-call",
        summary: "an operation calls a sibling operation directly, bypassing the protocol",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::POSSIBLE_PROTOCOL_VIOLATION,
        name: "possible-protocol-violation",
        summary: "a subsystem call leaves the dependency's protocol on some path",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::DEAD_SUBSYSTEM_OPERATION,
        name: "dead-subsystem-operation",
        summary: "a dependency operation no reachable statement ever invokes",
        default_severity: Severity::Warning,
    },
    CodeInfo {
        code: codes::CONSTRUCT_DEGRADED,
        name: "construct-degraded",
        summary: "recovery mode degraded an unsupported construct to `skip`",
        default_severity: Severity::Warning,
    },
];

/// Looks up the metadata of a stable code.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    // Case-insensitive so `-A w014` and `-A W014` mean the same thing.
    REGISTRY
        .iter()
        .find(|info| info.code.eq_ignore_ascii_case(code))
}

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code (see [`codes`]).
    pub code: &'static str,
    /// The file the diagnostic belongs to, when known (project mode).
    pub file: Option<String>,
    /// Primary source location, when known.
    pub span: Option<Span>,
    /// Main message.
    pub message: String,
    /// Additional free-form lines (counterexamples, per-subsystem details).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            file: None,
            span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            file: None,
            span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches a file name.
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Appends a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic, with a source snippet when a file is given.
    pub fn render(&self, source: Option<&SourceFile>) -> String {
        let mut out = match (self.span, source) {
            (Some(span), Some(file)) => file.render_diagnostic(
                span,
                &format!("{} [{}]", self.severity, self.code),
                &self.message,
            ),
            _ => format!("{} [{}]: {}", self.severity, self.code, self.message),
        };
        for note in &self.notes {
            out.push_str("\n  ");
            out.push_str(note);
        }
        out
    }
}

/// Diagnostics serialize with full fidelity — byte spans rather than
/// resolved line/column — so a persisted diagnostic re-renders exactly
/// (the daemon's disk cache depends on this). The editor-facing resolved
/// form is [`crate::api::WireDiagnostic`].
impl serde::Serialize for Diagnostic {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            (
                "severity".to_string(),
                serde::Serialize::serialize(&self.severity),
            ),
            ("code".to_string(), Value::Str(self.code.to_string())),
            ("message".to_string(), Value::Str(self.message.clone())),
            (
                "notes".to_string(),
                serde::Serialize::serialize(&self.notes),
            ),
        ];
        if let Some(file) = &self.file {
            fields.push(("file".to_string(), Value::Str(file.clone())));
        }
        if let Some(span) = &self.span {
            fields.push(("span".to_string(), serde::Serialize::serialize(span)));
        }
        Value::Map(fields)
    }
}

impl serde::Deserialize for Diagnostic {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let map = serde::__as_map(value, "Diagnostic")?;
        // The in-memory code is `&'static str`; recover it through the
        // registry so unknown codes fail loudly instead of aliasing.
        let code: String = serde::__field(map, "code", "Diagnostic")?;
        let code = code_info(&code)
            .ok_or_else(|| serde::Error::new(format!("unknown diagnostic code `{code}`")))?
            .code;
        Ok(Diagnostic {
            severity: serde::__field(map, "severity", "Diagnostic")?,
            code,
            file: serde::__opt_field(map, "file", "Diagnostic")?,
            span: serde::__opt_field(map, "span", "Diagnostic")?,
            message: serde::__field(map, "message", "Diagnostic")?,
            notes: serde::__field(map, "notes", "Diagnostic")?,
        })
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// All diagnostics in order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Only the errors.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Only the warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any error is present.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Merges another collection into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Finds diagnostics by code.
    pub fn by_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.items.iter().filter(move |d| d.code == code)
    }

    /// Sorts diagnostics deterministically by `(file, span, code)` — ties
    /// broken by severity, message, and notes — then removes exact
    /// duplicates. Spanless diagnostics sort before positioned ones.
    pub fn normalize(&mut self) {
        type SortKey<'a> = (
            Option<&'a str>,
            Option<(usize, usize)>,
            &'a str,
            Severity,
            &'a str,
            &'a [String],
        );
        fn key(d: &Diagnostic) -> SortKey<'_> {
            (
                d.file.as_deref(),
                d.span.map(|s| (s.start, s.end)),
                d.code,
                d.severity,
                &d.message,
                &d.notes,
            )
        }
        self.items.sort_by(|a, b| key(a).cmp(&key(b)));
        self.items.dedup();
    }

    /// Renders the collection as a JSON document.
    ///
    /// Shape: `{"tool": "shelleyc", "diagnostics": [{code, severity,
    /// message, notes, file?, line?, column?}]}`. Positions are resolved
    /// against `source` when given (and the diagnostic carries no file of
    /// its own).
    pub fn render_json(&self, source: Option<&SourceFile>) -> String {
        let diags = self
            .items
            .iter()
            .map(|d| serde::Serialize::serialize(&crate::api::WireDiagnostic::new(d, source)))
            .collect();
        let doc = obj(vec![
            ("tool", s("shelleyc")),
            ("diagnostics", Value::Seq(diags)),
        ]);
        let mut out = serde::json::to_string_pretty(&doc);
        out.push('\n');
        out
    }

    /// Renders the collection as a SARIF 2.1.0 log.
    ///
    /// The run's rule table is generated from the full code [`REGISTRY`];
    /// each diagnostic becomes one result whose message text includes the
    /// notes (counterexamples, per-subsystem details).
    pub fn render_sarif(&self, source: Option<&SourceFile>) -> String {
        let rules = REGISTRY
            .iter()
            .map(|info| {
                obj(vec![
                    ("id", s(info.code)),
                    ("name", s(info.name)),
                    ("shortDescription", obj(vec![("text", s(info.summary))])),
                    (
                        "defaultConfiguration",
                        obj(vec![("level", s(sarif_level(info.default_severity)))]),
                    ),
                ])
            })
            .collect();
        let results = self
            .items
            .iter()
            .map(|d| {
                let mut text = d.message.clone();
                for note in &d.notes {
                    text.push('\n');
                    text.push_str(note);
                }
                let mut fields = vec![
                    ("ruleId", s(d.code)),
                    ("level", s(sarif_level(d.severity))),
                    ("message", obj(vec![("text", Value::Str(text))])),
                ];
                if let Some(location) = sarif_location(d, source) {
                    fields.push(("locations", Value::Seq(vec![location])));
                }
                obj(fields)
            })
            .collect();
        let doc = obj(vec![
            (
                "$schema",
                s("https://json.schemastore.org/sarif-2.1.0.json"),
            ),
            ("version", s("2.1.0")),
            (
                "runs",
                Value::Seq(vec![obj(vec![
                    (
                        "tool",
                        obj(vec![(
                            "driver",
                            obj(vec![
                                ("name", s("shelleyc")),
                                ("informationUri", s("https://example.invalid/shelley-rs")),
                                ("rules", Value::Seq(rules)),
                            ]),
                        )]),
                    ),
                    ("results", Value::Seq(results)),
                ])]),
            ),
        ]);
        let mut out = serde::json::to_string_pretty(&doc);
        out.push('\n');
        out
    }
}

fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// An object literal with `&str` keys (the renderers' shorthand).
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A string literal value.
fn s(text: &str) -> Value {
    Value::Str(text.to_owned())
}

/// The file a diagnostic belongs to: its own, else the rendered source's.
pub(crate) fn resolved_file(d: &Diagnostic, source: Option<&SourceFile>) -> Option<String> {
    d.file
        .clone()
        .or_else(|| source.map(|f| f.name().to_owned()))
}

/// A SARIF `location` object, when a position is known.
fn sarif_location(d: &Diagnostic, source: Option<&SourceFile>) -> Option<Value> {
    let uri = resolved_file(d, source)?;
    let mut physical = vec![("artifactLocation", obj(vec![("uri", Value::Str(uri))]))];
    if let (Some(span), Some(file)) = (d.span, source) {
        let (start_line, start_column) = file.line_col(span.start);
        let (end_line, end_column) = file.line_col(span.end);
        physical.push((
            "region",
            obj(vec![
                ("startLine", Value::UInt(start_line as u64)),
                ("startColumn", Value::UInt(start_column as u64)),
                ("endLine", Value::UInt(end_line as u64)),
                ("endColumn", Value::UInt(end_column as u64)),
            ]),
        ));
    }
    Some(obj(vec![("physicalLocation", obj(physical))]))
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// A collection serializes as a bare array of its diagnostics.
impl serde::Serialize for Diagnostics {
    fn serialize(&self) -> Value {
        serde::Serialize::serialize(&self.items)
    }
}

impl serde::Deserialize for Diagnostics {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        Ok(Diagnostics {
            items: serde::Deserialize::deserialize(value)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_without_source() {
        let d = Diagnostic::error(codes::UNDEFINED_OPERATION, "no such operation `pump`")
            .with_note("defined operations: test, open, close");
        let s = d.render(None);
        assert!(s.contains("error [E001]"));
        assert!(s.contains("pump"));
        assert!(s.contains("\n  defined operations"));
    }

    #[test]
    fn render_with_source_snippet() {
        let file = SourceFile::new("v.py", "self.a.pump()\n");
        let d = Diagnostic::error(codes::UNDEFINED_OPERATION, "no such operation")
            .with_span(Span::new(7, 11));
        let s = d.render(Some(&file));
        assert!(s.contains("v.py:1:8"));
        assert!(s.contains("^^^^"));
    }

    #[test]
    fn collection_queries() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::error(codes::INVALID_SUBSYSTEM_USAGE, "x"));
        ds.push(Diagnostic::warning(codes::UNREACHABLE_OPERATION, "y"));
        assert!(ds.has_errors());
        assert_eq!(ds.errors().count(), 1);
        assert_eq!(ds.warnings().count(), 1);
        assert_eq!(ds.by_code(codes::INVALID_SUBSYSTEM_USAGE).count(), 1);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn registry_covers_every_code_in_order() {
        let codes: Vec<&str> = REGISTRY.iter().map(|i| i.code).collect();
        assert_eq!(
            codes,
            vec![
                "E001", "E002", "E003", "E004", "E005", "E006", "E007", "E008", "E009", "E100",
                "E101", "W001", "W002", "W003", "W004", "W005", "W006", "W007", "W008", "W009",
                "W010", "W011", "W012", "W013", "W014",
            ]
        );
        for info in REGISTRY {
            let expected = if info.code.starts_with('E') {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(info.default_severity, expected, "{}", info.code);
            assert!(!info.name.is_empty() && !info.summary.is_empty());
        }
        assert_eq!(code_info("E100").unwrap().name, "invalid-subsystem-usage");
        assert!(code_info("E999").is_none());
    }

    #[test]
    fn normalize_sorts_by_file_span_code_and_dedupes() {
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::warning(codes::IMPLICIT_RETURN, "later span")
                .with_file("b.py")
                .with_span(Span::new(40, 44)),
        );
        ds.push(
            Diagnostic::error(codes::UNDEFINED_OPERATION, "earlier span")
                .with_file("b.py")
                .with_span(Span::new(3, 7)),
        );
        ds.push(Diagnostic::error(codes::NO_INITIAL_OPERATION, "spanless"));
        ds.push(
            Diagnostic::warning(codes::UNREACHABLE_OPERATION, "first file")
                .with_file("a.py")
                .with_span(Span::new(99, 100)),
        );
        // An exact duplicate to be removed.
        ds.push(
            Diagnostic::error(codes::UNDEFINED_OPERATION, "earlier span")
                .with_file("b.py")
                .with_span(Span::new(3, 7)),
        );
        // Same position, different codes: code breaks the tie.
        ds.push(
            Diagnostic::warning(codes::FIELD_REASSIGNED, "tie")
                .with_file("b.py")
                .with_span(Span::new(3, 7)),
        );
        ds.normalize();
        let order: Vec<(Option<&str>, &str)> =
            ds.iter().map(|d| (d.file.as_deref(), d.code)).collect();
        assert_eq!(
            order,
            vec![
                (None, "E006"),
                (Some("a.py"), "W002"),
                (Some("b.py"), "E001"),
                (Some("b.py"), "W008"),
                (Some("b.py"), "W003"),
            ]
        );
        assert_eq!(ds.len(), 5, "duplicate must be removed");
    }

    #[test]
    fn json_rendering_escapes_and_positions() {
        let file = SourceFile::new("v.py", "self.a.pump()\n");
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::error(codes::UNDEFINED_OPERATION, "no op \"pump\"")
                .with_span(Span::new(7, 11))
                .with_note("line1\nline2"),
        );
        let json = ds.render_json(Some(&file));
        assert!(json.contains(r#""code": "E001""#));
        assert!(json.contains(r#""severity": "error""#));
        assert!(json.contains(r#"no op \"pump\""#));
        assert!(json.contains(r#""line": 1"#));
        assert!(json.contains(r#""column": 8"#));
        assert!(json.contains(r#""file": "v.py""#));
        assert!(json.contains(r#"line1\nline2"#));
    }

    #[test]
    fn sarif_rendering_has_rules_and_results() {
        let file = SourceFile::new("v.py", "self.a.pump()\n");
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::error(codes::INVALID_SUBSYSTEM_USAGE, "bad usage")
                .with_note("Counter example: open_a, a.test, a.open"),
        );
        ds.push(Diagnostic::warning(codes::IMPLICIT_RETURN, "implicit").with_span(Span::new(0, 4)));
        let sarif = ds.render_sarif(Some(&file));
        assert!(sarif.contains(r#""version": "2.1.0""#));
        assert!(sarif.contains(r#""name": "shelleyc""#));
        // Every registry code appears as a rule.
        for info in REGISTRY {
            assert!(sarif.contains(&format!(r#""id": "{}""#, info.code)));
        }
        assert!(sarif.contains(r#""ruleId": "E100""#));
        assert!(sarif.contains(r#"Counter example: open_a, a.test, a.open"#));
        assert!(sarif.contains(r#""startLine": 1"#));
        assert!(sarif.contains(r#""uri": "v.py""#));
    }
}
