//! The [`Checker`] builder: the single entry point for verification.
//!
//! Earlier revisions exposed a free-function pair per input shape
//! (`check_source`/`check_source_with`, `check_module`/…,
//! `check_project`/…). Those wrappers are gone; code configures a
//! `Checker` once and feeds it whichever input it has:
//!
//! ```
//! use shelley_core::{Checker, LintConfig};
//!
//! let checker = Checker::new().lints(LintConfig::default()).jobs(2);
//! let checked = checker.check_source(
//!     "@sys\nclass Led:\n    @op_initial_final\n    def blink(self):\n        return []\n",
//! )?;
//! assert!(checked.report.passed());
//! # Ok::<(), shelley_core::CheckError>(())
//! ```
//!
//! Every `Checker` method runs the same staged, parallel engine as
//! [`Workspace`]; a `Checker` *is* the
//! configuration of a single-round workspace. For repeated checks of an
//! evolving project, convert it with [`Checker::into_workspace`] and keep
//! the workspace alive — unchanged classes are then never re-verified.

use crate::backend::Backend;
use crate::lint::LintConfig;
use crate::pipeline::Checked;
use crate::project::ProjectFile;
use crate::workspace::Workspace;
use micropython_parser::ast::Module;
use micropython_parser::ParseError;
use std::fmt;

/// The display name attributed to sources checked without a file name
/// ([`Checker::check_source`], [`Checker::check_module`]).
pub const INPUT_NAME: &str = "<input>";

/// A parse failure, always attributed to a file.
///
/// Single-source checks use the synthetic [`INPUT_NAME`] (`<input>`) so
/// callers handle exactly one error shape regardless of how the input was
/// provided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// The failing file's display name.
    pub file: String,
    /// The underlying syntax error.
    pub error: ParseError,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.file, self.error)
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Builder-style verification front end.
///
/// Configure once ([`lints`](Self::lints), [`jobs`](Self::jobs)), then
/// check any input shape. All entry points produce identical reports for
/// identical input regardless of the number of jobs — results are merged
/// in class order and normalized, so parallelism never reorders output.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    lints: LintConfig,
    jobs: usize,
    recover: bool,
    backend: Backend,
}

impl Checker {
    /// A checker with default lint levels and automatic parallelism.
    pub fn new() -> Self {
        Checker::default()
    }

    /// Sets the lint configuration.
    pub fn lints(mut self, config: LintConfig) -> Self {
        self.lints = config;
        self
    }

    /// Sets the worker count for the per-class verification stages.
    ///
    /// `0` (the default) uses [`std::thread::available_parallelism`]; `1`
    /// runs strictly sequentially on the calling thread.
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n;
        self
    }

    /// Switches recovery mode on: parsing becomes total, out-of-subset
    /// constructs degrade to spanned `skip` nodes, and each degraded
    /// region is reported as `W014`. Strict mode (the default) rejects
    /// the same constructs with a parse error.
    pub fn recover(mut self, recover: bool) -> Self {
        self.recover = recover;
        self
    }

    /// Selects the engine that decides temporal claims: the explicit
    /// joint search, the symbolic BDD fixpoint, or the NuSMV-encoding
    /// evaluator (see [`crate::backend`]). The default [`Backend::Auto`]
    /// resolves per claim by monitor-size estimate; all backends decide
    /// identical verdicts.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Parses and fully verifies one source text (file name `<input>`).
    ///
    /// # Errors
    ///
    /// Returns the parse error if the source is not in the supported
    /// MicroPython subset; all verification findings are reported through
    /// the returned [`Checked`]'s report instead.
    pub fn check_source(&self, source: &str) -> Result<Checked, CheckError> {
        let mut workspace = self.clone().into_workspace();
        workspace.set_file(INPUT_NAME, source);
        workspace.check()
    }

    /// Verifies an already-parsed module.
    pub fn check_module(&self, module: &Module) -> Checked {
        let mut workspace = self.clone().into_workspace();
        workspace.set_parsed_module(INPUT_NAME, module.clone());
        workspace
            .check()
            .expect("a parsed module cannot fail to parse")
    }

    /// Parses and verifies a whole project (any number of files).
    ///
    /// Class resolution is global: a composite in one file may use `@sys`
    /// classes declared in any other. Duplicate class names are reported
    /// as `E004` and the later definition wins deterministically (matching
    /// Python's last-definition semantics for re-imported names).
    ///
    /// # Errors
    ///
    /// Returns the first [`CheckError`] in file order; verification
    /// findings are in the returned [`Checked`]'s report.
    pub fn check_files(&self, files: &[ProjectFile]) -> Result<Checked, CheckError> {
        let mut workspace = self.clone().into_workspace();
        for file in files {
            workspace.set_file(file.name.clone(), file.source.clone());
        }
        workspace.check()
    }

    /// Converts the configuration into a long-lived [`Workspace`] that
    /// caches per-file and per-class artifacts across repeated checks.
    pub fn into_workspace(self) -> Workspace {
        let mut workspace = Workspace::with_config(self.lints, self.jobs);
        workspace.set_recover(self.recover);
        workspace.set_backend(self.backend);
        workspace
    }
}
