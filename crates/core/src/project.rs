//! Multi-file projects.
//!
//! Real controllers split classes across files (`valve.py`, `sector.py`,
//! `controller.py`); subsystem resolution must see all of them at once.
//! [`check_project`] parses every file, merges the modules (later files
//! may reference classes from earlier ones and vice versa — resolution is
//! name-based and order-independent), and runs the full pipeline.

use crate::diagnostics::{codes, Diagnostic};
use crate::lint::LintConfig;
use crate::pipeline::{check_module_with, Checked};
use micropython_parser::ast::Module;
use micropython_parser::{parse_module, ParseError};

/// One source file of a project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectFile {
    /// Display name (path) used in diagnostics.
    pub name: String,
    /// The file's source text.
    pub source: String,
}

impl ProjectFile {
    /// Pairs a display name with source text.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        ProjectFile {
            name: name.into(),
            source: source.into(),
        }
    }
}

/// A parse failure attributed to its file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectParseError {
    /// The failing file's display name.
    pub file: String,
    /// The underlying error.
    pub error: ParseError,
}

impl std::fmt::Display for ProjectParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.error)
    }
}

impl std::error::Error for ProjectParseError {}

/// Parses and verifies a whole project (any number of files).
///
/// Class resolution is global: a composite in one file may use `@sys`
/// classes declared in any other. Duplicate class names across files are
/// reported as `E004` and the later definition wins (matching Python's
/// last-definition semantics for re-imported names).
///
/// # Errors
///
/// Returns the first [`ProjectParseError`]; verification findings are in
/// the returned [`Checked`]'s report.
pub fn check_project(files: &[ProjectFile]) -> Result<Checked, ProjectParseError> {
    check_project_with(files, &LintConfig::default())
}

/// [`check_project`] with an explicit lint configuration.
///
/// # Errors
///
/// Returns the first [`ProjectParseError`].
pub fn check_project_with(
    files: &[ProjectFile],
    config: &LintConfig,
) -> Result<Checked, ProjectParseError> {
    let mut merged = Module { body: Vec::new() };
    let mut parsed: Vec<(String, Module)> = Vec::new();
    for file in files {
        let module = parse_module(&file.source).map_err(|error| ProjectParseError {
            file: file.name.clone(),
            error,
        })?;
        parsed.push((file.name.clone(), module));
    }

    // Detect duplicate class names across files.
    let mut seen: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut duplicates = Vec::new();
    for (name, module) in &parsed {
        for class in module.classes() {
            if let Some(first) = seen.get(&class.name.node) {
                duplicates.push(Diagnostic::error(
                    codes::BAD_ANNOTATION,
                    format!(
                        "class `{}` defined in both {first} and {name}; the \
                         later definition is used",
                        class.name.node
                    ),
                ));
            } else {
                seen.insert(class.name.node.clone(), name.clone());
            }
        }
    }

    for (_, module) in parsed {
        merged.body.extend(module.body);
    }

    let mut checked = check_module_with(&merged, config);
    for d in duplicates {
        checked.report.diagnostics.push(d);
    }
    // Re-apply so the duplicate-class findings obey the configuration too
    // (apply is idempotent, so the first pass's results are unchanged).
    config.apply(&mut checked.report.diagnostics);
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALVE_PY: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

    const SECTOR_PY: &str = r#"
@sys(["a"])
class Sector:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;

    #[test]
    fn cross_file_resolution_works() {
        let files = [
            ProjectFile::new("valve.py", VALVE_PY),
            ProjectFile::new("sector.py", SECTOR_PY),
        ];
        let checked = check_project(&files).unwrap();
        assert!(checked.report.passed(), "{}", checked.report.render(None));
        assert_eq!(checked.systems.len(), 2);
        assert!(checked.systems.get("Sector").unwrap().is_composite());
    }

    #[test]
    fn file_order_does_not_matter() {
        // Sector first, Valve second: forward reference still resolves.
        let files = [
            ProjectFile::new("sector.py", SECTOR_PY),
            ProjectFile::new("valve.py", VALVE_PY),
        ];
        let checked = check_project(&files).unwrap();
        assert!(checked.report.passed(), "{}", checked.report.render(None));
    }

    #[test]
    fn parse_errors_name_the_file() {
        let files = [
            ProjectFile::new("good.py", VALVE_PY),
            ProjectFile::new("bad.py", "def broken(:\n"),
        ];
        let err = check_project(&files).unwrap_err();
        assert_eq!(err.file, "bad.py");
    }

    #[test]
    fn duplicate_classes_reported() {
        let files = [
            ProjectFile::new("v1.py", VALVE_PY),
            ProjectFile::new("v2.py", VALVE_PY),
        ];
        let checked = check_project(&files).unwrap();
        assert!(checked
            .report
            .diagnostics
            .by_code(codes::BAD_ANNOTATION)
            .any(|d| d.message.contains("defined in both")));
    }

    #[test]
    fn violations_cross_files() {
        let bad_sector = SECTOR_PY.replace("self.a.close()\n                ", "");
        let files = [
            ProjectFile::new("valve.py", VALVE_PY),
            ProjectFile::new("sector.py", &bad_sector),
        ];
        let checked = check_project(&files).unwrap();
        assert_eq!(checked.report.usage_violations.len(), 1);
    }
}
