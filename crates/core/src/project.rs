//! Multi-file projects.
//!
//! Real controllers split classes across files (`valve.py`, `sector.py`,
//! `controller.py`); subsystem resolution must see all of them at once.
//! [`Checker::check_files`](crate::checker::Checker::check_files) parses
//! every file and runs the full pipeline with global, name-based,
//! order-independent class resolution (later files may reference classes
//! from earlier ones and vice versa). This module keeps the input type
//! ([`ProjectFile`]).

/// One source file of a project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectFile {
    /// Display name (path) used in diagnostics.
    pub name: String,
    /// The file's source text.
    pub source: String,
}

impl ProjectFile {
    /// Pairs a display name with source text.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        ProjectFile {
            name: name.into(),
            source: source.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckError, Checker};
    use crate::diagnostics::codes;
    use crate::pipeline::Checked;

    fn check_files(files: &[ProjectFile]) -> Result<Checked, CheckError> {
        Checker::new().check_files(files)
    }

    const VALVE_PY: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

    const SECTOR_PY: &str = r#"
@sys(["a"])
class Sector:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;

    #[test]
    fn cross_file_resolution_works() {
        let files = [
            ProjectFile::new("valve.py", VALVE_PY),
            ProjectFile::new("sector.py", SECTOR_PY),
        ];
        let checked = check_files(&files).unwrap();
        assert!(checked.report.passed(), "{}", checked.report.render(None));
        assert_eq!(checked.systems.len(), 2);
        assert!(checked.systems.get("Sector").unwrap().is_composite());
    }

    #[test]
    fn file_order_does_not_matter() {
        // Sector first, Valve second: forward reference still resolves.
        let files = [
            ProjectFile::new("sector.py", SECTOR_PY),
            ProjectFile::new("valve.py", VALVE_PY),
        ];
        let checked = check_files(&files).unwrap();
        assert!(checked.report.passed(), "{}", checked.report.render(None));
    }

    #[test]
    fn parse_errors_name_the_file() {
        let files = [
            ProjectFile::new("good.py", VALVE_PY),
            ProjectFile::new("bad.py", "def broken(:\n"),
        ];
        let err = check_files(&files).unwrap_err();
        assert_eq!(err.file, "bad.py");
    }

    #[test]
    fn duplicate_classes_reported() {
        let files = [
            ProjectFile::new("v1.py", VALVE_PY),
            ProjectFile::new("v2.py", VALVE_PY),
        ];
        let checked = check_files(&files).unwrap();
        assert!(checked
            .report
            .diagnostics
            .by_code(codes::BAD_ANNOTATION)
            .any(|d| d.message.contains("defined in both")));
    }

    #[test]
    fn duplicate_class_later_definition_wins() {
        // Two different protocols under one name: the later file's
        // definition must win, deterministically, and the diagnostic must
        // name the winner.
        const BLINK_VALVE: &str = r#"
@sys
class Valve:
    @op_initial
    def on(self):
        return ["off"]

    @op_final
    def off(self):
        return ["on"]
"#;
        let files = [
            ProjectFile::new("v1.py", VALVE_PY),
            ProjectFile::new("v2.py", BLINK_VALVE),
        ];
        let checked = check_files(&files).unwrap();
        let valve = checked.systems.get("Valve").unwrap();
        assert!(valve.spec.operation("on").is_some());
        assert!(valve.spec.operation("test").is_none());
        assert!(checked
            .report
            .diagnostics
            .by_code(codes::BAD_ANNOTATION)
            .any(|d| d.message
                == "class `Valve` defined in both v1.py and v2.py; \
                    the definition in v2.py is used"));

        // Swapping file order swaps the winner.
        let files = [
            ProjectFile::new("v2.py", BLINK_VALVE),
            ProjectFile::new("v1.py", VALVE_PY),
        ];
        let checked = check_files(&files).unwrap();
        let valve = checked.systems.get("Valve").unwrap();
        assert!(valve.spec.operation("test").is_some());
        assert!(valve.spec.operation("on").is_none());
    }

    #[test]
    fn duplicate_class_within_one_file() {
        let doubled = format!("{VALVE_PY}\n{VALVE_PY}");
        let files = [ProjectFile::new("v.py", doubled)];
        let checked = check_files(&files).unwrap();
        assert_eq!(checked.systems.len(), 1);
        assert!(checked
            .report
            .diagnostics
            .by_code(codes::BAD_ANNOTATION)
            .any(|d| d.message
                == "class `Valve` defined more than once in v.py; \
                    the later definition is used"));
    }

    #[test]
    fn violations_cross_files() {
        let bad_sector = SECTOR_PY.replace("self.a.close()\n                ", "");
        let files = [
            ProjectFile::new("valve.py", VALVE_PY),
            ProjectFile::new("sector.py", &bad_sector),
        ];
        let checked = check_files(&files).unwrap();
        assert_eq!(checked.report.usage_violations.len(), 1);
    }
}
