//! Property test: printing an AST and reparsing it reaches a fixpoint.
//!
//! Random ASTs are generated structurally (not from random text), printed
//! with `printer::print_module`, reparsed, and printed again — the two
//! printed forms must be identical. This exercises the printer/parser pair
//! on shapes far beyond the hand-written tests.

use micropython_parser::ast::*;
use micropython_parser::printer::print_module;
use micropython_parser::{parse_module, Span, Spanned};
use proptest::prelude::*;

fn sp<T>(node: T) -> Spanned<T> {
    Spanned::new(node, Span::default())
}

fn expr(kind: ExprKind) -> Expr {
    Expr::new(kind, Span::default())
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        micropython_parser::Keyword::from_str(s).is_none() && s != "_"
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_name().prop_map(|n| expr(ExprKind::Name(n))),
        (-1000i64..1000).prop_map(|v| expr(ExprKind::Int(v))),
        Just(expr(ExprKind::Bool(true))),
        Just(expr(ExprKind::Bool(false))),
        Just(expr(ExprKind::NoneLit)),
        "[a-zA-Z0-9 _.!?]{0,10}".prop_map(|s| expr(ExprKind::Str(s))),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), arb_name()).prop_map(|(value, attr)| expr(ExprKind::Attribute {
                value: Box::new(value),
                attr: sp(attr),
            })),
            // `await x` (the printer parenthesizes where required).
            inner
                .clone()
                .prop_map(|o| expr(ExprKind::Await(Box::new(o)))),
            // `lambda p: body`.
            (proptest::collection::vec(arb_name(), 0..3), inner.clone()).prop_map(
                |(params, body)| expr(ExprKind::Lambda {
                    params: params.into_iter().map(sp).collect(),
                    body: Box::new(body),
                })
            ),
            // f-string with interpolation-free odd contents.
            "[a-zA-Z0-9 _.!?]{0,10}".prop_map(|s| expr(ExprKind::FString(s))),
            // `[e for v in i if c]` — single-clause comprehension of each kind.
            (
                prop_oneof![
                    Just(CompKind::List),
                    Just(CompKind::Set),
                    Just(CompKind::Generator)
                ],
                inner.clone(),
                arb_name(),
                inner.clone(),
                proptest::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(kind, element, v, iter, ifs)| expr(ExprKind::Comp {
                    kind,
                    element: Box::new(element),
                    value: None,
                    clauses: vec![CompClause {
                        target: expr(ExprKind::Name(v)),
                        iter,
                        ifs,
                        is_async: false,
                    }],
                })),
            (inner.clone(), arb_name(), inner.clone()).prop_map(|(k, v, iter)| {
                expr(ExprKind::Comp {
                    kind: CompKind::Dict,
                    element: Box::new(k.clone()),
                    value: Some(Box::new(k)),
                    clauses: vec![CompClause {
                        target: expr(ExprKind::Name(v)),
                        iter,
                        ifs: vec![],
                        is_async: false,
                    }],
                })
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(func, args)| expr(ExprKind::Call {
                    func: Box::new(func),
                    args,
                })),
            proptest::collection::vec(inner.clone(), 0..3)
                .prop_map(|items| expr(ExprKind::List(items))),
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("=="),
                    Just("<"),
                    Just("and"),
                    Just("or")
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| expr(ExprKind::BinOp {
                    op: op.to_owned(),
                    left: Box::new(l),
                    right: Box::new(r),
                })),
            (inner.clone(), inner.clone()).prop_map(|(v, i)| expr(ExprKind::Subscript {
                value: Box::new(v),
                index: Box::new(i),
            })),
            inner.clone().prop_map(|o| expr(ExprKind::UnaryOp {
                op: "not".into(),
                operand: Box::new(o),
            })),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Pass(Span::default())),
        arb_expr().prop_map(|e| Stmt::Expr(ExprStmt {
            expr: e,
            span: Span::default(),
        })),
        (arb_expr()).prop_map(|v| Stmt::Return(ReturnStmt {
            value: Some(v),
            span: Span::default(),
        })),
        Just(Stmt::Return(ReturnStmt {
            value: None,
            span: Span::default(),
        })),
        (arb_name(), arb_expr()).prop_map(|(n, v)| Stmt::Assign(AssignStmt {
            target: expr(ExprKind::Name(n)),
            value: v,
            aug_op: None,
            span: Span::default(),
        })),
        (
            arb_name(),
            prop_oneof![Just("+"), Just("//"), Just("%"), Just("**"), Just("|")],
            arb_expr()
        )
            .prop_map(|(n, op, v)| Stmt::Assign(AssignStmt {
                target: expr(ExprKind::Name(n)),
                value: v,
                aug_op: Some(op.to_owned()),
                span: Span::default(),
            })),
        proptest::option::of(arb_expr()).prop_map(|exc| Stmt::Raise(RaiseStmt {
            exc,
            cause: None,
            span: Span::default(),
        })),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        let body = proptest::collection::vec(inner.clone(), 1..3);
        prop_oneof![
            (arb_expr(), body.clone(), proptest::option::of(body.clone())).prop_map(
                |(cond, then, orelse)| Stmt::If(IfStmt {
                    branches: vec![(cond, then)],
                    orelse,
                    span: Span::default(),
                })
            ),
            (arb_expr(), body.clone()).prop_map(|(cond, b)| Stmt::While(WhileStmt {
                cond,
                body: b,
                span: Span::default(),
            })),
            (arb_name(), arb_expr(), body.clone()).prop_map(|(v, iter, b)| {
                Stmt::For(ForStmt {
                    target: expr(ExprKind::Name(v)),
                    iter,
                    body: b,
                    span: Span::default(),
                })
            }),
            // try/except/else/finally — always at least one handler.
            (
                body.clone(),
                proptest::collection::vec(
                    (
                        proptest::option::of(arb_name()),
                        proptest::option::of(arb_name()),
                        body.clone()
                    ),
                    1..3
                ),
                proptest::option::of(body.clone()),
                proptest::option::of(body.clone())
            )
                .prop_map(|(b, hs, orelse, finally)| {
                    let mut handlers: Vec<ExceptHandler> = hs
                        .into_iter()
                        .map(|(exc, name, hbody)| ExceptHandler {
                            name: exc.as_ref().and(name).map(sp),
                            exc: exc.map(|e| expr(ExprKind::Name(e))),
                            body: hbody,
                            span: Span::default(),
                        })
                        .collect();
                    // A bare `except:` must come last to reparse cleanly.
                    handlers.sort_by_key(|h| h.exc.is_none());
                    let orelse = handlers.first().and(orelse);
                    Stmt::Try(TryStmt {
                        body: b,
                        handlers,
                        orelse,
                        finally,
                        span: Span::default(),
                    })
                }),
            // with items: body
            (
                proptest::collection::vec((arb_expr(), proptest::option::of(arb_name())), 1..3),
                body.clone()
            )
                .prop_map(|(items, b)| Stmt::With(WithStmt {
                    items: items
                        .into_iter()
                        .map(|(context, target)| WithItem {
                            context,
                            target: target.map(|n| expr(ExprKind::Name(n))),
                        })
                        .collect(),
                    body: b,
                    span: Span::default(),
                })),
            // (async) def with decorators and parameters.
            (
                proptest::collection::vec(arb_name(), 0..2),
                arb_name(),
                proptest::collection::vec(arb_name(), 0..3),
                prop_oneof![Just(false), Just(true)],
                body.clone()
            )
                .prop_map(|(decs, name, params, is_async, b)| {
                    Stmt::FuncDef(FuncDef {
                        decorators: decs
                            .into_iter()
                            .map(|d| Decorator {
                                expr: expr(ExprKind::Name(d)),
                                span: Span::default(),
                            })
                            .collect(),
                        name: sp(name),
                        params: params.into_iter().map(sp).collect(),
                        body: b,
                        is_async,
                        span: Span::default(),
                    })
                }),
        ]
    })
}

fn arb_module() -> impl Strategy<Value = Module> {
    proptest::collection::vec(arb_stmt(), 1..6).prop_map(|body| Module { body })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse → print is a fixpoint.
    #[test]
    fn print_parse_print_fixpoint(module in arb_module()) {
        let printed = print_module(&module);
        let reparsed = parse_module(&printed).map_err(|e| {
            TestCaseError::fail(format!("reparse failed: {e}\n{printed}"))
        })?;
        let printed_again = print_module(&reparsed);
        prop_assert_eq!(printed, printed_again);
    }

    /// Every printed module lexes and parses without error.
    #[test]
    fn printed_modules_parse(module in arb_module()) {
        let printed = print_module(&module);
        prop_assert!(parse_module(&printed).is_ok(), "{}", printed);
    }
}
