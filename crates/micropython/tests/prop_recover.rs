//! Recovery-mode totality: `parse_module_recover` must turn *any* input —
//! byte soup, truncated Python, mixed Unicode — into *some* module without
//! panicking or erroring, and every `Degraded` node it records must carry
//! a span that lies within the input.

use micropython_parser::ast::Module;
use micropython_parser::visit::collect_degraded;
use micropython_parser::{parse_module, parse_module_recover, tokenize_recover};
use proptest::prelude::*;

fn assert_degraded_spans_valid(module: &Module, input: &str) -> Result<(), TestCaseError> {
    for d in collect_degraded(module) {
        prop_assert!(
            d.span.start <= d.span.end,
            "inverted degraded span {} for input {input:?}",
            d.span
        );
        prop_assert!(
            d.span.end <= input.len() + 1,
            "degraded span {} beyond input of {} bytes",
            d.span,
            input.len()
        );
        prop_assert!(!d.reason.is_empty(), "degraded node without a reason");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII input always produces a module in recovery mode.
    #[test]
    fn ascii_soup_recovers(input in "[ -~\n\t]{0,200}") {
        let module = parse_module_recover(&input);
        assert_degraded_spans_valid(&module, &input)?;
    }

    /// Arbitrary Unicode input always produces a module in recovery mode
    /// (multi-byte characters inside strings, names, and garbage positions).
    #[test]
    fn unicode_soup_recovers(input in "\\PC{0,100}") {
        let _ = tokenize_recover(&input);
        let module = parse_module_recover(&input);
        assert_degraded_spans_valid(&module, &input)?;
    }

    /// Token soup built from real grammar fragments recovers, and whenever
    /// strict parsing succeeds, recovery parses the same input with zero
    /// degraded nodes.
    #[test]
    fn python_shaped_soup_recovers(
        fragments in proptest::collection::vec(
            prop_oneof![
                Just("def f(self):"),
                Just("async def g(self):"),
                Just("class C(Base):"),
                Just("    return [\"x\"], 2"),
                Just("    pass"),
                Just("try:"),
                Just("except OSError as e:"),
                Just("finally:"),
                Just("with open(f) as fh:"),
                Just("    await self.a.open()"),
                Just("x = [i for i in items]"),
                Just("y = f\"pin {n}\""),
                Just("z = lambda a: a + 1"),
                Just("raise ValueError(\"bad\")"),
                Just("x //= 2"),
                Just("@sys"),
                Just("    case _:"),
                Just("x = [1, 2"),
                Just("\"unterminated"),
                Just("?? !! $$"),
                Just("    "),
                Just(""),
            ],
            0..12
        )
    ) {
        let input = fragments.join("\n");
        let module = parse_module_recover(&input);
        assert_degraded_spans_valid(&module, &input)?;
        if parse_module(&input).is_ok() {
            prop_assert!(
                collect_degraded(&module).is_empty(),
                "strictly-valid input produced degraded nodes: {input:?}"
            );
        }
    }
}
