//! Robustness: the lexer and parser must never panic — any byte soup
//! either parses or returns a structured error.

use micropython_parser::{parse_module, tokenize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII input never panics the lexer or parser.
    #[test]
    fn arbitrary_ascii_never_panics(input in "[ -~\n\t]{0,200}") {
        let _ = tokenize(&input);
        let _ = parse_module(&input);
    }

    /// Arbitrary Unicode input never panics either.
    #[test]
    fn arbitrary_unicode_never_panics(input in "\\PC{0,100}") {
        let _ = tokenize(&input);
        let _ = parse_module(&input);
    }

    /// Python-shaped fragments (keywords, colons, indentation) never panic
    /// and produce positioned errors when they fail.
    #[test]
    fn python_shaped_inputs_error_cleanly(
        fragments in proptest::collection::vec(
            prop_oneof![
                Just("def f(self):"),
                Just("class C:"),
                Just("    return [\"x\"]"),
                Just("    pass"),
                Just("if x:"),
                Just("else:"),
                Just("match y:"),
                Just("    case _:"),
                Just("@sys"),
                Just("@op_initial"),
                Just("        self.a.open()"),
                Just("for i in r:"),
                Just("while t:"),
                Just("x = [1, 2"),
                Just("\"unterminated"),
                Just("    "),
                Just(""),
            ],
            0..12
        )
    ) {
        let input = fragments.join("\n");
        match parse_module(&input) {
            Ok(_) => {}
            Err(e) => {
                // Errors carry spans within the input.
                prop_assert!(e.span.start <= input.len() + 1, "{e}");
            }
        }
    }
}
