//! Tokens of the MicroPython subset.

use crate::span::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or non-reserved name.
    Ident(String),
    /// Keyword (reserved identifier).
    Keyword(Keyword),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (decoded contents).
    Str(String),
    /// Formatted string literal (`f"..."`; decoded contents, interpolations
    /// kept verbatim).
    FStr(String),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of a logical line.
    Newline,
    /// Increase of indentation.
    Indent,
    /// Decrease of indentation.
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::FStr(_) => write!(f, "f-string literal"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Newline => write!(f, "end of line"),
            TokenKind::Indent => write!(f, "indent"),
            TokenKind::Dedent => write!(f, "dedent"),
            TokenKind::Eof => write!(f, "end of file"),
        }
    }
}

/// Reserved words of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Def,
    Class,
    Return,
    If,
    Elif,
    Else,
    Match,
    Case,
    For,
    While,
    In,
    Is,
    Pass,
    Break,
    Continue,
    Not,
    And,
    Or,
    True,
    False,
    None,
    Import,
    From,
    As,
    Try,
    Except,
    Finally,
    With,
    Raise,
    Async,
    Await,
    Lambda,
}

impl Keyword {
    /// Parses a reserved word. (Not `std::str::FromStr`: that trait's
    /// error type would be noise for a lookup that is simply `None`.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "def" => Keyword::Def,
            "class" => Keyword::Class,
            "return" => Keyword::Return,
            "if" => Keyword::If,
            "elif" => Keyword::Elif,
            "else" => Keyword::Else,
            "match" => Keyword::Match,
            "case" => Keyword::Case,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "in" => Keyword::In,
            "is" => Keyword::Is,
            "pass" => Keyword::Pass,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "not" => Keyword::Not,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "True" => Keyword::True,
            "False" => Keyword::False,
            "None" => Keyword::None,
            "import" => Keyword::Import,
            "from" => Keyword::From,
            "as" => Keyword::As,
            "try" => Keyword::Try,
            "except" => Keyword::Except,
            "finally" => Keyword::Finally,
            "with" => Keyword::With,
            "raise" => Keyword::Raise,
            "async" => Keyword::Async,
            "await" => Keyword::Await,
            "lambda" => Keyword::Lambda,
            _ => return None,
        })
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Keyword::Def => "def",
            Keyword::Class => "class",
            Keyword::Return => "return",
            Keyword::If => "if",
            Keyword::Elif => "elif",
            Keyword::Else => "else",
            Keyword::Match => "match",
            Keyword::Case => "case",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::In => "in",
            Keyword::Is => "is",
            Keyword::Pass => "pass",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Not => "not",
            Keyword::And => "and",
            Keyword::Or => "or",
            Keyword::True => "True",
            Keyword::False => "False",
            Keyword::None => "None",
            Keyword::Import => "import",
            Keyword::From => "from",
            Keyword::As => "as",
            Keyword::Try => "try",
            Keyword::Except => "except",
            Keyword::Finally => "finally",
            Keyword::With => "with",
            Keyword::Raise => "raise",
            Keyword::Async => "async",
            Keyword::Await => "await",
            Keyword::Lambda => "lambda",
        };
        f.write_str(s)
    }
}

/// Punctuation and operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Colon,
    Comma,
    Dot,
    Semicolon,
    At,
    Arrow,
    Assign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    DoubleSlash,
    Percent,
    Pipe,
    Amp,
    Caret,
    Tilde,
    LShift,
    RShift,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    DoubleSlashAssign,
    PercentAssign,
    DoubleStarAssign,
    PipeAssign,
    AmpAssign,
    CaretAssign,
    LShiftAssign,
    RShiftAssign,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::Colon => ":",
            Punct::Comma => ",",
            Punct::Dot => ".",
            Punct::Semicolon => ";",
            Punct::At => "@",
            Punct::Arrow => "->",
            Punct::Assign => "=",
            Punct::Eq => "==",
            Punct::Ne => "!=",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::Le => "<=",
            Punct::Ge => ">=",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::DoubleStar => "**",
            Punct::Slash => "/",
            Punct::DoubleSlash => "//",
            Punct::Percent => "%",
            Punct::Pipe => "|",
            Punct::Amp => "&",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::LShift => "<<",
            Punct::RShift => ">>",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::SlashAssign => "/=",
            Punct::DoubleSlashAssign => "//=",
            Punct::PercentAssign => "%=",
            Punct::DoubleStarAssign => "**=",
            Punct::PipeAssign => "|=",
            Punct::AmpAssign => "&=",
            Punct::CaretAssign => "^=",
            Punct::LShiftAssign => "<<=",
            Punct::RShiftAssign => ">>=",
        };
        f.write_str(s)
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Pairs a kind with its span.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}
