//! Indentation-aware lexer for the MicroPython subset.
//!
//! Follows CPython's tokenizer structure: physical lines are folded into
//! logical lines (implicit joining inside `()[]{}`), leading whitespace
//! drives an indent stack emitting `Indent`/`Dedent` tokens, comments and
//! blank lines are skipped.

use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::error::Error;
use std::fmt;

/// A lexical error with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl Error for LexError {}

/// Tokenizes `source` into a vector ending with `Eof`.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed input: inconsistent dedents,
/// unterminated strings, tabs in indentation mixing with spaces in a way
/// that cannot be resolved, or unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source, false).run()
}

/// Tokenizes `source` totally: every input produces a token stream.
///
/// Malformed pieces degrade instead of erroring — unknown characters are
/// skipped, unterminated strings close at the line (or input) end,
/// inconsistent dedents re-anchor to the nearest level, and overflowing
/// numeric literals become `0`. This is the recovery-mode front door used
/// by [`crate::parse_module_recover`].
pub fn tokenize_recover(source: &str) -> Vec<Token> {
    Lexer::new(source, true)
        .run()
        .expect("recovery-mode lexing is total")
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    indents: Vec<usize>,
    paren_depth: usize,
    at_line_start: bool,
    /// Degrade malformed input instead of erroring.
    recover: bool,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str, recover: bool) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            indents: vec![0],
            paren_depth: 0,
            at_line_start: true,
            recover,
        }
    }

    fn err(&self, span: Span, message: impl Into<String>) -> LexError {
        LexError {
            span,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while self.pos < self.src.len() {
            if self.at_line_start && self.paren_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.src.len() {
                    break;
                }
            }
            let start = self.pos;
            let c = match self.peek() {
                Some(c) => c,
                None => break,
            };
            match c {
                b'\n' => {
                    self.bump();
                    if self.paren_depth == 0 {
                        // Suppress empty logical lines.
                        if matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(TokenKind::Newline) | None
                        ) {
                            // no token
                        } else if matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(TokenKind::Indent) | Some(TokenKind::Dedent)
                        ) {
                            // blank line right after indentation change
                        } else {
                            self.push(TokenKind::Newline, start);
                        }
                        self.at_line_start = true;
                    }
                }
                b'\r' => {
                    self.bump();
                }
                b' ' | b'\t' => {
                    self.bump();
                }
                b'#' => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                b'\\' if self.peek2() == Some(b'\n') => {
                    // Explicit line joining.
                    self.bump();
                    self.bump();
                }
                b'"' | b'\'' => self.lex_string(start, false)?,
                b'0'..=b'9' => self.lex_number()?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.lex_name()?,
                _ => self.lex_punct()?,
            }
        }
        // Close any open logical line.
        if !matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(TokenKind::Newline) | Some(TokenKind::Dedent) | None
        ) {
            let p = self.pos;
            self.push(TokenKind::Newline, p);
        }
        // Unwind the indent stack.
        while self.indents.len() > 1 {
            self.indents.pop();
            let p = self.pos;
            self.push(TokenKind::Dedent, p);
        }
        let p = self.pos;
        self.push(TokenKind::Eof, p);
        Ok(self.tokens)
    }

    fn handle_indentation(&mut self) -> Result<(), LexError> {
        loop {
            let line_start = self.pos;
            let mut width = 0usize;
            while let Some(c) = self.peek() {
                match c {
                    b' ' => {
                        width += 1;
                        self.bump();
                    }
                    b'\t' => {
                        // Tab advances to the next multiple of 8.
                        width += 8 - (width % 8);
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank line or comment-only line: consume and retry.
                Some(b'\n') => {
                    self.bump();
                    continue;
                }
                Some(b'\r') => {
                    self.bump();
                    continue;
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                    continue;
                }
                None => {
                    self.at_line_start = false;
                    return Ok(());
                }
                _ => {}
            }
            let current = *self.indents.last().expect("indent stack nonempty");
            if width > current {
                self.indents.push(width);
                self.tokens.push(Token::new(
                    TokenKind::Indent,
                    Span::new(line_start, self.pos),
                ));
            } else if width < current {
                while *self.indents.last().expect("indent stack nonempty") > width {
                    self.indents.pop();
                    self.tokens.push(Token::new(
                        TokenKind::Dedent,
                        Span::new(line_start, self.pos),
                    ));
                }
                if *self.indents.last().expect("indent stack nonempty") != width {
                    if self.recover {
                        // Re-anchor: treat the stray level as a new block.
                        self.indents.push(width);
                        self.tokens.push(Token::new(
                            TokenKind::Indent,
                            Span::new(line_start, self.pos),
                        ));
                    } else {
                        return Err(self.err(
                            Span::new(line_start, self.pos),
                            "unindent does not match any outer indentation level",
                        ));
                    }
                }
            }
            self.at_line_start = false;
            return Ok(());
        }
    }

    /// Lexes a string literal starting at the quote under the cursor;
    /// `start` is the token start (before any `f`/`r`/`b` prefix) and
    /// `fstring` selects the [`TokenKind::FStr`] token kind.
    fn lex_string(&mut self, start: usize, fstring: bool) -> Result<(), LexError> {
        let quote = self.bump().expect("string start");
        // Triple-quoted strings.
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
        }
        let mut value = String::new();
        let finish = |l: &mut Self, value: String| {
            let kind = if fstring {
                TokenKind::FStr(value)
            } else {
                TokenKind::Str(value)
            };
            l.push(kind, start);
        };
        loop {
            match self.peek() {
                None => {
                    if self.recover {
                        finish(self, value);
                        return Ok(());
                    }
                    return Err(self.err(Span::new(start, self.pos), "unterminated string literal"));
                }
                Some(b'\n') if !triple => {
                    if self.recover {
                        // Close at the line end; the newline stays outside.
                        finish(self, value);
                        return Ok(());
                    }
                    return Err(self.err(Span::new(start, self.pos), "unterminated string literal"));
                }
                Some(b'\\') => {
                    self.bump();
                    let esc = match self.bump() {
                        Some(e) => e,
                        None if self.recover => {
                            value.push('\\');
                            finish(self, value);
                            return Ok(());
                        }
                        None => {
                            return Err(self.err(Span::new(start, self.pos), "unterminated escape"))
                        }
                    };
                    value.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'\'' => '\'',
                        b'"' => '"',
                        b'0' => '\0',
                        b'\n' => continue, // line continuation inside string
                        other if other.is_ascii() => {
                            // Unknown escapes are kept verbatim (Python keeps
                            // the backslash; we keep just the char for
                            // simplicity of the subset).
                            other as char
                        }
                        _ => {
                            // Multi-byte char after the backslash: back up so
                            // the normal path below copies it whole.
                            self.pos -= 1;
                            continue;
                        }
                    });
                }
                Some(c) if c == quote => {
                    if triple {
                        if self.peek2() == Some(quote) && self.src.get(self.pos + 2) == Some(&quote)
                        {
                            self.bump();
                            self.bump();
                            self.bump();
                            break;
                        }
                        value.push(quote as char);
                        self.bump();
                    } else {
                        self.bump();
                        break;
                    }
                }
                Some(c) if c.is_ascii() => {
                    value.push(c as char);
                    self.bump();
                }
                Some(_) => {
                    // Copy a whole multi-byte UTF-8 sequence: the source is
                    // valid UTF-8, so decode from the current boundary.
                    let tail =
                        std::str::from_utf8(&self.src[self.pos..]).expect("source is valid UTF-8");
                    let ch = tail.chars().next().expect("nonempty tail");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        finish(self, value);
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let mut is_float = false;
        // Hex/binary/octal prefixes.
        if self.peek() == Some(b'0')
            && matches!(
                self.peek2(),
                Some(b'x') | Some(b'X') | Some(b'b') | Some(b'B') | Some(b'o') | Some(b'O')
            )
        {
            let base_char = self.peek2().expect("checked");
            self.bump();
            self.bump();
            let radix = match base_char {
                b'x' | b'X' => 16,
                b'b' | b'B' => 2,
                _ => 8,
            };
            let digits_start = self.pos;
            while matches!(self.peek(), Some(c) if (c as char).is_digit(radix) || c == b'_') {
                self.bump();
            }
            let text: String = std::str::from_utf8(&self.src[digits_start..self.pos])
                .expect("ascii digits")
                .replace('_', "");
            let value = match i64::from_str_radix(&text, radix) {
                Ok(v) => v,
                Err(_) if self.recover => 0,
                Err(_) => {
                    return Err(self.err(Span::new(start, self.pos), "invalid integer literal"))
                }
            };
            self.push(TokenKind::Int(value), start);
            return Ok(());
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
            self.bump();
        }
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && matches!(self.peek2(), Some(c) if c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii number")
            .replace('_', "");
        if is_float {
            let v: f64 = match text.parse() {
                Ok(v) => v,
                Err(_) if self.recover => 0.0,
                Err(_) => return Err(self.err(Span::new(start, self.pos), "invalid float literal")),
            };
            self.push(TokenKind::Float(v), start);
        } else {
            let v: i64 = match text.parse() {
                Ok(v) => v,
                Err(_) if self.recover => 0,
                Err(_) => {
                    return Err(self.err(Span::new(start, self.pos), "invalid integer literal"))
                }
            };
            self.push(TokenKind::Int(v), start);
        }
        Ok(())
    }

    fn lex_name(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii identifier")
            .to_owned();
        // A string prefix (`f"..."`, `rb'...'`, …) glues onto the literal.
        let is_prefix = (1..=2).contains(&text.len())
            && text
                .bytes()
                .all(|b| matches!(b, b'f' | b'F' | b'r' | b'R' | b'b' | b'B' | b'u' | b'U'));
        if is_prefix && matches!(self.peek(), Some(b'"') | Some(b'\'')) {
            let fstring = text.bytes().any(|b| b == b'f' || b == b'F');
            return self.lex_string(start, fstring);
        }
        match Keyword::from_str(&text) {
            Some(k) => self.push(TokenKind::Keyword(k), start),
            None => self.push(TokenKind::Ident(text), start),
        }
        Ok(())
    }

    fn lex_punct(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let c = self.bump().expect("punct start");
        let two = |l: &Lexer| l.peek();
        let kind = match c {
            b'(' => {
                self.paren_depth += 1;
                Punct::LParen
            }
            b')' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Punct::RParen
            }
            b'[' => {
                self.paren_depth += 1;
                Punct::LBracket
            }
            b']' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Punct::RBracket
            }
            b'{' => {
                self.paren_depth += 1;
                Punct::LBrace
            }
            b'}' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                Punct::RBrace
            }
            b':' => Punct::Colon,
            b',' => Punct::Comma,
            b'.' => Punct::Dot,
            b';' => Punct::Semicolon,
            b'@' => Punct::At,
            b'~' => Punct::Tilde,
            b'^' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Punct::CaretAssign
                } else {
                    Punct::Caret
                }
            }
            b'&' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Punct::AmpAssign
                } else {
                    Punct::Amp
                }
            }
            b'|' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Punct::PipeAssign
                } else {
                    Punct::Pipe
                }
            }
            b'%' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Punct::PercentAssign
                } else {
                    Punct::Percent
                }
            }
            b'=' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Punct::Eq
                } else {
                    Punct::Assign
                }
            }
            b'!' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Punct::Ne
                } else {
                    if self.recover {
                        return Ok(());
                    }
                    return Err(self.err(
                        Span::new(start, self.pos),
                        "unexpected character `!` (did you mean `!=` or `not`?)",
                    ));
                }
            }
            b'<' => match two(self) {
                Some(b'=') => {
                    self.bump();
                    Punct::Le
                }
                Some(b'<') => {
                    self.bump();
                    if two(self) == Some(b'=') {
                        self.bump();
                        Punct::LShiftAssign
                    } else {
                        Punct::LShift
                    }
                }
                _ => Punct::Lt,
            },
            b'>' => match two(self) {
                Some(b'=') => {
                    self.bump();
                    Punct::Ge
                }
                Some(b'>') => {
                    self.bump();
                    if two(self) == Some(b'=') {
                        self.bump();
                        Punct::RShiftAssign
                    } else {
                        Punct::RShift
                    }
                }
                _ => Punct::Gt,
            },
            b'+' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    Punct::PlusAssign
                } else {
                    Punct::Plus
                }
            }
            b'-' => match two(self) {
                Some(b'>') => {
                    self.bump();
                    Punct::Arrow
                }
                Some(b'=') => {
                    self.bump();
                    Punct::MinusAssign
                }
                _ => Punct::Minus,
            },
            b'*' => match two(self) {
                Some(b'*') => {
                    self.bump();
                    if two(self) == Some(b'=') {
                        self.bump();
                        Punct::DoubleStarAssign
                    } else {
                        Punct::DoubleStar
                    }
                }
                Some(b'=') => {
                    self.bump();
                    Punct::StarAssign
                }
                _ => Punct::Star,
            },
            b'/' => match two(self) {
                Some(b'/') => {
                    self.bump();
                    if two(self) == Some(b'=') {
                        self.bump();
                        Punct::DoubleSlashAssign
                    } else {
                        Punct::DoubleSlash
                    }
                }
                Some(b'=') => {
                    self.bump();
                    Punct::SlashAssign
                }
                _ => Punct::Slash,
            },
            other => {
                if self.recover {
                    // Skip the whole UTF-8 sequence so the next byte is a
                    // character boundary again.
                    if other >= 0x80 {
                        while matches!(self.peek(), Some(b) if b & 0xC0 == 0x80) {
                            self.bump();
                        }
                    }
                    return Ok(());
                }
                return Err(self.err(
                    Span::new(start, self.pos),
                    format!("unexpected character `{}`", other as char),
                ));
            }
        };
        self.push(TokenKind::Punct(kind), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        let k = kinds("x = 1\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::Int(1),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn emits_indent_dedent() {
        let src = "def f():\n    pass\n";
        let k = kinds(src);
        assert!(k.contains(&TokenKind::Indent));
        assert!(k.contains(&TokenKind::Dedent));
        let indent_pos = k.iter().position(|t| *t == TokenKind::Indent).unwrap();
        let dedent_pos = k.iter().position(|t| *t == TokenKind::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn nested_dedents_unwind() {
        let src = "class C:\n    def m(self):\n        pass\n";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Indent).count(), 2);
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Dedent).count(), 2);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let src = "a = 1\n\n# comment\n   # indented comment\nb = 2\n";
        let k = kinds(src);
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
        assert!(!k.contains(&TokenKind::Indent));
    }

    #[test]
    fn implicit_line_joining_in_brackets() {
        let src = "x = [1,\n     2,\n     3]\n";
        let k = kinds(src);
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
        assert!(!k.contains(&TokenKind::Indent));
    }

    #[test]
    fn string_literals_with_escapes() {
        let k = kinds(
            r#"s = "a\nb"
"#,
        );
        assert!(k.contains(&TokenKind::Str("a\nb".into())));
        let k = kinds("s = 'it'\n");
        assert!(k.contains(&TokenKind::Str("it".into())));
    }

    #[test]
    fn triple_quoted_strings() {
        let src = "s = \"\"\"line1\nline2\"\"\"\n";
        let k = kinds(src);
        assert!(k.contains(&TokenKind::Str("line1\nline2".into())));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("s = \"oops\n").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        let k = kinds("return returns\n");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Return));
        assert_eq!(k[1], TokenKind::Ident("returns".into()));
    }

    #[test]
    fn numbers() {
        let k = kinds("a = 42\nb = 3.25\nc = 0x1F\nd = 1_000\n");
        assert!(k.contains(&TokenKind::Int(42)));
        assert!(k.contains(&TokenKind::Float(3.25)));
        assert!(k.contains(&TokenKind::Int(31)));
        assert!(k.contains(&TokenKind::Int(1000)));
    }

    #[test]
    fn operators() {
        let k = kinds("a == b != c <= d >= e -> f\n");
        assert!(k.contains(&TokenKind::Punct(Punct::Eq)));
        assert!(k.contains(&TokenKind::Punct(Punct::Ne)));
        assert!(k.contains(&TokenKind::Punct(Punct::Le)));
        assert!(k.contains(&TokenKind::Punct(Punct::Ge)));
        assert!(k.contains(&TokenKind::Punct(Punct::Arrow)));
    }

    #[test]
    fn inconsistent_dedent_errors() {
        let src = "if x:\n        a = 1\n    b = 2\n";
        assert!(tokenize(src).is_err());
    }

    #[test]
    fn decorator_tokens() {
        let k = kinds("@sys([\"a\", \"b\"])\nclass C:\n    pass\n");
        assert_eq!(k[0], TokenKind::Punct(Punct::At));
        assert_eq!(k[1], TokenKind::Ident("sys".into()));
        assert!(k.contains(&TokenKind::Str("a".into())));
        assert!(k.contains(&TokenKind::Keyword(Keyword::Class)));
    }

    #[test]
    fn eof_without_trailing_newline() {
        let k = kinds("x = 1");
        assert_eq!(k.last(), Some(&TokenKind::Eof));
        assert!(k.contains(&TokenKind::Newline));
    }

    #[test]
    fn dunder_names_are_identifiers() {
        let k = kinds("def __init__(self):\n    pass\n");
        assert!(k.contains(&TokenKind::Ident("__init__".into())));
    }
}
