//! Pretty-printer: AST back to MicroPython source.
//!
//! The printer is the inverse of the parser up to whitespace and comment
//! normalization: `parse(print(parse(s)))` equals `parse(s)` structurally
//! (checked by the round-trip property tests). It powers `--emit python`
//! style tooling and makes AST fixtures reviewable.

use crate::ast::*;

/// Renders a module back to source text.
pub fn print_module(module: &Module) -> String {
    let mut p = Printer::default();
    for stmt in &module.body {
        p.stmt(stmt);
    }
    p.out
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr_prec(expr, 0);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn block(&mut self, body: &[Stmt]) {
        self.indent += 1;
        if body.is_empty() {
            self.line("pass");
        } else {
            for stmt in body {
                self.stmt(stmt);
            }
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::ClassDef(c) => {
                for d in &c.decorators {
                    let text = print_expr(&d.expr);
                    self.line(&format!("@{text}"));
                }
                let bases = if c.bases.is_empty() {
                    String::new()
                } else {
                    let items: Vec<String> = c.bases.iter().map(print_expr).collect();
                    format!("({})", items.join(", "))
                };
                self.line(&format!("class {}{}:", c.name.node, bases));
                self.block(&c.body);
            }
            Stmt::FuncDef(f) => {
                for d in &f.decorators {
                    let text = print_expr(&d.expr);
                    self.line(&format!("@{text}"));
                }
                let params: Vec<&str> = f.params.iter().map(|p| p.node.as_str()).collect();
                let prefix = if f.is_async { "async " } else { "" };
                self.line(&format!(
                    "{prefix}def {}({}):",
                    f.name.node,
                    params.join(", ")
                ));
                self.block(&f.body);
            }
            Stmt::Return(r) => match &r.value {
                None => self.line("return"),
                Some(v) => {
                    // Top-level tuples print without parens (Table 2 style).
                    let text = match &v.kind {
                        ExprKind::Tuple(items) if !items.is_empty() => {
                            let parts: Vec<String> = items.iter().map(print_expr).collect();
                            parts.join(", ")
                        }
                        _ => print_expr(v),
                    };
                    self.line(&format!("return {text}"));
                }
            },
            Stmt::If(ifs) => {
                for (i, (cond, body)) in ifs.branches.iter().enumerate() {
                    let kw = if i == 0 { "if" } else { "elif" };
                    self.line(&format!("{kw} {}:", print_expr(cond)));
                    self.block(body);
                }
                if let Some(body) = &ifs.orelse {
                    self.line("else:");
                    self.block(body);
                }
            }
            Stmt::Match(ms) => {
                self.line(&format!("match {}:", print_expr(&ms.subject)));
                self.indent += 1;
                for case in &ms.cases {
                    self.line(&format!("case {}:", print_pattern(&case.pattern)));
                    self.block(&case.body);
                }
                self.indent -= 1;
            }
            Stmt::While(ws) => {
                self.line(&format!("while {}:", print_expr(&ws.cond)));
                self.block(&ws.body);
            }
            Stmt::For(fs) => {
                let target = match &fs.target.kind {
                    ExprKind::Tuple(items) if !items.is_empty() => {
                        let parts: Vec<String> = items.iter().map(print_expr).collect();
                        parts.join(", ")
                    }
                    _ => print_expr(&fs.target),
                };
                self.line(&format!("for {target} in {}:", print_expr(&fs.iter)));
                self.block(&fs.body);
            }
            Stmt::Assign(a) => {
                let op = match &a.aug_op {
                    Some(o) => format!("{o}="),
                    None => "=".to_owned(),
                };
                let value = match &a.value.kind {
                    ExprKind::Tuple(items) if !items.is_empty() => {
                        let parts: Vec<String> = items.iter().map(print_expr).collect();
                        parts.join(", ")
                    }
                    _ => print_expr(&a.value),
                };
                self.line(&format!("{} {op} {value}", print_expr(&a.target)));
            }
            Stmt::Expr(e) => {
                let text = print_expr(&e.expr);
                self.line(&text);
            }
            Stmt::Pass(_) => self.line("pass"),
            Stmt::Break(_) => self.line("break"),
            Stmt::Continue(_) => self.line("continue"),
            Stmt::Import(i) => {
                self.line(&format!("import {}", i.names.join(", ")));
            }
            Stmt::Try(t) => {
                self.line("try:");
                self.block(&t.body);
                for h in &t.handlers {
                    let mut head = "except".to_owned();
                    if let Some(exc) = &h.exc {
                        head.push(' ');
                        head.push_str(&print_expr(exc));
                        if let Some(name) = &h.name {
                            head.push_str(" as ");
                            head.push_str(&name.node);
                        }
                    }
                    head.push(':');
                    self.line(&head);
                    self.block(&h.body);
                }
                if let Some(body) = &t.orelse {
                    self.line("else:");
                    self.block(body);
                }
                if let Some(body) = &t.finally {
                    self.line("finally:");
                    self.block(body);
                }
            }
            Stmt::With(w) => {
                let items: Vec<String> = w
                    .items
                    .iter()
                    .map(|item| match &item.target {
                        Some(t) => format!("{} as {}", print_expr(&item.context), print_expr(t)),
                        None => print_expr(&item.context),
                    })
                    .collect();
                self.line(&format!("with {}:", items.join(", ")));
                self.block(&w.body);
            }
            Stmt::Raise(r) => {
                let mut text = "raise".to_owned();
                if let Some(exc) = &r.exc {
                    text.push(' ');
                    text.push_str(&print_expr(exc));
                    if let Some(cause) = &r.cause {
                        text.push_str(" from ");
                        text.push_str(&print_expr(cause));
                    }
                }
                self.line(&text);
            }
            // A degraded region has no source to reproduce; it prints as
            // the `skip` it means.
            Stmt::Degraded(_) => self.line("pass"),
        }
    }

    fn expr_prec(&mut self, expr: &Expr, prec: u8) {
        let text = render_expr(expr, prec);
        self.out.push_str(&text);
    }
}

fn print_pattern(p: &Pattern) -> String {
    match p {
        Pattern::Literal(e) => print_expr(e),
        Pattern::List(items, _) => {
            let parts: Vec<String> = items.iter().map(print_pattern).collect();
            format!("[{}]", parts.join(", "))
        }
        Pattern::Tuple(items, _) => {
            let parts: Vec<String> = items.iter().map(print_pattern).collect();
            format!("({})", parts.join(", "))
        }
        Pattern::Capture(name) => name.node.clone(),
        Pattern::Wildcard(_) => "_".to_owned(),
    }
}

/// Binding strength of an operator, for minimal parenthesization.
///
/// Mirrors the parser's grammar: `or` < `and` < `not` < comparisons <
/// bit operators < `+`/`-` < `*`-family < prefix `-`/`~` < postfix.
fn binop_prec(op: &str) -> u8 {
    match op {
        "or" => 1,
        "and" => 2,
        // `not` is 3 (see render_expr).
        "==" | "!=" | "<" | ">" | "<=" | ">=" | "in" | "is" | "is not" | "not in" => 4,
        "|" | "&" | "^" | "<<" | ">>" => 5,
        "+" | "-" => 6,
        "*" | "/" | "//" | "%" | "**" => 7,
        _ => 7,
    }
}

fn render_expr(expr: &Expr, prec: u8) -> String {
    match &expr.kind {
        ExprKind::Name(n) => n.clone(),
        ExprKind::Attribute { value, attr } => {
            format!("{}.{}", render_expr(value, 10), attr.node)
        }
        ExprKind::Call { func, args } => {
            let parts: Vec<String> = args.iter().map(|a| render_expr(a, 0)).collect();
            format!("{}({})", render_expr(func, 10), parts.join(", "))
        }
        ExprKind::Subscript { value, index } => {
            format!("{}[{}]", render_expr(value, 10), render_expr(index, 0))
        }
        ExprKind::Str(s) => {
            let escaped = s
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
                .replace('\r', "\\r");
            format!("\"{escaped}\"")
        }
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Float(v) => {
            let s = v.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        ExprKind::Bool(true) => "True".to_owned(),
        ExprKind::Bool(false) => "False".to_owned(),
        ExprKind::NoneLit => "None".to_owned(),
        ExprKind::List(items) => {
            let parts: Vec<String> = items.iter().map(|a| render_expr(a, 0)).collect();
            format!("[{}]", parts.join(", "))
        }
        ExprKind::Dict(pairs) => {
            let parts: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{}: {}", render_expr(k, 0), render_expr(v, 0)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
        ExprKind::Set(items) => {
            let parts: Vec<String> = items.iter().map(|a| render_expr(a, 0)).collect();
            format!("{{{}}}", parts.join(", "))
        }
        ExprKind::Tuple(items) => {
            if items.is_empty() {
                "()".to_owned()
            } else if items.len() == 1 {
                format!("({},)", render_expr(&items[0], 0))
            } else {
                let parts: Vec<String> = items.iter().map(|a| render_expr(a, 0)).collect();
                format!("({})", parts.join(", "))
            }
        }
        ExprKind::BinOp { op, left, right } => {
            let p = binop_prec(op);
            let text = format!(
                "{} {op} {}",
                render_expr(left, p),
                render_expr(right, p + 1)
            );
            if p < prec {
                format!("({text})")
            } else {
                text
            }
        }
        ExprKind::UnaryOp { op, operand } => {
            // `not` binds loosely (just above `and`); `-`/`+`/`~` tightly.
            let own = if op == "not" { 3 } else { 8 };
            let space = if op == "not" { " " } else { "" };
            let text = format!("{op}{space}{}", render_expr(operand, own));
            if prec > own {
                format!("({text})")
            } else {
                text
            }
        }
        ExprKind::Await(operand) => {
            let text = format!("await {}", render_expr(operand, 8));
            if prec > 8 {
                format!("({text})")
            } else {
                text
            }
        }
        ExprKind::Lambda { params, body } => {
            let names: Vec<&str> = params.iter().map(|p| p.node.as_str()).collect();
            let head = if names.is_empty() {
                "lambda".to_owned()
            } else {
                format!("lambda {}", names.join(", "))
            };
            let text = format!("{head}: {}", render_expr(body, 0));
            // A lambda binds everything after the colon, so it always needs
            // parens when nested inside another expression.
            if prec > 0 {
                format!("({text})")
            } else {
                text
            }
        }
        ExprKind::FString(s) => {
            let escaped = s
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
                .replace('\r', "\\r");
            format!("f\"{escaped}\"")
        }
        ExprKind::Starred { stars, value } => {
            let prefix = if *stars == 2 { "**" } else { "*" };
            format!("{prefix}{}", render_expr(value, 8))
        }
        ExprKind::Comp {
            kind,
            element,
            value,
            clauses,
        } => {
            let mut inner = render_expr(element, 0);
            if let Some(v) = value {
                inner.push_str(": ");
                inner.push_str(&render_expr(v, 0));
            }
            for c in clauses {
                let target = match &c.target.kind {
                    ExprKind::Tuple(items) if !items.is_empty() => {
                        let parts: Vec<String> = items.iter().map(|e| render_expr(e, 8)).collect();
                        parts.join(", ")
                    }
                    _ => render_expr(&c.target, 8),
                };
                let kw = if c.is_async { "async for" } else { "for" };
                inner.push_str(&format!(" {kw} {target} in {}", render_expr(&c.iter, 1)));
                for cond in &c.ifs {
                    inner.push_str(&format!(" if {}", render_expr(cond, 1)));
                }
            }
            match kind {
                CompKind::List => format!("[{inner}]"),
                CompKind::Set | CompKind::Dict => format!("{{{inner}}}"),
                CompKind::Generator => format!("({inner})"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn roundtrip(src: &str) {
        let once = parse_module(src).unwrap();
        let printed = print_module(&once);
        let twice = parse_module(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        let printed_again = print_module(&twice);
        assert_eq!(
            printed, printed_again,
            "print is not a fixpoint\n--- first ---\n{printed}\n--- second ---\n{printed_again}"
        );
    }

    #[test]
    fn roundtrips_the_paper_listings() {
        roundtrip(
            r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]
"#,
        );
    }

    #[test]
    fn roundtrips_match_statements() {
        roundtrip(
            r#"
class S:
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["x"], 2
            case _:
                pass
"#,
        );
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            r#"
def f(self):
    for i in range(10):
        while self.ready() and not done:
            self.step()
            break
    if a == 1:
        pass
    elif b < 2:
        x = y + z * 3
    else:
        return
"#,
        );
    }

    #[test]
    fn roundtrips_literals() {
        roundtrip("x = [1, 2.5, \"s\", True, False, None, (1, 2), []]\ny = \"a\\nb\"\n");
    }

    #[test]
    fn minimal_parens() {
        let m = parse_module("x = a + b * c\n").unwrap();
        let printed = print_module(&m);
        assert_eq!(printed, "x = a + b * c\n");
        let m = parse_module("x = (a + b) * c\n").unwrap();
        let printed = print_module(&m);
        assert_eq!(printed, "x = (a + b) * c\n");
    }

    #[test]
    fn roundtrips_dicts_sets_and_is() {
        roundtrip("d = {\"a\": 1, \"b\": [2, 3]}\ns = {1, 2}\ne = {}\n");
        roundtrip("x = a is None\ny = a is not b\nz = c not in d\n");
    }

    #[test]
    fn tuple_returns_print_bare() {
        let m = parse_module("def f(self):\n    return [\"a\"], 2\n").unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("return [\"a\"], 2"));
    }

    #[test]
    fn roundtrips_try_with_raise() {
        roundtrip(
            r#"
def f(self):
    try:
        self.a.open()
    except OSError as e:
        raise ValueError("bad") from e
    except:
        pass
    else:
        self.log()
    finally:
        self.a.close()
    with open("f") as fh, lock:
        fh.write(data)
"#,
        );
    }

    #[test]
    fn roundtrips_async_and_lambda() {
        roundtrip(
            r#"
@task
async def run(self):
    await self.a.open()
    f = lambda x, y: x + y
    g = lambda: 0
"#,
        );
    }

    #[test]
    fn roundtrips_comprehensions_and_fstrings() {
        roundtrip(
            "a = [x * 2 for x in items if x > 0]\n\
             b = {k: v for k, v in pairs}\n\
             c = {x for x in s}\n\
             d = (y for y in gen)\n\
             msg = f\"pin {n} high\"\n",
        );
    }

    #[test]
    fn roundtrips_star_args_and_inheritance() {
        roundtrip(
            r#"
class C(Base, mixin.Other):
    def f(self, a, *args, **kwargs):
        g(a, *args, **kwargs)
        x //= 2
        x **= 2
        x |= mask
"#,
        );
    }

    #[test]
    fn degraded_prints_as_pass() {
        use crate::parse_module_recover;
        let m = parse_module_recover("x = 1\ny = = 2\n");
        let printed = print_module(&m);
        assert_eq!(printed, "x = 1\npass\n");
    }
}
