//! Source positions and diagnostic rendering.

use std::fmt;

/// A byte range within a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Creates a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `offset`.
    pub fn point(offset: usize) -> Self {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Spans serialize as `{"start", "end"}` byte offsets.
impl serde::Serialize for Span {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "start".to_string(),
                serde::Serialize::serialize(&self.start),
            ),
            ("end".to_string(), serde::Serialize::serialize(&self.end)),
        ])
    }
}

impl serde::Deserialize for Span {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = serde::__as_map(value, "Span")?;
        Ok(Span {
            start: serde::__field(map, "start", "Span")?,
            end: serde::__field(map, "end", "Span")?,
        })
    }
}

/// A value with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where the value came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Attaches a span to `node`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

/// A source file with precomputed line starts for position lookup.
#[derive(Debug, Clone)]
pub struct SourceFile {
    name: String,
    text: String,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Wraps source text under a display name.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// 1-based `(line, column)` of a byte offset. Columns count
    /// *characters*, not bytes, so multi-byte UTF-8 text reports the
    /// position an editor shows.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        let start = self.line_starts[line];
        let col = self.text[start..offset.min(self.text.len()).max(start)]
            .chars()
            .count();
        (line + 1, col + 1)
    }

    /// The text of 1-based line `line` (without the newline).
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&e| e.saturating_sub(1));
        &self.text[start..end.max(start)]
    }

    /// Renders a `file:line:col: message` diagnostic with a source snippet
    /// and caret underline. Caret position and width are measured in
    /// characters so they line up under multi-byte UTF-8 text.
    pub fn render_diagnostic(&self, span: Span, severity: &str, message: &str) -> String {
        let (line, col) = self.line_col(span.start);
        let line_str = self.line_text(line);
        let width = self
            .text
            .get(span.start..span.end.min(self.text.len()))
            .map_or(1, |s| s.chars().count())
            .max(1);
        let line_chars = line_str.chars().count();
        let carets = "^".repeat(width.min(line_chars.saturating_sub(col - 1).max(1)));
        format!(
            "{}:{}:{}: {}: {}\n    {}\n    {}{}",
            self.name,
            line,
            col,
            severity,
            message,
            line_str,
            " ".repeat(col - 1),
            carets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_lookup() {
        let f = SourceFile::new("t.py", "ab\ncd\nef");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(7), (3, 2));
    }

    #[test]
    fn line_text_extraction() {
        let f = SourceFile::new("t.py", "first\nsecond\n");
        assert_eq!(f.line_text(1), "first");
        assert_eq!(f.line_text(2), "second");
    }

    #[test]
    fn diagnostic_contains_caret() {
        let f = SourceFile::new("t.py", "x = foo()\n");
        let d = f.render_diagnostic(Span::new(4, 7), "error", "unknown name");
        assert!(d.contains("t.py:1:5"));
        assert!(d.contains("^^^"));
        assert!(d.contains("unknown name"));
    }

    #[test]
    fn line_col_counts_chars_not_bytes() {
        // "é" is two bytes; "日" is three. The column must count characters.
        let f = SourceFile::new("t.py", "é = 日本\nx = 1\n");
        // Offset of `=` on line 1: "é" (2 bytes) + " " → byte 3, char col 3.
        assert_eq!(f.line_col(3), (1, 3));
        // Offset of `本`: 2 + 1 + 1 + 1 + 3 = byte 8, char col 6.
        assert_eq!(f.line_col(8), (1, 6));
        // ASCII on line 2 is unaffected (line 2 starts at byte 12).
        assert_eq!(f.line_col(12), (2, 1));
    }

    #[test]
    fn caret_aligns_under_multibyte_text() {
        let f = SourceFile::new("t.py", "日本 = foo()\n");
        // Span over `foo` — bytes 9..12 ("日本" = 6 bytes, " = " = 3).
        let d = f.render_diagnostic(Span::new(9, 12), "error", "unknown name");
        // Char col of `foo` is 6 (日, 本, space, =, space → 5 chars before).
        assert!(d.contains("t.py:1:6"), "got: {d}");
        let caret_line = d.lines().last().unwrap();
        assert_eq!(caret_line, "    ".to_string() + &" ".repeat(5) + "^^^");
    }

    #[test]
    fn caret_width_counts_chars() {
        let f = SourceFile::new("t.py", "x = 日本\n");
        // Span over the two-char name `日本` (6 bytes) → two carets.
        let d = f.render_diagnostic(Span::new(4, 10), "error", "bad value");
        let caret_line = d.lines().last().unwrap();
        assert!(caret_line.ends_with("    ^^"), "got: {caret_line:?}");
    }

    #[test]
    fn span_union() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
    }
}
