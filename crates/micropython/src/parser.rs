//! Recursive-descent parser for the MicroPython subset.

use crate::ast::*;
use crate::lexer::{tokenize, tokenize_recover, LexError};
use crate::span::{Span, Spanned};
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::error::Error;
use std::fmt;

/// A syntax error with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            message: e.message,
        }
    }
}

/// Parses a module from source text.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered (lexical errors are
/// converted).
///
/// # Examples
///
/// ```
/// use micropython_parser::parse_module;
///
/// let m = parse_module("@sys\nclass Valve:\n    def test(self):\n        return [\"open\"]\n")?;
/// let valve = m.class("Valve").unwrap();
/// assert_eq!(valve.decorators[0].name(), Some("sys"));
/// assert_eq!(valve.methods().count(), 1);
/// # Ok::<(), micropython_parser::ParseError>(())
/// ```
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        recover: false,
    };
    let body = p.parse_stmts_until_eof()?;
    Ok(Module { body })
}

/// Parses a module in **recovery mode**: lexing and parsing are total.
/// Any region the grammar cannot fit into the calculus is replaced by a
/// spanned [`Stmt::Degraded`] node (which downstream analysis treats as
/// `skip`) instead of failing the whole file.
///
/// # Examples
///
/// ```
/// use micropython_parser::ast::Stmt;
/// use micropython_parser::parse_module_recover;
///
/// let m = parse_module_recover("x = 1\nglobal y !!\nz = 2\n");
/// assert_eq!(m.body.len(), 3);
/// assert!(matches!(m.body[1], Stmt::Degraded(_)));
/// ```
pub fn parse_module_recover(source: &str) -> Module {
    let tokens = tokenize_recover(source);
    let mut p = Parser {
        tokens,
        pos: 0,
        recover: true,
    };
    let body = p
        .parse_stmts_until_eof()
        .expect("recovery-mode parsing is total");
    Module { body }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// In recovery mode statements that fail to parse degrade to
    /// [`Stmt::Degraded`] instead of aborting.
    recover: bool,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek_kind(), TokenKind::Punct(q) if *q == p)
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(q) if *q == k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Token, ParseError> {
        if self.at_punct(p) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek_kind())))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<Token, ParseError> {
        if self.at_keyword(k) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{k}`, found {}", self.peek_kind())))
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        if self.at(&TokenKind::Newline) {
            self.bump();
            Ok(())
        } else if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("expected end of line, found {}", self.peek_kind())))
        }
    }

    fn expect_ident(&mut self) -> Result<Spanned<String>, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Spanned::new(name, t.span))
            }
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            span: self.peek().span,
            message: message.into(),
        }
    }

    // ----- statements ---------------------------------------------------

    fn parse_stmts_until_eof(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if self.at(&TokenKind::Eof) {
                return Ok(out);
            }
            out.push(self.parse_stmt_recovering()?);
        }
    }

    /// Parses one statement; in recovery mode a failed parse degrades to a
    /// spanned [`Stmt::Degraded`] covering the skipped region instead of
    /// propagating the error.
    fn parse_stmt_recovering(&mut self) -> Result<Stmt, ParseError> {
        if !self.recover {
            return self.parse_stmt();
        }
        let start_pos = self.pos;
        let start_span = self.peek().span;
        match self.parse_stmt() {
            Ok(s) => Ok(s),
            Err(e) => {
                // Guarantee progress even when the error is on the very
                // token we started at (e.g. a stray dedent).
                if self.pos == start_pos && !self.at(&TokenKind::Eof) {
                    self.bump();
                }
                self.skip_degraded();
                let end_span = if self.pos > start_pos {
                    self.tokens[self.pos - 1].span
                } else {
                    start_span
                };
                Ok(Stmt::Degraded(DegradedStmt {
                    reason: e.message,
                    span: start_span.to(end_span),
                }))
            }
        }
    }

    /// Skips past the remainder of a broken statement: to the end of the
    /// logical line, plus any indented block that follows it (so a broken
    /// compound-statement header swallows its whole suite).
    fn skip_degraded(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return,
                TokenKind::Indent => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Dedent => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                TokenKind::Newline => {
                    self.bump();
                    if depth == 0 && !self.at(&TokenKind::Indent) {
                        return;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Parses one statement (compound or a simple-statement line).
    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind() {
            TokenKind::Punct(Punct::At) => self.parse_decorated(),
            TokenKind::Keyword(Keyword::Class) => self.parse_class(Vec::new()).map(Stmt::ClassDef),
            TokenKind::Keyword(Keyword::Def) => self.parse_def(Vec::new()).map(Stmt::FuncDef),
            TokenKind::Keyword(Keyword::If) => self.parse_if(),
            TokenKind::Keyword(Keyword::Match) => self.parse_match(),
            TokenKind::Keyword(Keyword::While) => self.parse_while(),
            TokenKind::Keyword(Keyword::For) => self.parse_for(),
            TokenKind::Keyword(Keyword::Try) => self.parse_try(),
            TokenKind::Keyword(Keyword::With) => self.parse_with(),
            TokenKind::Keyword(Keyword::Async) => self.parse_async(Vec::new()),
            _ => {
                let stmt = self.parse_simple_stmt()?;
                // Allow `a; b` on one line — additional statements are
                // parsed by the caller via the same entry point when the
                // semicolon is present.
                if self.eat_punct(Punct::Semicolon) {
                    // Peek: a trailing semicolon before newline is allowed.
                    if !self.at(&TokenKind::Newline) && !self.at(&TokenKind::Eof) {
                        // Re-enter for the rest of the line; wrap in a
                        // synthetic sequence by returning the first and
                        // letting the caller loop. Simplest correct
                        // handling: parse the rest and splice.
                        // We parse remaining into a flat vec and return a
                        // synthetic If-free structure is overkill; instead
                        // we disallow multiple statements per line beyond
                        // the first to keep the AST simple.
                        return Err(self.error("multiple statements on one line are not supported"));
                    }
                }
                self.expect_newline()?;
                Ok(stmt)
            }
        }
    }

    fn parse_decorated(&mut self) -> Result<Stmt, ParseError> {
        let mut decorators = Vec::new();
        while self.at_punct(Punct::At) {
            let at = self.bump();
            let expr = self.parse_expr()?;
            let span = at.span.to(expr.span);
            decorators.push(Decorator { expr, span });
            self.expect_newline()?;
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
        }
        if self.at_keyword(Keyword::Class) {
            self.parse_class(decorators).map(Stmt::ClassDef)
        } else if self.at_keyword(Keyword::Def) {
            self.parse_def(decorators).map(Stmt::FuncDef)
        } else if self.at_keyword(Keyword::Async) {
            self.parse_async(decorators)
        } else {
            Err(self.error("decorators must be followed by `class` or `def`"))
        }
    }

    /// Parses an `async` compound statement. `async for`/`async with` are
    /// modeled exactly like their synchronous forms (the calculus has no
    /// concurrency); `async def` records the flag.
    fn parse_async(&mut self, decorators: Vec<Decorator>) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::Async)?;
        if self.at_keyword(Keyword::Def) {
            let mut f = self.parse_def(decorators)?;
            f.is_async = true;
            f.span = kw.span.to(f.span);
            Ok(Stmt::FuncDef(f))
        } else if self.at_keyword(Keyword::For) && decorators.is_empty() {
            self.parse_for()
        } else if self.at_keyword(Keyword::With) && decorators.is_empty() {
            self.parse_with()
        } else {
            Err(self.error("expected `def`, `for`, or `with` after `async`"))
        }
    }

    fn parse_try(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::Try)?;
        let body = self.parse_suite()?;
        let mut handlers = Vec::new();
        let mut orelse = None;
        let mut finally = None;
        let mut end = body.last().map_or(kw.span, Stmt::span);
        loop {
            // Clauses appear at the same indentation, possibly after blank
            // lines (mirrors `elif`/`else` handling in `parse_if`).
            let save = self.pos;
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if self.at_keyword(Keyword::Except) && finally.is_none() {
                let ekw = self.bump();
                let exc = if self.at_punct(Punct::Colon) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                let name = if self.at_keyword(Keyword::As) {
                    self.bump();
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                let hbody = self.parse_suite()?;
                end = hbody.last().map_or(ekw.span, Stmt::span);
                handlers.push(ExceptHandler {
                    exc,
                    name,
                    body: hbody,
                    span: ekw.span.to(end),
                });
            } else if self.at_keyword(Keyword::Else)
                && !handlers.is_empty()
                && orelse.is_none()
                && finally.is_none()
            {
                self.bump();
                let b = self.parse_suite()?;
                end = b.last().map_or(end, Stmt::span);
                orelse = Some(b);
            } else if self.at_keyword(Keyword::Finally) && finally.is_none() {
                self.bump();
                let b = self.parse_suite()?;
                end = b.last().map_or(end, Stmt::span);
                finally = Some(b);
            } else {
                self.pos = save;
                break;
            }
        }
        if handlers.is_empty() && finally.is_none() {
            return Err(self.error("`try` requires at least one `except` or a `finally`"));
        }
        Ok(Stmt::Try(TryStmt {
            body,
            handlers,
            orelse,
            finally,
            span: kw.span.to(end),
        }))
    }

    fn parse_with(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::With)?;
        let mut items = Vec::new();
        loop {
            let context = self.parse_expr()?;
            let target = if self.at_keyword(Keyword::As) {
                self.bump();
                Some(self.parse_postfix()?)
            } else {
                None
            };
            items.push(WithItem { context, target });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let body = self.parse_suite()?;
        let end = body.last().map_or(kw.span, Stmt::span);
        Ok(Stmt::With(WithStmt {
            items,
            body,
            span: kw.span.to(end),
        }))
    }

    fn parse_class(&mut self, decorators: Vec<Decorator>) -> Result<ClassDef, ParseError> {
        let kw = self.expect_keyword(Keyword::Class)?;
        let name = self.expect_ident()?;
        let mut bases = Vec::new();
        if self.eat_punct(Punct::LParen) {
            while !self.at_punct(Punct::RParen) {
                bases.push(self.parse_expr()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        let body = self.parse_suite()?;
        let end = body.last().map_or(name.span, Stmt::span);
        let start = decorators.first().map_or(kw.span, |d| d.span);
        Ok(ClassDef {
            decorators,
            name,
            bases,
            body,
            span: start.to(end),
        })
    }

    fn parse_def(&mut self, decorators: Vec<Decorator>) -> Result<FuncDef, ParseError> {
        let kw = self.expect_keyword(Keyword::Def)?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        while !self.at_punct(Punct::RParen) {
            // Positional-only marker `/` and keyword-only marker `*` are
            // parsed and discarded; `*args`/`**kwargs` record the name.
            if self.eat_punct(Punct::Slash) {
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
                continue;
            }
            let starred = self.eat_punct(Punct::DoubleStar) || self.eat_punct(Punct::Star);
            if starred && (self.at_punct(Punct::Comma) || self.at_punct(Punct::RParen)) {
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
                continue;
            }
            let p = self.expect_ident()?;
            // Optional annotation / default (parsed and discarded).
            if self.eat_punct(Punct::Colon) {
                let _ = self.parse_expr()?;
            }
            if self.eat_punct(Punct::Assign) {
                let _ = self.parse_expr()?;
            }
            params.push(p);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        if self.eat_punct(Punct::Arrow) {
            let _ = self.parse_expr()?;
        }
        let body = self.parse_suite()?;
        let end = body.last().map_or(name.span, Stmt::span);
        let start = decorators.first().map_or(kw.span, |d| d.span);
        Ok(FuncDef {
            decorators,
            name,
            params,
            body,
            is_async: false,
            span: start.to(end),
        })
    }

    /// Parses `: suite` — either an indented block or a simple statement on
    /// the same line.
    fn parse_suite(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct(Punct::Colon)?;
        if self.at(&TokenKind::Newline) {
            self.bump();
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if !self.at(&TokenKind::Indent) {
                return Err(self.error("expected an indented block"));
            }
            self.bump();
            let mut out = Vec::new();
            loop {
                while self.at(&TokenKind::Newline) {
                    self.bump();
                }
                if self.at(&TokenKind::Dedent) {
                    self.bump();
                    return Ok(out);
                }
                if self.at(&TokenKind::Eof) {
                    return Ok(out);
                }
                out.push(self.parse_stmt_recovering()?);
            }
        } else {
            // Simple suite on the same line.
            let stmt = self.parse_simple_stmt()?;
            self.expect_newline()?;
            Ok(vec![stmt])
        }
    }

    /// Parses a simple (one-line, non-compound) statement, not consuming
    /// the trailing newline.
    fn parse_simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind() {
            TokenKind::Keyword(Keyword::Return) => {
                let kw = self.bump();
                if self.at(&TokenKind::Newline) || self.at(&TokenKind::Eof) {
                    return Ok(Stmt::Return(ReturnStmt {
                        value: None,
                        span: kw.span,
                    }));
                }
                let value = self.parse_testlist()?;
                let span = kw.span.to(value.span);
                Ok(Stmt::Return(ReturnStmt {
                    value: Some(value),
                    span,
                }))
            }
            TokenKind::Keyword(Keyword::Pass) => Ok(Stmt::Pass(self.bump().span)),
            TokenKind::Keyword(Keyword::Break) => Ok(Stmt::Break(self.bump().span)),
            TokenKind::Keyword(Keyword::Continue) => Ok(Stmt::Continue(self.bump().span)),
            TokenKind::Keyword(Keyword::Raise) => {
                let kw = self.bump();
                let mut span = kw.span;
                let exc = if self.at(&TokenKind::Newline)
                    || self.at(&TokenKind::Eof)
                    || self.at_punct(Punct::Semicolon)
                {
                    None
                } else {
                    let e = self.parse_expr()?;
                    span = span.to(e.span);
                    Some(e)
                };
                let cause = if exc.is_some() && self.at_keyword(Keyword::From) {
                    self.bump();
                    let c = self.parse_expr()?;
                    span = span.to(c.span);
                    Some(c)
                } else {
                    None
                };
                Ok(Stmt::Raise(RaiseStmt { exc, cause, span }))
            }
            TokenKind::Keyword(Keyword::Import) => {
                let kw = self.bump();
                let mut names = vec![self.parse_dotted_name()?];
                while self.eat_punct(Punct::Comma) {
                    names.push(self.parse_dotted_name()?);
                }
                let span = kw.span.to(self.peek().span);
                Ok(Stmt::Import(ImportStmt { names, span }))
            }
            TokenKind::Keyword(Keyword::From) => {
                let kw = self.bump();
                let module = self.parse_dotted_name()?;
                self.expect_keyword(Keyword::Import)?;
                let mut names = vec![format!("{module}.*")];
                if self.at_punct(Punct::Star) {
                    self.bump();
                } else {
                    names.clear();
                    loop {
                        let n = self.expect_ident()?;
                        if self.at_keyword(Keyword::As) {
                            self.bump();
                            let _ = self.expect_ident()?;
                        }
                        names.push(format!("{module}.{}", n.node));
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                let span = kw.span.to(self.peek().span);
                Ok(Stmt::Import(ImportStmt { names, span }))
            }
            _ => {
                let expr = self.parse_testlist()?;
                if self.at_punct(Punct::Assign) {
                    self.bump();
                    let value = self.parse_testlist()?;
                    let span = expr.span.to(value.span);
                    Ok(Stmt::Assign(AssignStmt {
                        target: expr,
                        value,
                        aug_op: None,
                        span,
                    }))
                } else if let TokenKind::Punct(
                    p @ (Punct::PlusAssign
                    | Punct::MinusAssign
                    | Punct::StarAssign
                    | Punct::SlashAssign
                    | Punct::DoubleSlashAssign
                    | Punct::PercentAssign
                    | Punct::DoubleStarAssign
                    | Punct::PipeAssign
                    | Punct::AmpAssign
                    | Punct::CaretAssign
                    | Punct::LShiftAssign
                    | Punct::RShiftAssign),
                ) = *self.peek_kind()
                {
                    let op = match p {
                        Punct::PlusAssign => "+",
                        Punct::MinusAssign => "-",
                        Punct::StarAssign => "*",
                        Punct::SlashAssign => "/",
                        Punct::DoubleSlashAssign => "//",
                        Punct::PercentAssign => "%",
                        Punct::DoubleStarAssign => "**",
                        Punct::PipeAssign => "|",
                        Punct::AmpAssign => "&",
                        Punct::CaretAssign => "^",
                        Punct::LShiftAssign => "<<",
                        _ => ">>",
                    };
                    self.bump();
                    let value = self.parse_testlist()?;
                    let span = expr.span.to(value.span);
                    Ok(Stmt::Assign(AssignStmt {
                        target: expr,
                        value,
                        aug_op: Some(op.to_owned()),
                        span,
                    }))
                } else {
                    let span = expr.span;
                    Ok(Stmt::Expr(ExprStmt { expr, span }))
                }
            }
        }
    }

    fn parse_dotted_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.expect_ident()?.node;
        while self.at_punct(Punct::Dot) {
            self.bump();
            name.push('.');
            name.push_str(&self.expect_ident()?.node);
        }
        Ok(name)
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::If)?;
        let mut branches = Vec::new();
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        branches.push((cond, body));
        let mut orelse = None;
        let mut end = kw.span;
        loop {
            // `elif` / `else` appear at the same indentation, possibly after
            // blank lines.
            let save = self.pos;
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if self.at_keyword(Keyword::Elif) {
                self.bump();
                let cond = self.parse_expr()?;
                let body = self.parse_suite()?;
                end = body.last().map_or(end, Stmt::span);
                branches.push((cond, body));
            } else if self.at_keyword(Keyword::Else) {
                self.bump();
                let body = self.parse_suite()?;
                end = body.last().map_or(end, Stmt::span);
                orelse = Some(body);
                break;
            } else {
                self.pos = save;
                break;
            }
        }
        Ok(Stmt::If(IfStmt {
            branches,
            orelse,
            span: kw.span.to(end),
        }))
    }

    fn parse_match(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::Match)?;
        let subject = self.parse_expr()?;
        self.expect_punct(Punct::Colon)?;
        self.expect_newline()?;
        while self.at(&TokenKind::Newline) {
            self.bump();
        }
        if !self.at(&TokenKind::Indent) {
            return Err(self.error("expected an indented block of `case` arms"));
        }
        self.bump();
        let mut cases = Vec::new();
        loop {
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if self.at(&TokenKind::Dedent) || self.at(&TokenKind::Eof) {
                if self.at(&TokenKind::Dedent) {
                    self.bump();
                }
                break;
            }
            let case_kw = self.expect_keyword(Keyword::Case)?;
            let pattern = self.parse_pattern()?;
            let body = self.parse_suite()?;
            let end = body.last().map_or(case_kw.span, Stmt::span);
            cases.push(MatchCase {
                pattern,
                body,
                span: case_kw.span.to(end),
            });
        }
        if cases.is_empty() {
            return Err(self.error("`match` requires at least one `case`"));
        }
        let end = cases.last().map_or(kw.span, |c| c.span);
        Ok(Stmt::Match(MatchStmt {
            subject,
            cases,
            span: kw.span.to(end),
        }))
    }

    fn parse_pattern(&mut self) -> Result<Pattern, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Punct(Punct::LBracket) => {
                let open = self.bump();
                let mut items = Vec::new();
                while !self.at_punct(Punct::RBracket) {
                    items.push(self.parse_pattern()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RBracket)?;
                Ok(Pattern::List(items, open.span.to(close.span)))
            }
            TokenKind::Punct(Punct::LParen) => {
                let open = self.bump();
                let mut items = Vec::new();
                while !self.at_punct(Punct::RParen) {
                    items.push(self.parse_pattern()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RParen)?;
                if items.len() == 1 {
                    Ok(items.into_iter().next().expect("one item"))
                } else {
                    Ok(Pattern::Tuple(items, open.span.to(close.span)))
                }
            }
            TokenKind::Str(s) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Str(s), t.span)))
            }
            TokenKind::Int(v) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Int(v), t.span)))
            }
            TokenKind::Float(v) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Float(v), t.span)))
            }
            TokenKind::Keyword(Keyword::True) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Bool(true), t.span)))
            }
            TokenKind::Keyword(Keyword::False) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Bool(false), t.span)))
            }
            TokenKind::Keyword(Keyword::None) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::NoneLit, t.span)))
            }
            TokenKind::Ident(name) => {
                let t = self.bump();
                if name == "_" {
                    Ok(Pattern::Wildcard(t.span))
                } else {
                    Ok(Pattern::Capture(Spanned::new(name, t.span)))
                }
            }
            other => Err(self.error(format!("expected a pattern, found {other}"))),
        }
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::While)?;
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        let end = body.last().map_or(kw.span, Stmt::span);
        Ok(Stmt::While(WhileStmt {
            cond,
            body,
            span: kw.span.to(end),
        }))
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::For)?;
        let target = self.parse_target_list()?;
        self.expect_keyword(Keyword::In)?;
        let iter = self.parse_expr()?;
        let body = self.parse_suite()?;
        let end = body.last().map_or(kw.span, Stmt::span);
        Ok(Stmt::For(ForStmt {
            target,
            iter,
            body,
            span: kw.span.to(end),
        }))
    }

    /// Parses a `for`-loop target: one or more postfix expressions separated
    /// by commas (no comparison operators, so `in` stays a keyword here).
    fn parse_target_list(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_postfix()?;
        if !self.at_punct(Punct::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_punct(Punct::Comma) {
            if self.at_keyword(Keyword::In) {
                break;
            }
            items.push(self.parse_postfix()?);
        }
        let span = items
            .first()
            .expect("nonempty")
            .span
            .to(items.last().expect("nonempty").span);
        Ok(Expr::new(ExprKind::Tuple(items), span))
    }

    // ----- expressions --------------------------------------------------

    /// `testlist ::= expr (',' expr)*` — a bare comma builds a tuple
    /// (`return ["close"], 2` from Table 2).
    fn parse_testlist(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_expr()?;
        if !self.at_punct(Punct::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_punct(Punct::Comma) {
            // Trailing comma before newline/closer.
            if self.at(&TokenKind::Newline)
                || self.at(&TokenKind::Eof)
                || self.at_punct(Punct::RParen)
                || self.at_punct(Punct::RBracket)
            {
                break;
            }
            items.push(self.parse_expr()?);
        }
        let span = items
            .first()
            .expect("nonempty")
            .span
            .to(items.last().expect("nonempty").span);
        Ok(Expr::new(ExprKind::Tuple(items), span))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword(Keyword::Lambda) {
            return self.parse_lambda();
        }
        self.parse_or()
    }

    fn parse_lambda(&mut self) -> Result<Expr, ParseError> {
        let kw = self.expect_keyword(Keyword::Lambda)?;
        let mut params = Vec::new();
        while !self.at_punct(Punct::Colon) {
            let _ = self.eat_punct(Punct::DoubleStar) || self.eat_punct(Punct::Star);
            let p = self.expect_ident()?;
            if self.eat_punct(Punct::Assign) {
                let _ = self.parse_expr()?;
            }
            params.push(p);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Colon)?;
        let body = self.parse_expr()?;
        let span = kw.span.to(body.span);
        Ok(Expr::new(
            ExprKind::Lambda {
                params,
                body: Box::new(body),
            },
            span,
        ))
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.at_keyword(Keyword::Or) {
            self.bump();
            let right = self.parse_and()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: "or".into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.at_keyword(Keyword::And) {
            self.bump();
            let right = self.parse_not()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: "and".into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword(Keyword::Not) {
            let kw = self.bump();
            let operand = self.parse_not()?;
            let span = kw.span.to(operand.span);
            return Ok(Expr::new(
                ExprKind::UnaryOp {
                    op: "not".into(),
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_bitor()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Eq) => "==",
                TokenKind::Punct(Punct::Ne) => "!=",
                TokenKind::Punct(Punct::Lt) => "<",
                TokenKind::Punct(Punct::Gt) => ">",
                TokenKind::Punct(Punct::Le) => "<=",
                TokenKind::Punct(Punct::Ge) => ">=",
                TokenKind::Keyword(Keyword::In) => "in",
                TokenKind::Keyword(Keyword::Is) => {
                    // `is` / `is not`.
                    self.bump();
                    let op = if self.at_keyword(Keyword::Not) {
                        self.bump();
                        "is not"
                    } else {
                        "is"
                    };
                    let right = self.parse_bitor()?;
                    let span = left.span.to(right.span);
                    left = Expr::new(
                        ExprKind::BinOp {
                            op: op.into(),
                            left: Box::new(left),
                            right: Box::new(right),
                        },
                        span,
                    );
                    continue;
                }
                TokenKind::Keyword(Keyword::Not) => {
                    // `not in` (prefix `not` is handled above comparison).
                    self.bump();
                    self.expect_keyword(Keyword::In)?;
                    let right = self.parse_bitor()?;
                    let span = left.span.to(right.span);
                    left = Expr::new(
                        ExprKind::BinOp {
                            op: "not in".into(),
                            left: Box::new(left),
                            right: Box::new(right),
                        },
                        span,
                    );
                    continue;
                }
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_bitor()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_bitor(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_arith()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Pipe) => "|",
                TokenKind::Punct(Punct::Amp) => "&",
                TokenKind::Punct(Punct::Caret) => "^",
                TokenKind::Punct(Punct::LShift) => "<<",
                TokenKind::Punct(Punct::RShift) => ">>",
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_arith()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_arith(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Plus) => "+",
                TokenKind::Punct(Punct::Minus) => "-",
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_term()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Star) => "*",
                TokenKind::Punct(Punct::Slash) => "/",
                TokenKind::Punct(Punct::DoubleSlash) => "//",
                TokenKind::Punct(Punct::Percent) => "%",
                TokenKind::Punct(Punct::DoubleStar) => "**",
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword(Keyword::Await) {
            let kw = self.bump();
            let operand = self.parse_unary()?;
            let span = kw.span.to(operand.span);
            return Ok(Expr::new(ExprKind::Await(Box::new(operand)), span));
        }
        let op = match self.peek_kind() {
            TokenKind::Punct(Punct::Minus) => "-",
            TokenKind::Punct(Punct::Plus) => "+",
            TokenKind::Punct(Punct::Tilde) => "~",
            _ => return self.parse_postfix(),
        };
        let t = self.bump();
        let operand = self.parse_unary()?;
        let span = t.span.to(operand.span);
        Ok(Expr::new(
            ExprKind::UnaryOp {
                op: op.into(),
                operand: Box::new(operand),
            },
            span,
        ))
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            if self.at_punct(Punct::Dot) {
                self.bump();
                let attr = self.expect_ident()?;
                let span = expr.span.to(attr.span);
                expr = Expr::new(
                    ExprKind::Attribute {
                        value: Box::new(expr),
                        attr,
                    },
                    span,
                );
            } else if self.at_punct(Punct::LParen) {
                self.bump();
                let mut args = Vec::new();
                while !self.at_punct(Punct::RParen) {
                    // `*args` / `**kwargs` unpacking.
                    if self.at_punct(Punct::Star) || self.at_punct(Punct::DoubleStar) {
                        let stars = if self.at_punct(Punct::DoubleStar) {
                            2
                        } else {
                            1
                        };
                        let t = self.bump();
                        let value = self.parse_expr()?;
                        let span = t.span.to(value.span);
                        args.push(Expr::new(
                            ExprKind::Starred {
                                stars,
                                value: Box::new(value),
                            },
                            span,
                        ));
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                        continue;
                    }
                    // Keyword arguments are parsed and flattened to their
                    // value (the analysis ignores arguments anyway).
                    let arg = self.parse_expr()?;
                    // `f(x for y in z)` — a bare generator expression as
                    // the sole argument.
                    if args.is_empty()
                        && (self.at_keyword(Keyword::For) || self.at_keyword(Keyword::Async))
                    {
                        let clauses = self.parse_comp_clauses()?;
                        let end = clauses
                            .last()
                            .map(|c| c.ifs.last().map(|e| e.span).unwrap_or(c.iter.span))
                            .unwrap_or(arg.span);
                        let span = arg.span.to(end);
                        args.push(Expr::new(
                            ExprKind::Comp {
                                kind: CompKind::Generator,
                                element: Box::new(arg),
                                value: None,
                                clauses,
                            },
                            span,
                        ));
                        break;
                    }
                    if self.at_punct(Punct::Assign) {
                        self.bump();
                        let value = self.parse_expr()?;
                        args.push(value);
                        let _ = arg;
                    } else {
                        args.push(arg);
                    }
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RParen)?;
                let span = expr.span.to(close.span);
                expr = Expr::new(
                    ExprKind::Call {
                        func: Box::new(expr),
                        args,
                    },
                    span,
                );
            } else if self.at_punct(Punct::LBracket) {
                self.bump();
                let index = self.parse_expr()?;
                let close = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.to(close.span);
                expr = Expr::new(
                    ExprKind::Subscript {
                        value: Box::new(expr),
                        index: Box::new(index),
                    },
                    span,
                );
            } else {
                return Ok(expr);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Name(name), t.span))
            }
            TokenKind::Int(v) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Int(v), t.span))
            }
            TokenKind::Float(v) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Float(v), t.span))
            }
            TokenKind::Str(s) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Str(s), t.span))
            }
            TokenKind::FStr(s) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::FString(s), t.span))
            }
            TokenKind::Keyword(Keyword::Lambda) => self.parse_lambda(),
            TokenKind::Keyword(Keyword::True) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Bool(true), t.span))
            }
            TokenKind::Keyword(Keyword::False) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Bool(false), t.span))
            }
            TokenKind::Keyword(Keyword::None) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::NoneLit, t.span))
            }
            TokenKind::Punct(Punct::LBracket) => {
                let open = self.bump();
                let mut items = Vec::new();
                while !self.at_punct(Punct::RBracket) {
                    items.push(self.parse_expr()?);
                    // `[x for y in z]` — list comprehension.
                    if items.len() == 1
                        && (self.at_keyword(Keyword::For) || self.at_keyword(Keyword::Async))
                    {
                        let element = items.pop().expect("one element");
                        let clauses = self.parse_comp_clauses()?;
                        let close = self.expect_punct(Punct::RBracket)?;
                        return Ok(Expr::new(
                            ExprKind::Comp {
                                kind: CompKind::List,
                                element: Box::new(element),
                                value: None,
                                clauses,
                            },
                            open.span.to(close.span),
                        ));
                    }
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RBracket)?;
                Ok(Expr::new(ExprKind::List(items), open.span.to(close.span)))
            }
            TokenKind::Punct(Punct::LBrace) => {
                let open = self.bump();
                // `{}` is an empty dict; `{a: b}` a dict; `{a, b}` a set.
                if self.at_punct(Punct::RBrace) {
                    let close = self.bump();
                    return Ok(Expr::new(
                        ExprKind::Dict(Vec::new()),
                        open.span.to(close.span),
                    ));
                }
                let first = self.parse_expr()?;
                if self.eat_punct(Punct::Colon) {
                    let value = self.parse_expr()?;
                    // `{k: v for x in y}` — dict comprehension.
                    if self.at_keyword(Keyword::For) || self.at_keyword(Keyword::Async) {
                        let clauses = self.parse_comp_clauses()?;
                        let close = self.expect_punct(Punct::RBrace)?;
                        return Ok(Expr::new(
                            ExprKind::Comp {
                                kind: CompKind::Dict,
                                element: Box::new(first),
                                value: Some(Box::new(value)),
                                clauses,
                            },
                            open.span.to(close.span),
                        ));
                    }
                    let mut pairs = vec![(first, value)];
                    while self.eat_punct(Punct::Comma) {
                        if self.at_punct(Punct::RBrace) {
                            break;
                        }
                        let k = self.parse_expr()?;
                        self.expect_punct(Punct::Colon)?;
                        let v = self.parse_expr()?;
                        pairs.push((k, v));
                    }
                    let close = self.expect_punct(Punct::RBrace)?;
                    Ok(Expr::new(ExprKind::Dict(pairs), open.span.to(close.span)))
                } else {
                    // `{x for y in z}` — set comprehension.
                    if self.at_keyword(Keyword::For) || self.at_keyword(Keyword::Async) {
                        let clauses = self.parse_comp_clauses()?;
                        let close = self.expect_punct(Punct::RBrace)?;
                        return Ok(Expr::new(
                            ExprKind::Comp {
                                kind: CompKind::Set,
                                element: Box::new(first),
                                value: None,
                                clauses,
                            },
                            open.span.to(close.span),
                        ));
                    }
                    let mut items = vec![first];
                    while self.eat_punct(Punct::Comma) {
                        if self.at_punct(Punct::RBrace) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    let close = self.expect_punct(Punct::RBrace)?;
                    Ok(Expr::new(ExprKind::Set(items), open.span.to(close.span)))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                let open = self.bump();
                if self.at_punct(Punct::RParen) {
                    let close = self.bump();
                    return Ok(Expr::new(
                        ExprKind::Tuple(Vec::new()),
                        open.span.to(close.span),
                    ));
                }
                let first = self.parse_expr()?;
                if self.at_punct(Punct::Comma) {
                    let mut items = vec![first];
                    while self.eat_punct(Punct::Comma) {
                        if self.at_punct(Punct::RParen) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    let close = self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(ExprKind::Tuple(items), open.span.to(close.span)))
                } else if self.at_keyword(Keyword::For) || self.at_keyword(Keyword::Async) {
                    // `(x for y in z)` — generator expression.
                    let clauses = self.parse_comp_clauses()?;
                    let close = self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(
                        ExprKind::Comp {
                            kind: CompKind::Generator,
                            element: Box::new(first),
                            value: None,
                            clauses,
                        },
                        open.span.to(close.span),
                    ))
                } else {
                    self.expect_punct(Punct::RParen)?;
                    Ok(first)
                }
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    /// Parses the `for target in iter [if cond]*` clause chain of a
    /// comprehension (the leading element is already consumed).
    fn parse_comp_clauses(&mut self) -> Result<Vec<CompClause>, ParseError> {
        let mut clauses = Vec::new();
        loop {
            let is_async = if self.at_keyword(Keyword::Async) {
                self.bump();
                true
            } else {
                false
            };
            if !self.at_keyword(Keyword::For) {
                if is_async {
                    return Err(self.error("expected `for` after `async` in a comprehension"));
                }
                break;
            }
            self.bump();
            let target = self.parse_target_list()?;
            self.expect_keyword(Keyword::In)?;
            let iter = self.parse_or()?;
            let mut ifs = Vec::new();
            while self.at_keyword(Keyword::If) {
                self.bump();
                ifs.push(self.parse_or()?);
            }
            clauses.push(CompClause {
                target,
                iter,
                ifs,
                is_async,
            });
        }
        if clauses.is_empty() {
            return Err(self.error("a comprehension requires at least one `for` clause"));
        }
        Ok(clauses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valve_listing() {
        // Listing 2.1 of the paper, verbatim.
        let src = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
"#;
        let m = parse_module(src).unwrap();
        let valve = m.class("Valve").unwrap();
        assert_eq!(valve.decorators.len(), 1);
        assert_eq!(valve.decorators[0].name(), Some("sys"));
        let names: Vec<&str> = valve.methods().map(|f| f.name.node.as_str()).collect();
        assert_eq!(names, vec!["__init__", "test", "open", "close", "clean"]);
        let test = valve.method("test").unwrap();
        assert_eq!(test.decorators[0].name(), Some("op_initial"));
        // The body of test is a single if with else.
        assert_eq!(test.body.len(), 1);
        match &test.body[0] {
            Stmt::If(ifs) => {
                assert_eq!(ifs.branches.len(), 1);
                assert!(ifs.orelse.is_some());
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_badsector_listing() {
        // Listing 2.2 of the paper, verbatim.
        let src = r#"
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#;
        let m = parse_module(src).unwrap();
        let bs = m.class("BadSector").unwrap();
        assert_eq!(bs.decorators.len(), 2);
        assert_eq!(bs.decorators[0].name(), Some("claim"));
        assert_eq!(bs.decorators[1].name(), Some("sys"));
        // @sys(["a","b"]) argument list.
        let sys_args = bs.decorators[1].args();
        assert_eq!(sys_args.len(), 1);
        assert_eq!(sys_args[0].as_string_list().unwrap(), vec!["a", "b"]);
        let open_a = bs.method("open_a").unwrap();
        match &open_a.body[0] {
            Stmt::Match(m) => {
                assert_eq!(m.cases.len(), 2);
                match &m.cases[0].pattern {
                    Pattern::List(items, _) => {
                        assert_eq!(items.len(), 1);
                        assert!(matches!(&items[0], Pattern::Literal(e)
                            if matches!(&e.kind, ExprKind::Str(s) if s == "open")));
                    }
                    other => panic!("expected list pattern, got {other:?}"),
                }
                // The subject is self.a.test().
                assert_eq!(
                    m.subject.as_self_method_call().unwrap(),
                    (vec!["a"], "test")
                );
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn parses_tuple_returns_of_table2() {
        let src = r#"
def f(self):
    return ["close"], 2

def g(self):
    return ["close"], True

def h(self):
    return ["open", "clean"], 2
"#;
        let m = parse_module(src).unwrap();
        for stmt in &m.body {
            let Stmt::FuncDef(f) = stmt else {
                panic!("expected def")
            };
            let Stmt::Return(r) = &f.body[0] else {
                panic!("expected return")
            };
            let v = r.value.as_ref().unwrap();
            match &v.kind {
                ExprKind::Tuple(items) => {
                    assert_eq!(items.len(), 2);
                    assert!(items[0].as_string_list().is_some());
                }
                other => panic!("expected tuple, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_loops() {
        let src = r#"
def f(self):
    for i in range(10):
        self.a.step()
    while self.ready():
        self.b.poll()
"#;
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&f.body[0], Stmt::For(_)));
        assert!(matches!(&f.body[1], Stmt::While(_)));
    }

    #[test]
    fn parses_elif_chain() {
        let src = r#"
def f(self):
    if a:
        pass
    elif b:
        pass
    elif c:
        pass
    else:
        pass
"#;
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        let Stmt::If(ifs) = &f.body[0] else { panic!() };
        assert_eq!(ifs.branches.len(), 3);
        assert!(ifs.orelse.is_some());
    }

    #[test]
    fn if_without_else_at_end_of_block() {
        let src = "def f(self):\n    if a:\n        pass\n\ndef g(self):\n    pass\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn error_on_missing_block() {
        let err = parse_module("def f(self):\nx = 1\n").unwrap_err();
        assert!(err.message.contains("indented block"));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_module("def f(:\n    pass\n").unwrap_err();
        assert!(err.span.start > 0);
    }

    #[test]
    fn wildcard_pattern() {
        let src = r#"
def f(self):
    match self.a.test():
        case ["open"]:
            pass
        case _:
            pass
"#;
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        let Stmt::Match(ms) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(ms.cases[1].pattern, Pattern::Wildcard(_)));
    }

    #[test]
    fn simple_suite_on_same_line() {
        let m = parse_module("def f(self): return []\n").unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&f.body[0], Stmt::Return(_)));
    }

    #[test]
    fn imports_are_recorded() {
        let m = parse_module("from machine import Pin\nimport time\n").unwrap();
        let Stmt::Import(i1) = &m.body[0] else {
            panic!()
        };
        assert_eq!(i1.names, vec!["machine.Pin"]);
        let Stmt::Import(i2) = &m.body[1] else {
            panic!()
        };
        assert_eq!(i2.names, vec!["time"]);
    }

    #[test]
    fn augmented_assignment() {
        let m = parse_module("x += 1\n").unwrap();
        let Stmt::Assign(a) = &m.body[0] else {
            panic!()
        };
        assert_eq!(a.aug_op.as_deref(), Some("+"));
    }

    #[test]
    fn is_and_not_in_comparisons() {
        let m = parse_module(
            "a = x is None
b = x is not None
c = y not in items
",
        )
        .unwrap();
        let ops: Vec<String> = m
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Assign(a) => match &a.value.kind {
                    ExprKind::BinOp { op, .. } => Some(op.clone()),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["is", "is not", "not in"]);
    }

    #[test]
    fn dict_and_set_literals() {
        let m = parse_module("d = {\"a\": 1, \"b\": 2}\ne = {}\ns = {1, 2, 3}\n").unwrap();
        let Stmt::Assign(d) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&d.value.kind, ExprKind::Dict(pairs) if pairs.len() == 2));
        let Stmt::Assign(e) = &m.body[1] else {
            panic!()
        };
        assert!(matches!(&e.value.kind, ExprKind::Dict(pairs) if pairs.is_empty()));
        let Stmt::Assign(st) = &m.body[2] else {
            panic!()
        };
        assert!(matches!(&st.value.kind, ExprKind::Set(items) if items.len() == 3));
    }

    #[test]
    fn keyword_arguments_flattened() {
        let m = parse_module("f(x, mode=3)\n").unwrap();
        let Stmt::Expr(e) = &m.body[0] else { panic!() };
        let ExprKind::Call { args, .. } = &e.expr.kind else {
            panic!()
        };
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_try_except_finally() {
        let src = r#"
def f(self):
    try:
        self.a.open()
    except OSError as e:
        self.a.clean()
    except:
        pass
    else:
        self.log()
    finally:
        self.a.close()
"#;
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        let Stmt::Try(t) = &f.body[0] else { panic!() };
        assert_eq!(t.handlers.len(), 2);
        assert!(t.handlers[0].exc.is_some());
        assert_eq!(t.handlers[0].name.as_ref().unwrap().node, "e");
        assert!(t.handlers[1].exc.is_none());
        assert!(t.orelse.is_some());
        assert!(t.finally.is_some());
    }

    #[test]
    fn try_without_handlers_or_finally_errors() {
        let err = parse_module("try:\n    pass\n").unwrap_err();
        assert!(err.message.contains("except"));
    }

    #[test]
    fn parses_with_statement() {
        let src = "with open(\"f\") as fh, lock:\n    fh.write(data)\n";
        let m = parse_module(src).unwrap();
        let Stmt::With(w) = &m.body[0] else { panic!() };
        assert_eq!(w.items.len(), 2);
        assert!(w.items[0].target.is_some());
        assert!(w.items[1].target.is_none());
    }

    #[test]
    fn parses_raise_forms() {
        let m = parse_module("raise\nraise ValueError(\"x\")\nraise E() from cause\n").unwrap();
        let Stmt::Raise(r0) = &m.body[0] else {
            panic!()
        };
        assert!(r0.exc.is_none());
        let Stmt::Raise(r1) = &m.body[1] else {
            panic!()
        };
        assert!(r1.exc.is_some() && r1.cause.is_none());
        let Stmt::Raise(r2) = &m.body[2] else {
            panic!()
        };
        assert!(r2.cause.is_some());
    }

    #[test]
    fn parses_async_def_and_await() {
        let src = "@task\nasync def run(self):\n    await self.a.open()\n";
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        assert!(f.is_async);
        assert_eq!(f.decorators.len(), 1);
        let Stmt::Expr(e) = &f.body[0] else { panic!() };
        let ExprKind::Await(inner) = &e.expr.kind else {
            panic!("expected await, got {:?}", e.expr.kind)
        };
        assert!(inner.as_self_method_call().is_some());
    }

    #[test]
    fn parses_async_for_and_with_as_sync() {
        let src = "async def f(self):\n    async for x in src:\n        pass\n    \
                   async with lock:\n        pass\n";
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&f.body[0], Stmt::For(_)));
        assert!(matches!(&f.body[1], Stmt::With(_)));
    }

    #[test]
    fn parses_lambda() {
        let m = parse_module("f = lambda x, y=2: x + y\ng = lambda: 0\n").unwrap();
        let Stmt::Assign(a) = &m.body[0] else {
            panic!()
        };
        let ExprKind::Lambda { params, .. } = &a.value.kind else {
            panic!()
        };
        assert_eq!(params.len(), 2);
        let Stmt::Assign(b) = &m.body[1] else {
            panic!()
        };
        assert!(matches!(&b.value.kind, ExprKind::Lambda { params, .. } if params.is_empty()));
    }

    #[test]
    fn parses_comprehensions() {
        let m = parse_module(
            "a = [x * 2 for x in items if x > 0]\n\
             b = {k: v for k, v in pairs}\n\
             c = {x for x in s}\n\
             d = (y for y in gen)\n",
        )
        .unwrap();
        let kinds: Vec<CompKind> = m
            .body
            .iter()
            .map(|s| {
                let Stmt::Assign(a) = s else { panic!() };
                let ExprKind::Comp { kind, .. } = &a.value.kind else {
                    panic!("expected comp, got {:?}", a.value.kind)
                };
                *kind
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                CompKind::List,
                CompKind::Dict,
                CompKind::Set,
                CompKind::Generator
            ]
        );
        let Stmt::Assign(a) = &m.body[0] else {
            panic!()
        };
        let ExprKind::Comp { clauses, .. } = &a.value.kind else {
            panic!()
        };
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].ifs.len(), 1);
    }

    #[test]
    fn parses_bare_generator_argument() {
        let m = parse_module("total = sum(r * 2 for r in rates)\n").unwrap();
        let Stmt::Assign(a) = &m.body[0] else {
            panic!()
        };
        let ExprKind::Call { args, .. } = &a.value.kind else {
            panic!("expected call, got {:?}", a.value.kind)
        };
        assert_eq!(args.len(), 1);
        let ExprKind::Comp { kind, clauses, .. } = &args[0].kind else {
            panic!("expected generator arg, got {:?}", args[0].kind)
        };
        assert_eq!(*kind, CompKind::Generator);
        assert_eq!(clauses.len(), 1);
    }

    #[test]
    fn parses_fstrings() {
        let m = parse_module("msg = f\"pin {n} high\"\n").unwrap();
        let Stmt::Assign(a) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&a.value.kind, ExprKind::FString(s) if s == "pin {n} high"));
    }

    #[test]
    fn parses_star_call_arguments() {
        let m = parse_module("f(a, *rest, **kw)\n").unwrap();
        let Stmt::Expr(e) = &m.body[0] else { panic!() };
        let ExprKind::Call { args, .. } = &e.expr.kind else {
            panic!()
        };
        assert_eq!(args.len(), 3);
        assert!(matches!(&args[1].kind, ExprKind::Starred { stars: 1, .. }));
        assert!(matches!(&args[2].kind, ExprKind::Starred { stars: 2, .. }));
    }

    #[test]
    fn parses_star_params() {
        let m = parse_module("def f(self, a, *args, **kwargs):\n    pass\n").unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        let names: Vec<&str> = f.params.iter().map(|p| p.node.as_str()).collect();
        assert_eq!(names, vec!["self", "a", "args", "kwargs"]);
    }

    #[test]
    fn parses_extended_augmented_assignment() {
        let src = "a //= 2\nb %= 3\nc **= 2\nd |= 1\ne &= 1\nf ^= 1\ng <<= 1\nh >>= 1\n";
        let m = parse_module(src).unwrap();
        let ops: Vec<&str> = m
            .body
            .iter()
            .map(|s| {
                let Stmt::Assign(a) = s else { panic!() };
                a.aug_op.as_deref().unwrap()
            })
            .collect();
        assert_eq!(ops, vec!["//", "%", "**", "|", "&", "^", "<<", ">>"]);
    }

    #[test]
    fn recovery_degrades_bad_statement_to_skip() {
        let m = parse_module_recover("x = 1\ny = = 2\nz = 3\n");
        assert_eq!(m.body.len(), 3);
        let Stmt::Degraded(d) = &m.body[1] else {
            panic!("expected degraded, got {:?}", m.body[1])
        };
        assert!(d.span.start < d.span.end);
        assert!(matches!(&m.body[2], Stmt::Assign(_)));
    }

    #[test]
    fn recovery_swallows_broken_compound_suite() {
        // The broken `def` header degrades together with its whole body;
        // the class after it still parses. (An unbalanced bracket would
        // instead join the rest of the file into one logical line, like
        // CPython's tokenizer — so the break here is a missing paren list.)
        let m = parse_module_recover(
            "def broken:\n    x = 1\n    y = 2\n\n@sys\nclass C:\n    def m(self):\n        pass\n",
        );
        assert!(matches!(&m.body[0], Stmt::Degraded(_)));
        assert!(m.class("C").is_some());
    }

    #[test]
    fn recovery_keeps_good_methods_of_a_class() {
        let src = "@sys\nclass C:\n    def good(self):\n        return [\"x\"]\n\n    \
                   def bad(self):\n        x = = 1\n        return [\"x\"]\n";
        let m = parse_module_recover(src);
        let c = m.class("C").unwrap();
        assert_eq!(c.methods().count(), 2);
        let bad = c.method("bad").unwrap();
        assert!(bad.body.iter().any(|s| matches!(s, Stmt::Degraded(_))));
        assert!(bad.body.iter().any(|s| matches!(s, Stmt::Return(_))));
    }

    #[test]
    fn recovery_is_total_on_garbage() {
        let m = parse_module_recover("?? !! \u{1F600} ||| def ( class\n    @@@\n");
        for s in &m.body {
            if let Stmt::Degraded(d) = s {
                assert!(d.span.start <= d.span.end);
            }
        }
    }

    #[test]
    fn strict_mode_still_rejects_unknown_syntax() {
        assert!(parse_module("y = = 2\n").is_err());
        assert!(parse_module("def broken(:\n    pass\n").is_err());
    }
}
