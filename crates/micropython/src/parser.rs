//! Recursive-descent parser for the MicroPython subset.

use crate::ast::*;
use crate::lexer::{tokenize, LexError};
use crate::span::{Span, Spanned};
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::error::Error;
use std::fmt;

/// A syntax error with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            message: e.message,
        }
    }
}

/// Parses a module from source text.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered (lexical errors are
/// converted).
///
/// # Examples
///
/// ```
/// use micropython_parser::parse_module;
///
/// let m = parse_module("@sys\nclass Valve:\n    def test(self):\n        return [\"open\"]\n")?;
/// let valve = m.class("Valve").unwrap();
/// assert_eq!(valve.decorators[0].name(), Some("sys"));
/// assert_eq!(valve.methods().count(), 1);
/// # Ok::<(), micropython_parser::ParseError>(())
/// ```
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let body = p.parse_stmts_until_eof()?;
    Ok(Module { body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek_kind(), TokenKind::Punct(q) if *q == p)
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(q) if *q == k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Token, ParseError> {
        if self.at_punct(p) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek_kind())))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<Token, ParseError> {
        if self.at_keyword(k) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{k}`, found {}", self.peek_kind())))
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        if self.at(&TokenKind::Newline) {
            self.bump();
            Ok(())
        } else if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("expected end of line, found {}", self.peek_kind())))
        }
    }

    fn expect_ident(&mut self) -> Result<Spanned<String>, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Spanned::new(name, t.span))
            }
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            span: self.peek().span,
            message: message.into(),
        }
    }

    // ----- statements ---------------------------------------------------

    fn parse_stmts_until_eof(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if self.at(&TokenKind::Eof) {
                return Ok(out);
            }
            out.push(self.parse_stmt()?);
        }
    }

    /// Parses one statement (compound or a simple-statement line).
    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind() {
            TokenKind::Punct(Punct::At) => self.parse_decorated(),
            TokenKind::Keyword(Keyword::Class) => self.parse_class(Vec::new()).map(Stmt::ClassDef),
            TokenKind::Keyword(Keyword::Def) => self.parse_def(Vec::new()).map(Stmt::FuncDef),
            TokenKind::Keyword(Keyword::If) => self.parse_if(),
            TokenKind::Keyword(Keyword::Match) => self.parse_match(),
            TokenKind::Keyword(Keyword::While) => self.parse_while(),
            TokenKind::Keyword(Keyword::For) => self.parse_for(),
            _ => {
                let stmt = self.parse_simple_stmt()?;
                // Allow `a; b` on one line — additional statements are
                // parsed by the caller via the same entry point when the
                // semicolon is present.
                if self.eat_punct(Punct::Semicolon) {
                    // Peek: a trailing semicolon before newline is allowed.
                    if !self.at(&TokenKind::Newline) && !self.at(&TokenKind::Eof) {
                        // Re-enter for the rest of the line; wrap in a
                        // synthetic sequence by returning the first and
                        // letting the caller loop. Simplest correct
                        // handling: parse the rest and splice.
                        // We parse remaining into a flat vec and return a
                        // synthetic If-free structure is overkill; instead
                        // we disallow multiple statements per line beyond
                        // the first to keep the AST simple.
                        return Err(self.error("multiple statements on one line are not supported"));
                    }
                }
                self.expect_newline()?;
                Ok(stmt)
            }
        }
    }

    fn parse_decorated(&mut self) -> Result<Stmt, ParseError> {
        let mut decorators = Vec::new();
        while self.at_punct(Punct::At) {
            let at = self.bump();
            let expr = self.parse_expr()?;
            let span = at.span.to(expr.span);
            decorators.push(Decorator { expr, span });
            self.expect_newline()?;
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
        }
        if self.at_keyword(Keyword::Class) {
            self.parse_class(decorators).map(Stmt::ClassDef)
        } else if self.at_keyword(Keyword::Def) {
            self.parse_def(decorators).map(Stmt::FuncDef)
        } else {
            Err(self.error("decorators must be followed by `class` or `def`"))
        }
    }

    fn parse_class(&mut self, decorators: Vec<Decorator>) -> Result<ClassDef, ParseError> {
        let kw = self.expect_keyword(Keyword::Class)?;
        let name = self.expect_ident()?;
        let mut bases = Vec::new();
        if self.eat_punct(Punct::LParen) {
            while !self.at_punct(Punct::RParen) {
                bases.push(self.parse_expr()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        let body = self.parse_suite()?;
        let end = body.last().map_or(name.span, Stmt::span);
        let start = decorators.first().map_or(kw.span, |d| d.span);
        Ok(ClassDef {
            decorators,
            name,
            bases,
            body,
            span: start.to(end),
        })
    }

    fn parse_def(&mut self, decorators: Vec<Decorator>) -> Result<FuncDef, ParseError> {
        let kw = self.expect_keyword(Keyword::Def)?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        while !self.at_punct(Punct::RParen) {
            let p = self.expect_ident()?;
            // Optional annotation / default (parsed and discarded).
            if self.eat_punct(Punct::Colon) {
                let _ = self.parse_expr()?;
            }
            if self.eat_punct(Punct::Assign) {
                let _ = self.parse_expr()?;
            }
            params.push(p);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        if self.eat_punct(Punct::Arrow) {
            let _ = self.parse_expr()?;
        }
        let body = self.parse_suite()?;
        let end = body.last().map_or(name.span, Stmt::span);
        let start = decorators.first().map_or(kw.span, |d| d.span);
        Ok(FuncDef {
            decorators,
            name,
            params,
            body,
            span: start.to(end),
        })
    }

    /// Parses `: suite` — either an indented block or a simple statement on
    /// the same line.
    fn parse_suite(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct(Punct::Colon)?;
        if self.at(&TokenKind::Newline) {
            self.bump();
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if !self.at(&TokenKind::Indent) {
                return Err(self.error("expected an indented block"));
            }
            self.bump();
            let mut out = Vec::new();
            loop {
                while self.at(&TokenKind::Newline) {
                    self.bump();
                }
                if self.at(&TokenKind::Dedent) {
                    self.bump();
                    return Ok(out);
                }
                if self.at(&TokenKind::Eof) {
                    return Ok(out);
                }
                out.push(self.parse_stmt()?);
            }
        } else {
            // Simple suite on the same line.
            let stmt = self.parse_simple_stmt()?;
            self.expect_newline()?;
            Ok(vec![stmt])
        }
    }

    /// Parses a simple (one-line, non-compound) statement, not consuming
    /// the trailing newline.
    fn parse_simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind() {
            TokenKind::Keyword(Keyword::Return) => {
                let kw = self.bump();
                if self.at(&TokenKind::Newline) || self.at(&TokenKind::Eof) {
                    return Ok(Stmt::Return(ReturnStmt {
                        value: None,
                        span: kw.span,
                    }));
                }
                let value = self.parse_testlist()?;
                let span = kw.span.to(value.span);
                Ok(Stmt::Return(ReturnStmt {
                    value: Some(value),
                    span,
                }))
            }
            TokenKind::Keyword(Keyword::Pass) => Ok(Stmt::Pass(self.bump().span)),
            TokenKind::Keyword(Keyword::Break) => Ok(Stmt::Break(self.bump().span)),
            TokenKind::Keyword(Keyword::Continue) => Ok(Stmt::Continue(self.bump().span)),
            TokenKind::Keyword(Keyword::Import) => {
                let kw = self.bump();
                let mut names = vec![self.parse_dotted_name()?];
                while self.eat_punct(Punct::Comma) {
                    names.push(self.parse_dotted_name()?);
                }
                let span = kw.span.to(self.peek().span);
                Ok(Stmt::Import(ImportStmt { names, span }))
            }
            TokenKind::Keyword(Keyword::From) => {
                let kw = self.bump();
                let module = self.parse_dotted_name()?;
                self.expect_keyword(Keyword::Import)?;
                let mut names = vec![format!("{module}.*")];
                if self.at_punct(Punct::Star) {
                    self.bump();
                } else {
                    names.clear();
                    loop {
                        let n = self.expect_ident()?;
                        if self.at_keyword(Keyword::As) {
                            self.bump();
                            let _ = self.expect_ident()?;
                        }
                        names.push(format!("{module}.{}", n.node));
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                let span = kw.span.to(self.peek().span);
                Ok(Stmt::Import(ImportStmt { names, span }))
            }
            _ => {
                let expr = self.parse_testlist()?;
                if self.at_punct(Punct::Assign) {
                    self.bump();
                    let value = self.parse_testlist()?;
                    let span = expr.span.to(value.span);
                    Ok(Stmt::Assign(AssignStmt {
                        target: expr,
                        value,
                        aug_op: None,
                        span,
                    }))
                } else if let TokenKind::Punct(
                    p @ (Punct::PlusAssign
                    | Punct::MinusAssign
                    | Punct::StarAssign
                    | Punct::SlashAssign),
                ) = *self.peek_kind()
                {
                    let op = match p {
                        Punct::PlusAssign => "+",
                        Punct::MinusAssign => "-",
                        Punct::StarAssign => "*",
                        _ => "/",
                    };
                    self.bump();
                    let value = self.parse_testlist()?;
                    let span = expr.span.to(value.span);
                    Ok(Stmt::Assign(AssignStmt {
                        target: expr,
                        value,
                        aug_op: Some(op.to_owned()),
                        span,
                    }))
                } else {
                    let span = expr.span;
                    Ok(Stmt::Expr(ExprStmt { expr, span }))
                }
            }
        }
    }

    fn parse_dotted_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.expect_ident()?.node;
        while self.at_punct(Punct::Dot) {
            self.bump();
            name.push('.');
            name.push_str(&self.expect_ident()?.node);
        }
        Ok(name)
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::If)?;
        let mut branches = Vec::new();
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        branches.push((cond, body));
        let mut orelse = None;
        let mut end = kw.span;
        loop {
            // `elif` / `else` appear at the same indentation, possibly after
            // blank lines.
            let save = self.pos;
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if self.at_keyword(Keyword::Elif) {
                self.bump();
                let cond = self.parse_expr()?;
                let body = self.parse_suite()?;
                end = body.last().map_or(end, Stmt::span);
                branches.push((cond, body));
            } else if self.at_keyword(Keyword::Else) {
                self.bump();
                let body = self.parse_suite()?;
                end = body.last().map_or(end, Stmt::span);
                orelse = Some(body);
                break;
            } else {
                self.pos = save;
                break;
            }
        }
        Ok(Stmt::If(IfStmt {
            branches,
            orelse,
            span: kw.span.to(end),
        }))
    }

    fn parse_match(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::Match)?;
        let subject = self.parse_expr()?;
        self.expect_punct(Punct::Colon)?;
        self.expect_newline()?;
        while self.at(&TokenKind::Newline) {
            self.bump();
        }
        if !self.at(&TokenKind::Indent) {
            return Err(self.error("expected an indented block of `case` arms"));
        }
        self.bump();
        let mut cases = Vec::new();
        loop {
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
            if self.at(&TokenKind::Dedent) || self.at(&TokenKind::Eof) {
                if self.at(&TokenKind::Dedent) {
                    self.bump();
                }
                break;
            }
            let case_kw = self.expect_keyword(Keyword::Case)?;
            let pattern = self.parse_pattern()?;
            let body = self.parse_suite()?;
            let end = body.last().map_or(case_kw.span, Stmt::span);
            cases.push(MatchCase {
                pattern,
                body,
                span: case_kw.span.to(end),
            });
        }
        if cases.is_empty() {
            return Err(self.error("`match` requires at least one `case`"));
        }
        let end = cases.last().map_or(kw.span, |c| c.span);
        Ok(Stmt::Match(MatchStmt {
            subject,
            cases,
            span: kw.span.to(end),
        }))
    }

    fn parse_pattern(&mut self) -> Result<Pattern, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Punct(Punct::LBracket) => {
                let open = self.bump();
                let mut items = Vec::new();
                while !self.at_punct(Punct::RBracket) {
                    items.push(self.parse_pattern()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RBracket)?;
                Ok(Pattern::List(items, open.span.to(close.span)))
            }
            TokenKind::Punct(Punct::LParen) => {
                let open = self.bump();
                let mut items = Vec::new();
                while !self.at_punct(Punct::RParen) {
                    items.push(self.parse_pattern()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RParen)?;
                if items.len() == 1 {
                    Ok(items.into_iter().next().expect("one item"))
                } else {
                    Ok(Pattern::Tuple(items, open.span.to(close.span)))
                }
            }
            TokenKind::Str(s) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Str(s), t.span)))
            }
            TokenKind::Int(v) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Int(v), t.span)))
            }
            TokenKind::Float(v) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Float(v), t.span)))
            }
            TokenKind::Keyword(Keyword::True) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Bool(true), t.span)))
            }
            TokenKind::Keyword(Keyword::False) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::Bool(false), t.span)))
            }
            TokenKind::Keyword(Keyword::None) => {
                let t = self.bump();
                Ok(Pattern::Literal(Expr::new(ExprKind::NoneLit, t.span)))
            }
            TokenKind::Ident(name) => {
                let t = self.bump();
                if name == "_" {
                    Ok(Pattern::Wildcard(t.span))
                } else {
                    Ok(Pattern::Capture(Spanned::new(name, t.span)))
                }
            }
            other => Err(self.error(format!("expected a pattern, found {other}"))),
        }
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::While)?;
        let cond = self.parse_expr()?;
        let body = self.parse_suite()?;
        let end = body.last().map_or(kw.span, Stmt::span);
        Ok(Stmt::While(WhileStmt {
            cond,
            body,
            span: kw.span.to(end),
        }))
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect_keyword(Keyword::For)?;
        let target = self.parse_target_list()?;
        self.expect_keyword(Keyword::In)?;
        let iter = self.parse_expr()?;
        let body = self.parse_suite()?;
        let end = body.last().map_or(kw.span, Stmt::span);
        Ok(Stmt::For(ForStmt {
            target,
            iter,
            body,
            span: kw.span.to(end),
        }))
    }

    /// Parses a `for`-loop target: one or more postfix expressions separated
    /// by commas (no comparison operators, so `in` stays a keyword here).
    fn parse_target_list(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_postfix()?;
        if !self.at_punct(Punct::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_punct(Punct::Comma) {
            if self.at_keyword(Keyword::In) {
                break;
            }
            items.push(self.parse_postfix()?);
        }
        let span = items
            .first()
            .expect("nonempty")
            .span
            .to(items.last().expect("nonempty").span);
        Ok(Expr::new(ExprKind::Tuple(items), span))
    }

    // ----- expressions --------------------------------------------------

    /// `testlist ::= expr (',' expr)*` — a bare comma builds a tuple
    /// (`return ["close"], 2` from Table 2).
    fn parse_testlist(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_expr()?;
        if !self.at_punct(Punct::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_punct(Punct::Comma) {
            // Trailing comma before newline/closer.
            if self.at(&TokenKind::Newline)
                || self.at(&TokenKind::Eof)
                || self.at_punct(Punct::RParen)
                || self.at_punct(Punct::RBracket)
            {
                break;
            }
            items.push(self.parse_expr()?);
        }
        let span = items
            .first()
            .expect("nonempty")
            .span
            .to(items.last().expect("nonempty").span);
        Ok(Expr::new(ExprKind::Tuple(items), span))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.at_keyword(Keyword::Or) {
            self.bump();
            let right = self.parse_and()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: "or".into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.at_keyword(Keyword::And) {
            self.bump();
            let right = self.parse_not()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: "and".into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword(Keyword::Not) {
            let kw = self.bump();
            let operand = self.parse_not()?;
            let span = kw.span.to(operand.span);
            return Ok(Expr::new(
                ExprKind::UnaryOp {
                    op: "not".into(),
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_bitor()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Eq) => "==",
                TokenKind::Punct(Punct::Ne) => "!=",
                TokenKind::Punct(Punct::Lt) => "<",
                TokenKind::Punct(Punct::Gt) => ">",
                TokenKind::Punct(Punct::Le) => "<=",
                TokenKind::Punct(Punct::Ge) => ">=",
                TokenKind::Keyword(Keyword::In) => "in",
                TokenKind::Keyword(Keyword::Is) => {
                    // `is` / `is not`.
                    self.bump();
                    let op = if self.at_keyword(Keyword::Not) {
                        self.bump();
                        "is not"
                    } else {
                        "is"
                    };
                    let right = self.parse_bitor()?;
                    let span = left.span.to(right.span);
                    left = Expr::new(
                        ExprKind::BinOp {
                            op: op.into(),
                            left: Box::new(left),
                            right: Box::new(right),
                        },
                        span,
                    );
                    continue;
                }
                TokenKind::Keyword(Keyword::Not) => {
                    // `not in` (prefix `not` is handled above comparison).
                    self.bump();
                    self.expect_keyword(Keyword::In)?;
                    let right = self.parse_bitor()?;
                    let span = left.span.to(right.span);
                    left = Expr::new(
                        ExprKind::BinOp {
                            op: "not in".into(),
                            left: Box::new(left),
                            right: Box::new(right),
                        },
                        span,
                    );
                    continue;
                }
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_bitor()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_bitor(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_arith()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Pipe) => "|",
                TokenKind::Punct(Punct::Amp) => "&",
                TokenKind::Punct(Punct::Caret) => "^",
                TokenKind::Punct(Punct::LShift) => "<<",
                TokenKind::Punct(Punct::RShift) => ">>",
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_arith()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_arith(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Plus) => "+",
                TokenKind::Punct(Punct::Minus) => "-",
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_term()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Punct(Punct::Star) => "*",
                TokenKind::Punct(Punct::Slash) => "/",
                TokenKind::Punct(Punct::DoubleSlash) => "//",
                TokenKind::Punct(Punct::Percent) => "%",
                TokenKind::Punct(Punct::DoubleStar) => "**",
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::BinOp {
                    op: op.into(),
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek_kind() {
            TokenKind::Punct(Punct::Minus) => "-",
            TokenKind::Punct(Punct::Plus) => "+",
            TokenKind::Punct(Punct::Tilde) => "~",
            _ => return self.parse_postfix(),
        };
        let t = self.bump();
        let operand = self.parse_unary()?;
        let span = t.span.to(operand.span);
        Ok(Expr::new(
            ExprKind::UnaryOp {
                op: op.into(),
                operand: Box::new(operand),
            },
            span,
        ))
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            if self.at_punct(Punct::Dot) {
                self.bump();
                let attr = self.expect_ident()?;
                let span = expr.span.to(attr.span);
                expr = Expr::new(
                    ExprKind::Attribute {
                        value: Box::new(expr),
                        attr,
                    },
                    span,
                );
            } else if self.at_punct(Punct::LParen) {
                self.bump();
                let mut args = Vec::new();
                while !self.at_punct(Punct::RParen) {
                    // Keyword arguments are parsed and flattened to their
                    // value (the analysis ignores arguments anyway).
                    let arg = self.parse_expr()?;
                    if self.at_punct(Punct::Assign) {
                        self.bump();
                        let value = self.parse_expr()?;
                        args.push(value);
                        let _ = arg;
                    } else {
                        args.push(arg);
                    }
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RParen)?;
                let span = expr.span.to(close.span);
                expr = Expr::new(
                    ExprKind::Call {
                        func: Box::new(expr),
                        args,
                    },
                    span,
                );
            } else if self.at_punct(Punct::LBracket) {
                self.bump();
                let index = self.parse_expr()?;
                let close = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.to(close.span);
                expr = Expr::new(
                    ExprKind::Subscript {
                        value: Box::new(expr),
                        index: Box::new(index),
                    },
                    span,
                );
            } else {
                return Ok(expr);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Name(name), t.span))
            }
            TokenKind::Int(v) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Int(v), t.span))
            }
            TokenKind::Float(v) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Float(v), t.span))
            }
            TokenKind::Str(s) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Str(s), t.span))
            }
            TokenKind::Keyword(Keyword::True) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Bool(true), t.span))
            }
            TokenKind::Keyword(Keyword::False) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::Bool(false), t.span))
            }
            TokenKind::Keyword(Keyword::None) => {
                let t = self.bump();
                Ok(Expr::new(ExprKind::NoneLit, t.span))
            }
            TokenKind::Punct(Punct::LBracket) => {
                let open = self.bump();
                let mut items = Vec::new();
                while !self.at_punct(Punct::RBracket) {
                    items.push(self.parse_expr()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                let close = self.expect_punct(Punct::RBracket)?;
                Ok(Expr::new(ExprKind::List(items), open.span.to(close.span)))
            }
            TokenKind::Punct(Punct::LBrace) => {
                let open = self.bump();
                // `{}` is an empty dict; `{a: b}` a dict; `{a, b}` a set.
                if self.at_punct(Punct::RBrace) {
                    let close = self.bump();
                    return Ok(Expr::new(
                        ExprKind::Dict(Vec::new()),
                        open.span.to(close.span),
                    ));
                }
                let first = self.parse_expr()?;
                if self.eat_punct(Punct::Colon) {
                    let value = self.parse_expr()?;
                    let mut pairs = vec![(first, value)];
                    while self.eat_punct(Punct::Comma) {
                        if self.at_punct(Punct::RBrace) {
                            break;
                        }
                        let k = self.parse_expr()?;
                        self.expect_punct(Punct::Colon)?;
                        let v = self.parse_expr()?;
                        pairs.push((k, v));
                    }
                    let close = self.expect_punct(Punct::RBrace)?;
                    Ok(Expr::new(ExprKind::Dict(pairs), open.span.to(close.span)))
                } else {
                    let mut items = vec![first];
                    while self.eat_punct(Punct::Comma) {
                        if self.at_punct(Punct::RBrace) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    let close = self.expect_punct(Punct::RBrace)?;
                    Ok(Expr::new(ExprKind::Set(items), open.span.to(close.span)))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                let open = self.bump();
                if self.at_punct(Punct::RParen) {
                    let close = self.bump();
                    return Ok(Expr::new(
                        ExprKind::Tuple(Vec::new()),
                        open.span.to(close.span),
                    ));
                }
                let first = self.parse_expr()?;
                if self.at_punct(Punct::Comma) {
                    let mut items = vec![first];
                    while self.eat_punct(Punct::Comma) {
                        if self.at_punct(Punct::RParen) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    let close = self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(ExprKind::Tuple(items), open.span.to(close.span)))
                } else {
                    self.expect_punct(Punct::RParen)?;
                    Ok(first)
                }
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valve_listing() {
        // Listing 2.1 of the paper, verbatim.
        let src = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
"#;
        let m = parse_module(src).unwrap();
        let valve = m.class("Valve").unwrap();
        assert_eq!(valve.decorators.len(), 1);
        assert_eq!(valve.decorators[0].name(), Some("sys"));
        let names: Vec<&str> = valve.methods().map(|f| f.name.node.as_str()).collect();
        assert_eq!(names, vec!["__init__", "test", "open", "close", "clean"]);
        let test = valve.method("test").unwrap();
        assert_eq!(test.decorators[0].name(), Some("op_initial"));
        // The body of test is a single if with else.
        assert_eq!(test.body.len(), 1);
        match &test.body[0] {
            Stmt::If(ifs) => {
                assert_eq!(ifs.branches.len(), 1);
                assert!(ifs.orelse.is_some());
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_badsector_listing() {
        // Listing 2.2 of the paper, verbatim.
        let src = r#"
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#;
        let m = parse_module(src).unwrap();
        let bs = m.class("BadSector").unwrap();
        assert_eq!(bs.decorators.len(), 2);
        assert_eq!(bs.decorators[0].name(), Some("claim"));
        assert_eq!(bs.decorators[1].name(), Some("sys"));
        // @sys(["a","b"]) argument list.
        let sys_args = bs.decorators[1].args();
        assert_eq!(sys_args.len(), 1);
        assert_eq!(sys_args[0].as_string_list().unwrap(), vec!["a", "b"]);
        let open_a = bs.method("open_a").unwrap();
        match &open_a.body[0] {
            Stmt::Match(m) => {
                assert_eq!(m.cases.len(), 2);
                match &m.cases[0].pattern {
                    Pattern::List(items, _) => {
                        assert_eq!(items.len(), 1);
                        assert!(matches!(&items[0], Pattern::Literal(e)
                            if matches!(&e.kind, ExprKind::Str(s) if s == "open")));
                    }
                    other => panic!("expected list pattern, got {other:?}"),
                }
                // The subject is self.a.test().
                assert_eq!(
                    m.subject.as_self_method_call().unwrap(),
                    (vec!["a"], "test")
                );
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn parses_tuple_returns_of_table2() {
        let src = r#"
def f(self):
    return ["close"], 2

def g(self):
    return ["close"], True

def h(self):
    return ["open", "clean"], 2
"#;
        let m = parse_module(src).unwrap();
        for stmt in &m.body {
            let Stmt::FuncDef(f) = stmt else {
                panic!("expected def")
            };
            let Stmt::Return(r) = &f.body[0] else {
                panic!("expected return")
            };
            let v = r.value.as_ref().unwrap();
            match &v.kind {
                ExprKind::Tuple(items) => {
                    assert_eq!(items.len(), 2);
                    assert!(items[0].as_string_list().is_some());
                }
                other => panic!("expected tuple, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_loops() {
        let src = r#"
def f(self):
    for i in range(10):
        self.a.step()
    while self.ready():
        self.b.poll()
"#;
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&f.body[0], Stmt::For(_)));
        assert!(matches!(&f.body[1], Stmt::While(_)));
    }

    #[test]
    fn parses_elif_chain() {
        let src = r#"
def f(self):
    if a:
        pass
    elif b:
        pass
    elif c:
        pass
    else:
        pass
"#;
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        let Stmt::If(ifs) = &f.body[0] else { panic!() };
        assert_eq!(ifs.branches.len(), 3);
        assert!(ifs.orelse.is_some());
    }

    #[test]
    fn if_without_else_at_end_of_block() {
        let src = "def f(self):\n    if a:\n        pass\n\ndef g(self):\n    pass\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn error_on_missing_block() {
        let err = parse_module("def f(self):\nx = 1\n").unwrap_err();
        assert!(err.message.contains("indented block"));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_module("def f(:\n    pass\n").unwrap_err();
        assert!(err.span.start > 0);
    }

    #[test]
    fn wildcard_pattern() {
        let src = r#"
def f(self):
    match self.a.test():
        case ["open"]:
            pass
        case _:
            pass
"#;
        let m = parse_module(src).unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        let Stmt::Match(ms) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(ms.cases[1].pattern, Pattern::Wildcard(_)));
    }

    #[test]
    fn simple_suite_on_same_line() {
        let m = parse_module("def f(self): return []\n").unwrap();
        let Stmt::FuncDef(f) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&f.body[0], Stmt::Return(_)));
    }

    #[test]
    fn imports_are_recorded() {
        let m = parse_module("from machine import Pin\nimport time\n").unwrap();
        let Stmt::Import(i1) = &m.body[0] else {
            panic!()
        };
        assert_eq!(i1.names, vec!["machine.Pin"]);
        let Stmt::Import(i2) = &m.body[1] else {
            panic!()
        };
        assert_eq!(i2.names, vec!["time"]);
    }

    #[test]
    fn augmented_assignment() {
        let m = parse_module("x += 1\n").unwrap();
        let Stmt::Assign(a) = &m.body[0] else {
            panic!()
        };
        assert_eq!(a.aug_op.as_deref(), Some("+"));
    }

    #[test]
    fn is_and_not_in_comparisons() {
        let m = parse_module(
            "a = x is None
b = x is not None
c = y not in items
",
        )
        .unwrap();
        let ops: Vec<String> = m
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Assign(a) => match &a.value.kind {
                    ExprKind::BinOp { op, .. } => Some(op.clone()),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["is", "is not", "not in"]);
    }

    #[test]
    fn dict_and_set_literals() {
        let m = parse_module("d = {\"a\": 1, \"b\": 2}\ne = {}\ns = {1, 2, 3}\n").unwrap();
        let Stmt::Assign(d) = &m.body[0] else {
            panic!()
        };
        assert!(matches!(&d.value.kind, ExprKind::Dict(pairs) if pairs.len() == 2));
        let Stmt::Assign(e) = &m.body[1] else {
            panic!()
        };
        assert!(matches!(&e.value.kind, ExprKind::Dict(pairs) if pairs.is_empty()));
        let Stmt::Assign(st) = &m.body[2] else {
            panic!()
        };
        assert!(matches!(&st.value.kind, ExprKind::Set(items) if items.len() == 3));
    }

    #[test]
    fn keyword_arguments_flattened() {
        let m = parse_module("f(x, mode=3)\n").unwrap();
        let Stmt::Expr(e) = &m.body[0] else { panic!() };
        let ExprKind::Call { args, .. } = &e.expr.kind else {
            panic!()
        };
        assert_eq!(args.len(), 2);
    }
}
