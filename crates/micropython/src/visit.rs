//! AST traversal utilities.
//!
//! [`Visitor`] walks every statement and expression of a module in source
//! order with overridable hooks; [`walk_exprs`] and [`walk_stmts`] are the
//! closure-based shortcuts most analyses need (Shelley's extraction uses
//! dedicated recursion for precise evaluation order, but downstream tools —
//! linters, metrics, call-graph extractors — build on these).

use crate::ast::*;

/// A read-only AST visitor with default deep traversal.
///
/// Override the hooks you need; call the `walk_*` free functions from an
/// override to keep descending.
pub trait Visitor {
    /// Called for every statement, before descending.
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }

    /// Called for every expression, before descending.
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }

    /// Called for every class definition, before its body.
    fn visit_class(&mut self, class: &ClassDef) {
        walk_class(self, class);
    }

    /// Called for every function definition, before its body.
    fn visit_func(&mut self, func: &FuncDef) {
        walk_func(self, func);
    }

    /// Called for every match pattern.
    fn visit_pattern(&mut self, pattern: &Pattern) {
        walk_pattern(self, pattern);
    }
}

/// Visits every statement of a module.
pub fn walk_module<V: Visitor + ?Sized>(v: &mut V, module: &Module) {
    for stmt in &module.body {
        v.visit_stmt(stmt);
    }
}

/// Default traversal of one statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    match stmt {
        Stmt::ClassDef(c) => v.visit_class(c),
        Stmt::FuncDef(f) => v.visit_func(f),
        Stmt::Return(r) => {
            if let Some(value) = &r.value {
                v.visit_expr(value);
            }
        }
        Stmt::If(ifs) => {
            for (cond, body) in &ifs.branches {
                v.visit_expr(cond);
                for s in body {
                    v.visit_stmt(s);
                }
            }
            if let Some(body) = &ifs.orelse {
                for s in body {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::Match(ms) => {
            v.visit_expr(&ms.subject);
            for case in &ms.cases {
                v.visit_pattern(&case.pattern);
                for s in &case.body {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::While(ws) => {
            v.visit_expr(&ws.cond);
            for s in &ws.body {
                v.visit_stmt(s);
            }
        }
        Stmt::For(fs) => {
            v.visit_expr(&fs.target);
            v.visit_expr(&fs.iter);
            for s in &fs.body {
                v.visit_stmt(s);
            }
        }
        Stmt::Assign(a) => {
            v.visit_expr(&a.target);
            v.visit_expr(&a.value);
        }
        Stmt::Expr(e) => v.visit_expr(&e.expr),
        Stmt::Try(t) => {
            for s in &t.body {
                v.visit_stmt(s);
            }
            for h in &t.handlers {
                if let Some(exc) = &h.exc {
                    v.visit_expr(exc);
                }
                for s in &h.body {
                    v.visit_stmt(s);
                }
            }
            for body in t.orelse.iter().chain(t.finally.iter()) {
                for s in body {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::With(w) => {
            for item in &w.items {
                v.visit_expr(&item.context);
                if let Some(t) = &item.target {
                    v.visit_expr(t);
                }
            }
            for s in &w.body {
                v.visit_stmt(s);
            }
        }
        Stmt::Raise(r) => {
            for e in r.exc.iter().chain(r.cause.iter()) {
                v.visit_expr(e);
            }
        }
        Stmt::Pass(_)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Import(_)
        | Stmt::Degraded(_) => {}
    }
}

/// Default traversal of a class definition.
pub fn walk_class<V: Visitor + ?Sized>(v: &mut V, class: &ClassDef) {
    for dec in &class.decorators {
        v.visit_expr(&dec.expr);
    }
    for base in &class.bases {
        v.visit_expr(base);
    }
    for stmt in &class.body {
        v.visit_stmt(stmt);
    }
}

/// Default traversal of a function definition.
pub fn walk_func<V: Visitor + ?Sized>(v: &mut V, func: &FuncDef) {
    for dec in &func.decorators {
        v.visit_expr(&dec.expr);
    }
    for stmt in &func.body {
        v.visit_stmt(stmt);
    }
}

/// Default traversal of one expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match &expr.kind {
        ExprKind::Attribute { value, .. } => v.visit_expr(value),
        ExprKind::Call { func, args } => {
            v.visit_expr(func);
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Subscript { value, index } => {
            v.visit_expr(value);
            v.visit_expr(index);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) | ExprKind::Set(items) => {
            for i in items {
                v.visit_expr(i);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, val) in pairs {
                v.visit_expr(k);
                v.visit_expr(val);
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            v.visit_expr(left);
            v.visit_expr(right);
        }
        ExprKind::UnaryOp { operand, .. } => v.visit_expr(operand),
        ExprKind::Await(operand) => v.visit_expr(operand),
        ExprKind::Lambda { body, .. } => v.visit_expr(body),
        ExprKind::Starred { value, .. } => v.visit_expr(value),
        ExprKind::Comp {
            element,
            value,
            clauses,
            ..
        } => {
            for c in clauses {
                v.visit_expr(&c.target);
                v.visit_expr(&c.iter);
                for cond in &c.ifs {
                    v.visit_expr(cond);
                }
            }
            v.visit_expr(element);
            if let Some(val) = value {
                v.visit_expr(val);
            }
        }
        ExprKind::Name(_)
        | ExprKind::Str(_)
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::FString(_) => {}
    }
}

/// Default traversal of a pattern.
pub fn walk_pattern<V: Visitor + ?Sized>(v: &mut V, pattern: &Pattern) {
    match pattern {
        Pattern::Literal(e) => v.visit_expr(e),
        Pattern::List(items, _) | Pattern::Tuple(items, _) => {
            for p in items {
                v.visit_pattern(p);
            }
        }
        Pattern::Capture(_) | Pattern::Wildcard(_) => {}
    }
}

/// Collects every expression satisfying `pred`, in source order.
///
/// (The [`Visitor`] trait passes anonymous-lifetime references, so
/// reference-collecting analyses use this direct recursion instead.)
pub fn collect_exprs(module: &Module, pred: impl Fn(&Expr) -> bool) -> Vec<&Expr> {
    fn rec<'m>(expr: &'m Expr, pred: &impl Fn(&Expr) -> bool, out: &mut Vec<&'m Expr>) {
        if pred(expr) {
            out.push(expr);
        }
        match &expr.kind {
            ExprKind::Attribute { value, .. } => rec(value, pred, out),
            ExprKind::Call { func, args } => {
                rec(func, pred, out);
                for a in args {
                    rec(a, pred, out);
                }
            }
            ExprKind::Subscript { value, index } => {
                rec(value, pred, out);
                rec(index, pred, out);
            }
            ExprKind::List(items) | ExprKind::Tuple(items) | ExprKind::Set(items) => {
                for i in items {
                    rec(i, pred, out);
                }
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    rec(k, pred, out);
                    rec(v, pred, out);
                }
            }
            ExprKind::BinOp { left, right, .. } => {
                rec(left, pred, out);
                rec(right, pred, out);
            }
            ExprKind::UnaryOp { operand, .. } => rec(operand, pred, out),
            ExprKind::Await(operand) => rec(operand, pred, out),
            ExprKind::Lambda { body, .. } => rec(body, pred, out),
            ExprKind::Starred { value, .. } => rec(value, pred, out),
            ExprKind::Comp {
                element,
                value,
                clauses,
                ..
            } => {
                for c in clauses {
                    rec(&c.target, pred, out);
                    rec(&c.iter, pred, out);
                    for cond in &c.ifs {
                        rec(cond, pred, out);
                    }
                }
                rec(element, pred, out);
                if let Some(val) = value {
                    rec(val, pred, out);
                }
            }
            _ => {}
        }
    }
    fn stmt_rec<'m>(stmt: &'m Stmt, pred: &impl Fn(&Expr) -> bool, out: &mut Vec<&'m Expr>) {
        match stmt {
            Stmt::ClassDef(c) => {
                for d in &c.decorators {
                    rec(&d.expr, pred, out);
                }
                for s in &c.body {
                    stmt_rec(s, pred, out);
                }
            }
            Stmt::FuncDef(f) => {
                for d in &f.decorators {
                    rec(&d.expr, pred, out);
                }
                for s in &f.body {
                    stmt_rec(s, pred, out);
                }
            }
            Stmt::Return(r) => {
                if let Some(v) = &r.value {
                    rec(v, pred, out);
                }
            }
            Stmt::If(ifs) => {
                for (c, body) in &ifs.branches {
                    rec(c, pred, out);
                    for s in body {
                        stmt_rec(s, pred, out);
                    }
                }
                if let Some(body) = &ifs.orelse {
                    for s in body {
                        stmt_rec(s, pred, out);
                    }
                }
            }
            Stmt::Match(ms) => {
                rec(&ms.subject, pred, out);
                for case in &ms.cases {
                    for s in &case.body {
                        stmt_rec(s, pred, out);
                    }
                }
            }
            Stmt::While(ws) => {
                rec(&ws.cond, pred, out);
                for s in &ws.body {
                    stmt_rec(s, pred, out);
                }
            }
            Stmt::For(fs) => {
                rec(&fs.target, pred, out);
                rec(&fs.iter, pred, out);
                for s in &fs.body {
                    stmt_rec(s, pred, out);
                }
            }
            Stmt::Assign(a) => {
                rec(&a.target, pred, out);
                rec(&a.value, pred, out);
            }
            Stmt::Expr(e) => rec(&e.expr, pred, out),
            Stmt::Try(t) => {
                for s in &t.body {
                    stmt_rec(s, pred, out);
                }
                for h in &t.handlers {
                    if let Some(exc) = &h.exc {
                        rec(exc, pred, out);
                    }
                    for s in &h.body {
                        stmt_rec(s, pred, out);
                    }
                }
                for body in t.orelse.iter().chain(t.finally.iter()) {
                    for s in body {
                        stmt_rec(s, pred, out);
                    }
                }
            }
            Stmt::With(w) => {
                for item in &w.items {
                    rec(&item.context, pred, out);
                    if let Some(t) = &item.target {
                        rec(t, pred, out);
                    }
                }
                for s in &w.body {
                    stmt_rec(s, pred, out);
                }
            }
            Stmt::Raise(r) => {
                for e in r.exc.iter().chain(r.cause.iter()) {
                    rec(e, pred, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for stmt in &module.body {
        stmt_rec(stmt, &pred, &mut out);
    }
    out
}

/// Collects every [`Stmt::Degraded`] node of a module, in source order.
///
/// Recovery-mode parsing ([`crate::parse_module_recover`]) records each
/// out-of-calculus region as a `Degraded` node; this is how downstream
/// tooling finds them (W014 diagnostics, corpus parse-rate accounting).
pub fn collect_degraded(module: &Module) -> Vec<&DegradedStmt> {
    fn rec<'m>(stmt: &'m Stmt, out: &mut Vec<&'m DegradedStmt>) {
        if let Stmt::Degraded(d) = stmt {
            out.push(d);
        }
        each_child(stmt, &mut |s| rec(s, out));
    }
    /// Applies `f` to every direct child statement of `stmt`.
    fn each_child<'m>(stmt: &'m Stmt, f: &mut impl FnMut(&'m Stmt)) {
        match stmt {
            Stmt::ClassDef(c) => c.body.iter().for_each(f),
            Stmt::FuncDef(func) => func.body.iter().for_each(f),
            Stmt::If(ifs) => {
                for (_, body) in &ifs.branches {
                    body.iter().for_each(&mut *f);
                }
                if let Some(body) = &ifs.orelse {
                    body.iter().for_each(f);
                }
            }
            Stmt::Match(ms) => {
                for case in &ms.cases {
                    case.body.iter().for_each(&mut *f);
                }
            }
            Stmt::While(ws) => ws.body.iter().for_each(f),
            Stmt::For(fs) => fs.body.iter().for_each(f),
            Stmt::Try(t) => {
                t.body.iter().for_each(&mut *f);
                for h in &t.handlers {
                    h.body.iter().for_each(&mut *f);
                }
                for body in t.orelse.iter().chain(t.finally.iter()) {
                    body.iter().for_each(&mut *f);
                }
            }
            Stmt::With(w) => w.body.iter().for_each(f),
            Stmt::Return(_)
            | Stmt::Assign(_)
            | Stmt::Expr(_)
            | Stmt::Pass(_)
            | Stmt::Break(_)
            | Stmt::Continue(_)
            | Stmt::Import(_)
            | Stmt::Raise(_)
            | Stmt::Degraded(_) => {}
        }
    }
    let mut out = Vec::new();
    for stmt in &module.body {
        rec(stmt, &mut out);
    }
    out
}

/// Convenience: walk statements with a closure (pre-order).
pub fn walk_stmts(module: &Module, mut f: impl FnMut(&Stmt)) {
    struct W<F>(F);
    impl<F: FnMut(&Stmt)> Visitor for W<F> {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            (self.0)(stmt);
            walk_stmt(self, stmt);
        }
    }
    walk_module(&mut W(&mut f), module);
}

/// Convenience: walk expressions with a closure (pre-order).
pub fn walk_exprs(module: &Module, mut f: impl FnMut(&Expr)) {
    struct W<F>(F);
    impl<F: FnMut(&Expr)> Visitor for W<F> {
        fn visit_expr(&mut self, expr: &Expr) {
            (self.0)(expr);
            walk_expr(self, expr);
        }
    }
    walk_module(&mut W(&mut f), module);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    const SRC: &str = r#"
@sys
class C:
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open(1 + 2)
                return ["x"]
        while ready:
            for i in items:
                print(i)
"#;

    #[test]
    fn walk_stmts_visits_everything() {
        let module = parse_module(SRC).unwrap();
        let mut kinds = Vec::new();
        walk_stmts(&module, |s| {
            kinds.push(match s {
                Stmt::ClassDef(_) => "class",
                Stmt::FuncDef(_) => "def",
                Stmt::Match(_) => "match",
                Stmt::Expr(_) => "expr",
                Stmt::Return(_) => "return",
                Stmt::While(_) => "while",
                Stmt::For(_) => "for",
                _ => "other",
            });
        });
        assert_eq!(
            kinds,
            vec!["class", "def", "match", "expr", "return", "while", "for", "expr"]
        );
    }

    #[test]
    fn walk_exprs_counts_calls() {
        let module = parse_module(SRC).unwrap();
        let mut calls = 0;
        walk_exprs(&module, |e| {
            if matches!(e.kind, ExprKind::Call { .. }) {
                calls += 1;
            }
        });
        // sys (decorator name is a bare Name, not a call), a.test(),
        // a.open(...), print(i).
        assert_eq!(calls, 3);
    }

    #[test]
    fn collect_exprs_finds_int_literals() {
        let module = parse_module(SRC).unwrap();
        let ints = collect_exprs(&module, |e| matches!(e.kind, ExprKind::Int(_)));
        assert_eq!(ints.len(), 2); // 1 and 2
    }

    #[test]
    fn custom_visitor_overrides() {
        struct CountStrings(usize);
        impl Visitor for CountStrings {
            fn visit_expr(&mut self, expr: &Expr) {
                if matches!(expr.kind, ExprKind::Str(_)) {
                    self.0 += 1;
                }
                walk_expr(self, expr);
            }
        }
        let module = parse_module(SRC).unwrap();
        let mut v = CountStrings(0);
        walk_module(&mut v, &module);
        // "x" in the return; the pattern "open" is a pattern literal
        // visited via visit_pattern → default walk → visit_expr.
        assert_eq!(v.0, 2);
    }
}
