//! # micropython-parser
//!
//! Lexer and parser for the MicroPython subset analyzed by Shelley
//! (*Formalizing Model Inference of MicroPython*, DSN-W 2023).
//!
//! The subset covers everything the paper's examples use and Shelley's
//! analysis consumes:
//!
//! * decorated classes and methods (`@sys`, `@claim(...)`, `@op_initial`,
//!   `@op`, `@op_final`, `@op_initial_final` — Table 1);
//! * `return` statements including the tuple value forms of Table 2
//!   (`return ["close"], 2`);
//! * branching with `if/elif/else` and `match/case`, looping with `for`
//!   and `while` (§2.2);
//! * calls and attribute chains (`self.a.open()`), assignments, literals.
//!
//! Beyond the paper's scope, the front end also parses the real-world
//! MicroPython constructs firmware actually uses — class inheritance
//! lists, arbitrary decorators, `try/except/finally`, `with`,
//! `async def`/`await`, `lambda`, comprehensions, f-strings, augmented
//! assignment, and star/keyword call arguments. The calculus does not
//! model their semantics precisely: extraction degrades them soundly to
//! `skip`/`*` abstractions. For inputs even further afield,
//! [`parse_module_recover`] never fails — regions outside the grammar
//! become spanned [`ast::DegradedStmt`] nodes instead of errors.
//!
//! The parser is a hand-written recursive-descent parser over an
//! indentation-aware token stream (CPython-style `INDENT`/`DEDENT` with
//! implicit line joining inside brackets). All AST nodes carry [`Span`]s
//! and [`SourceFile`] renders caret diagnostics.
//!
//! # Example
//!
//! ```
//! use micropython_parser::parse_module;
//!
//! let source = r#"
//! @sys
//! class Valve:
//!     @op_initial
//!     def test(self):
//!         return ["open", "clean"]
//! "#;
//! let module = parse_module(source)?;
//! let valve = module.class("Valve").unwrap();
//! assert_eq!(valve.decorators[0].name(), Some("sys"));
//! # Ok::<(), micropython_parser::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod lexer;
mod parser;
pub mod printer;
mod span;
mod token;
pub mod visit;

pub use lexer::{tokenize, tokenize_recover, LexError};
pub use parser::{parse_module, parse_module_recover, ParseError};
pub use span::{SourceFile, Span, Spanned};
pub use token::{Keyword, Punct, Token, TokenKind};
