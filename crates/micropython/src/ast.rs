//! Abstract syntax tree of the MicroPython subset.
//!
//! The subset covers what Shelley's analysis consumes (§2 of the paper):
//! decorated classes and methods, `if/elif/else`, `match/case`, `for`,
//! `while`, `return` (including the tuple forms of Table 2), assignments,
//! and call/attribute expressions. Everything carries spans for
//! diagnostics.

use crate::span::{Span, Spanned};

/// A parsed module (one source file).
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level statements, in source order.
    pub body: Vec<Stmt>,
}

impl Module {
    /// Iterates over the top-level class definitions.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.body.iter().filter_map(|s| match s {
            Stmt::ClassDef(c) => Some(c),
            _ => None,
        })
    }

    /// Finds a top-level class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes().find(|c| c.name.node == name)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `class Name(Base): ...` with decorators.
    ClassDef(ClassDef),
    /// `def name(params): ...` with decorators.
    FuncDef(FuncDef),
    /// `return`, `return expr` or `return expr, expr`.
    Return(ReturnStmt),
    /// `if/elif/else` chain.
    If(IfStmt),
    /// `match subject: case ...` statement.
    Match(MatchStmt),
    /// `while cond: body` (with optional `else`, which the subset ignores).
    While(WhileStmt),
    /// `for target in iter: body`.
    For(ForStmt),
    /// Assignment `target = value` (including augmented assignments, which
    /// the analysis treats identically).
    Assign(AssignStmt),
    /// A bare expression statement (typically a call).
    Expr(ExprStmt),
    /// `pass`.
    Pass(Span),
    /// `break`.
    Break(Span),
    /// `continue`.
    Continue(Span),
    /// `import module` / `from module import names` (recorded, not analyzed).
    Import(ImportStmt),
    /// `try/except/else/finally`.
    Try(TryStmt),
    /// `with ctx [as name], ...: body`.
    With(WithStmt),
    /// `raise [exc [from cause]]`.
    Raise(RaiseStmt),
    /// A region of source the parser could not fit into the calculus and
    /// degraded to `skip` (recovery mode only). The span covers the
    /// skipped source; `reason` says what was not understood.
    Degraded(DegradedStmt),
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::ClassDef(s) => s.span,
            Stmt::FuncDef(s) => s.span,
            Stmt::Return(s) => s.span,
            Stmt::If(s) => s.span,
            Stmt::Match(s) => s.span,
            Stmt::While(s) => s.span,
            Stmt::For(s) => s.span,
            Stmt::Assign(s) => s.span,
            Stmt::Expr(s) => s.span,
            Stmt::Pass(sp) | Stmt::Break(sp) | Stmt::Continue(sp) => *sp,
            Stmt::Import(s) => s.span,
            Stmt::Try(s) => s.span,
            Stmt::With(s) => s.span,
            Stmt::Raise(s) => s.span,
            Stmt::Degraded(s) => s.span,
        }
    }
}

/// A decorated class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Decorators, outermost first (`@claim(...)`, `@sys`, …).
    pub decorators: Vec<Decorator>,
    /// Class name.
    pub name: Spanned<String>,
    /// Base-class expressions.
    pub bases: Vec<Expr>,
    /// Class body.
    pub body: Vec<Stmt>,
    /// Full span.
    pub span: Span,
}

impl ClassDef {
    /// Iterates over the methods (function definitions) of the class body.
    pub fn methods(&self) -> impl Iterator<Item = &FuncDef> {
        self.body.iter().filter_map(|s| match s {
            Stmt::FuncDef(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a method by name.
    pub fn method(&self, name: &str) -> Option<&FuncDef> {
        self.methods().find(|m| m.name.node == name)
    }
}

/// A decorated function (method) definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Decorators, outermost first (`@op`, `@op_initial`, …).
    pub decorators: Vec<Decorator>,
    /// Function name.
    pub name: Spanned<String>,
    /// Parameter names (e.g. `self`). Star parameters (`*args`,
    /// `**kwargs`) are recorded by name only.
    pub params: Vec<Spanned<String>>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Whether this is an `async def`.
    pub is_async: bool,
    /// Full span.
    pub span: Span,
}

/// A decorator application, e.g. `@sys(["a", "b"])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decorator {
    /// The decorator expression (a name or a call).
    pub expr: Expr,
    /// Full span (including the `@`).
    pub span: Span,
}

impl Decorator {
    /// The decorator's base name (`sys` for both `@sys` and `@sys([...])`).
    pub fn name(&self) -> Option<&str> {
        match &self.expr.kind {
            ExprKind::Name(n) => Some(n),
            ExprKind::Call { func, .. } => match &func.kind {
                ExprKind::Name(n) => Some(n),
                _ => None,
            },
            _ => None,
        }
    }

    /// The decorator's arguments (`[]` for a bare `@sys`).
    pub fn args(&self) -> &[Expr] {
        match &self.expr.kind {
            ExprKind::Call { args, .. } => args,
            _ => &[],
        }
    }
}

/// A `return` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnStmt {
    /// The returned expression (absent for bare `return`). Tuple returns
    /// like `return ["close"], 2` parse as a [`ExprKind::Tuple`].
    pub value: Option<Expr>,
    /// Full span.
    pub span: Span,
}

/// An `if`/`elif`/`else` chain.
#[derive(Debug, Clone, PartialEq)]
pub struct IfStmt {
    /// `(condition, body)` for the `if` and every `elif`, in order.
    pub branches: Vec<(Expr, Vec<Stmt>)>,
    /// The `else` body, if present.
    pub orelse: Option<Vec<Stmt>>,
    /// Full span.
    pub span: Span,
}

/// A `match` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchStmt {
    /// The matched subject.
    pub subject: Expr,
    /// The `case` arms, in order.
    pub cases: Vec<MatchCase>,
    /// Full span.
    pub span: Span,
}

/// One `case pattern: body` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchCase {
    /// The pattern.
    pub pattern: Pattern,
    /// The arm body.
    pub body: Vec<Stmt>,
    /// Full span.
    pub span: Span,
}

/// A match pattern (the subset Shelley inspects).
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// A literal pattern (`"open"`, `2`, `True`).
    Literal(Expr),
    /// A list pattern (`["open"]`, `["open", "clean"]`).
    List(Vec<Pattern>, Span),
    /// A tuple pattern (`(["open"], value)`).
    Tuple(Vec<Pattern>, Span),
    /// A capture (`x`) — binds anything.
    Capture(Spanned<String>),
    /// The wildcard `_`.
    Wildcard(Span),
}

impl Pattern {
    /// The pattern's source span.
    pub fn span(&self) -> Span {
        match self {
            Pattern::Literal(e) => e.span,
            Pattern::List(_, s) | Pattern::Tuple(_, s) => *s,
            Pattern::Capture(c) => c.span,
            Pattern::Wildcard(s) => *s,
        }
    }
}

/// A `while` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct WhileStmt {
    /// The loop condition (ignored by the analysis).
    pub cond: Expr,
    /// The loop body.
    pub body: Vec<Stmt>,
    /// Full span.
    pub span: Span,
}

/// A `for` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ForStmt {
    /// The loop variable target.
    pub target: Expr,
    /// The iterated expression (ignored by the analysis).
    pub iter: Expr,
    /// The loop body.
    pub body: Vec<Stmt>,
    /// Full span.
    pub span: Span,
}

/// An assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignStmt {
    /// The assignment target (name, attribute, tuple…).
    pub target: Expr,
    /// The assigned value.
    pub value: Expr,
    /// The augmented-assignment operator (`"+"` for `+=`, `"-"` for `-=`,
    /// …), or `None` for a plain `=`.
    pub aug_op: Option<String>,
    /// Full span.
    pub span: Span,
}

/// A bare expression statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprStmt {
    /// The expression (usually a call).
    pub expr: Expr,
    /// Full span.
    pub span: Span,
}

/// A `try/except/else/finally` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TryStmt {
    /// The `try` body.
    pub body: Vec<Stmt>,
    /// The `except` handlers, in order.
    pub handlers: Vec<ExceptHandler>,
    /// The `else` body, if present.
    pub orelse: Option<Vec<Stmt>>,
    /// The `finally` body, if present.
    pub finally: Option<Vec<Stmt>>,
    /// Full span.
    pub span: Span,
}

/// One `except [exc [as name]]: body` handler.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptHandler {
    /// The caught exception expression, if any.
    pub exc: Option<Expr>,
    /// The `as` binding, if any.
    pub name: Option<Spanned<String>>,
    /// The handler body.
    pub body: Vec<Stmt>,
    /// Full span.
    pub span: Span,
}

/// A `with` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct WithStmt {
    /// The context managers, in order.
    pub items: Vec<WithItem>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Full span.
    pub span: Span,
}

/// One `ctx [as target]` item of a `with` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct WithItem {
    /// The context-manager expression.
    pub context: Expr,
    /// The `as` target, if any.
    pub target: Option<Expr>,
}

/// A `raise` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct RaiseStmt {
    /// The raised exception, if any.
    pub exc: Option<Expr>,
    /// The `from` cause, if any.
    pub cause: Option<Expr>,
    /// Full span.
    pub span: Span,
}

/// A source region degraded to `skip` by recovery-mode parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedStmt {
    /// Why the region was degraded (human-readable).
    pub reason: String,
    /// The skipped source region.
    pub span: Span,
}

/// An import statement (kept for completeness; not analyzed).
#[derive(Debug, Clone, PartialEq)]
pub struct ImportStmt {
    /// Raw dotted names imported.
    pub names: Vec<String>,
    /// Full span.
    pub span: Span,
}

/// An expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Where it came from.
    pub span: Span,
}

impl Expr {
    /// Pairs a kind with a span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// If this is a call on an attribute chain rooted at `self`
    /// (`self.a.open(...)`), returns the field path and method name:
    /// `(["a"], "open")`. `self.test()` yields `([], "test")`.
    pub fn as_self_method_call(&self) -> Option<(Vec<&str>, &str)> {
        let ExprKind::Call { func, .. } = &self.kind else {
            return None;
        };
        let mut path = Vec::new();
        let mut cur = func.as_ref();
        loop {
            match &cur.kind {
                ExprKind::Attribute { value, attr } => {
                    path.push(attr.node.as_str());
                    cur = value;
                }
                ExprKind::Name(n) if n == "self" => {
                    path.reverse();
                    let method = path.pop()?;
                    return Some((path, method));
                }
                _ => return None,
            }
        }
    }

    /// If this is a list of string literals (`["open", "clean"]`), returns
    /// the strings.
    pub fn as_string_list(&self) -> Option<Vec<&str>> {
        match &self.kind {
            ExprKind::List(items) => items
                .iter()
                .map(|e| match &e.kind {
                    ExprKind::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A bare name.
    Name(String),
    /// Attribute access `value.attr`.
    Attribute {
        /// The object expression.
        value: Box<Expr>,
        /// The attribute name.
        attr: Spanned<String>,
    },
    /// A call `func(args…)`.
    Call {
        /// The callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
    },
    /// Subscript `value[index]`.
    Subscript {
        /// The container expression.
        value: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// List literal.
    List(Vec<Expr>),
    /// Tuple literal (from comma expressions or parenthesized tuples).
    Tuple(Vec<Expr>),
    /// Dict literal `{k: v, ...}`.
    Dict(Vec<(Expr, Expr)>),
    /// Set literal `{a, b}`.
    Set(Vec<Expr>),
    /// Binary operation (arithmetic/comparison; operator kept as text).
    BinOp {
        /// Operator spelling (`+`, `==`, `and`, …).
        op: String,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`not x`, `-x`, `~x`).
    UnaryOp {
        /// Operator spelling.
        op: String,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `await expr`.
    Await(Box<Expr>),
    /// `lambda params: body`.
    Lambda {
        /// Parameter names.
        params: Vec<Spanned<String>>,
        /// The body expression.
        body: Box<Expr>,
    },
    /// An f-string literal; contents kept verbatim (interpolations are
    /// opaque to the analysis).
    FString(String),
    /// A starred argument `*x` (`stars == 1`) or `**x` (`stars == 2`) in a
    /// call or unpacking position.
    Starred {
        /// 1 for `*`, 2 for `**`.
        stars: u8,
        /// The unpacked value.
        value: Box<Expr>,
    },
    /// A comprehension (`[x for y in z]`, `{...}`, `(...)`).
    Comp {
        /// Which bracket form.
        kind: CompKind,
        /// The element (the key for dict comprehensions).
        element: Box<Expr>,
        /// The value of a dict comprehension (`{k: v for ...}`).
        value: Option<Box<Expr>>,
        /// The `for`/`if` clauses, in order.
        clauses: Vec<CompClause>,
    },
}

/// The bracket form of a comprehension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompKind {
    /// `[x for ...]`
    List,
    /// `{x for ...}`
    Set,
    /// `{k: v for ...}`
    Dict,
    /// `(x for ...)`
    Generator,
}

/// One `for target in iter [if cond]*` clause of a comprehension.
#[derive(Debug, Clone, PartialEq)]
pub struct CompClause {
    /// The loop target.
    pub target: Expr,
    /// The iterated expression.
    pub iter: Expr,
    /// The `if` filters attached to this clause.
    pub ifs: Vec<Expr>,
    /// Whether this is an `async for` clause.
    pub is_async: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::default())
    }

    #[test]
    fn self_method_call_extraction() {
        // self.a.open()
        let call = expr(ExprKind::Call {
            func: Box::new(expr(ExprKind::Attribute {
                value: Box::new(expr(ExprKind::Attribute {
                    value: Box::new(expr(ExprKind::Name("self".into()))),
                    attr: Spanned::new("a".into(), Span::default()),
                })),
                attr: Spanned::new("open".into(), Span::default()),
            })),
            args: vec![],
        });
        let (path, method) = call.as_self_method_call().unwrap();
        assert_eq!(path, vec!["a"]);
        assert_eq!(method, "open");
    }

    #[test]
    fn direct_self_call() {
        let call = expr(ExprKind::Call {
            func: Box::new(expr(ExprKind::Attribute {
                value: Box::new(expr(ExprKind::Name("self".into()))),
                attr: Spanned::new("test".into(), Span::default()),
            })),
            args: vec![],
        });
        let (path, method) = call.as_self_method_call().unwrap();
        assert!(path.is_empty());
        assert_eq!(method, "test");
    }

    #[test]
    fn non_self_call_is_none() {
        let call = expr(ExprKind::Call {
            func: Box::new(expr(ExprKind::Name("print".into()))),
            args: vec![],
        });
        assert!(call.as_self_method_call().is_none());
    }

    #[test]
    fn string_list_extraction() {
        let list = expr(ExprKind::List(vec![
            expr(ExprKind::Str("open".into())),
            expr(ExprKind::Str("clean".into())),
        ]));
        assert_eq!(list.as_string_list().unwrap(), vec!["open", "clean"]);
        let mixed = expr(ExprKind::List(vec![expr(ExprKind::Int(1))]));
        assert!(mixed.as_string_list().is_none());
    }
}
