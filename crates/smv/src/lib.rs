//! # shelley-smv
//!
//! The NFA → NuSMV translation sketched in the paper's future-work section
//! (§5): *"Shelley delegates the actual model checking to NuSMV, by
//! implementing a translation from a nondeterministic finite automaton
//! (NFA) into a NuSMV model. Our approach is essentially to encode a
//! regular-language as an ω-regular language."*
//!
//! This crate emits that artifact and — because NuSMV itself is not
//! available offline — validates the encoding with an explicit-state
//! simulator: the emitted transition relation must agree with the source
//! automaton on every word up to a bound.
//!
//! * [`SmvModel`] — a `MODULE main` AST with printer and simulator;
//! * [`nfa_to_smv`] / [`dfa_to_smv`] — the regular → ω-regular encoding
//!   (determinize, add a `_stop` padding event, `accepted` define,
//!   `G (!alive -> accepted)` acceptance spec);
//! * [`ltlf_to_ltl`] — the standard LTLf → LTL relativization to the
//!   `alive` proposition for `@claim` formulas;
//! * [`validate_model`] — exhaustive bounded agreement checking;
//! * [`eval_spec`] / [`eval_model`] — an executable semantics for the
//!   emitted `LTLSPEC` strings: parse them back (inlining `DEFINE`s) and
//!   decide them over the padded traces of the encoded language, with
//!   shortest counterexamples — what NuSMV would do, minus NuSMV.
//!
//! # Example
//!
//! ```
//! use shelley_smv::{nfa_to_smv, validate_model};
//! use shelley_regular::{parse_regex, Alphabet, Dfa, Nfa};
//! use std::sync::Arc;
//!
//! let mut ab = Alphabet::new();
//! let usage = parse_regex("(test ; (open ; close + clean))*", &mut ab)?;
//! let nfa = Nfa::from_regex(&usage, Arc::new(ab));
//! let model = nfa_to_smv(&nfa, "Valve usage", &[]);
//! assert!(model.to_smv().contains("MODULE main"));
//! let dfa = Dfa::from_nfa(&nfa).minimize();
//! assert!(validate_model(&model, &dfa, 4).passed());
//! # Ok::<(), shelley_regular::ParseRegexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod ltl;
mod model;
mod translate;
mod validate;

pub use eval::{eval_model, eval_spec, EvalError, EvalOutcome};
pub use ltl::{eval_padded, translate_formula, Ltl};
pub use model::{sanitize, EnumVar, SmvModel, TransCase};
pub use translate::{dfa_to_smv, ltlf_to_ltl, nfa_to_smv, STOP_EVENT};
pub use validate::{validate_model, ValidationReport};
