//! The NFA → NuSMV translation (§5, *Future work*).
//!
//! Shelley "delegates the actual model checking to NuSMV, by implementing a
//! translation from a nondeterministic finite automaton (NFA) into a NuSMV
//! model. Our approach is essentially to encode a regular-language as an
//! ω-regular language."
//!
//! The encoding: determinize the NFA, add a fresh `_stop` event, and let
//! the automaton pad forever with `_stop` once the word ends. A finite word
//! `w` is accepted by the DFA iff the ω-word `w·_stopᵂ` keeps the define
//! `accepted` true from the first `_stop` on. LTLf claims are translated to
//! LTL over the padded traces with the standard `alive`-proposition
//! encoding (De Giacomo & Vardi).

use crate::model::{sanitize, EnumVar, SmvModel, TransCase};
use shelley_ltlf::Formula;
use shelley_regular::lang::{self, NfaView};
use shelley_regular::{Dfa, Nfa};

/// The reserved padding event.
pub const STOP_EVENT: &str = "_stop";

/// Translates `nfa` into a NuSMV model named by `comment`.
///
/// The DFA states become an enumeration `s0..sn` (plus reachability-
/// preserving sink), events become sanitized identifiers plus [`STOP_EVENT`],
/// and `accepted` holds in exactly the accepting states. Padding: every
/// state steps to itself on `_stop` — so `G (ev = _stop -> accepted)`
/// failing witnesses a rejected word, mirroring the regular → ω-regular
/// encoding.
pub fn nfa_to_smv(nfa: &Nfa, comment: &str, claims: &[Formula]) -> SmvModel {
    // Export-grade path: the whole table is needed, so materializing the
    // lazy subset view (identical state numbering to eager subset
    // construction) is the intended escape hatch.
    let dfa = lang::materialize(&NfaView::new(nfa)).minimize();
    dfa_to_smv(&dfa, comment, claims)
}

/// Translates an already-deterministic automaton.
pub fn dfa_to_smv(dfa: &Dfa, comment: &str, claims: &[Formula]) -> SmvModel {
    let alphabet = dfa.alphabet();
    let state_name = |q: usize| format!("s{q}");
    let mut event_values: Vec<String> = alphabet.iter().map(|(_, n)| sanitize(n)).collect();
    event_values.push(STOP_EVENT.to_owned());

    let mut trans = Vec::new();
    for q in 0..dfa.num_states() {
        for (sym, name) in alphabet.iter() {
            let dst = dfa.step(q, sym);
            trans.push(TransCase {
                state: state_name(q),
                event: sanitize(name),
                next_state: state_name(dst),
            });
        }
        // Padding self-loop.
        trans.push(TransCase {
            state: state_name(q),
            event: STOP_EVENT.to_owned(),
            next_state: state_name(q),
        });
    }

    let accepted_expr = {
        let accepting: Vec<String> = (0..dfa.num_states())
            .filter(|&q| dfa.is_accepting(q))
            .map(state_name)
            .collect();
        if accepting.is_empty() {
            "FALSE".to_owned()
        } else {
            accepting
                .iter()
                .map(|s| format!("st = {s}"))
                .collect::<Vec<_>>()
                .join(" | ")
        }
    };

    let mut defines = vec![
        ("accepted".to_owned(), accepted_expr),
        ("alive".to_owned(), format!("ev != {STOP_EVENT}")),
    ];
    defines.push((
        "complete".to_owned(),
        format!("ev = {STOP_EVENT} -> accepted"),
    ));

    let mut ltlspecs = vec![
        // The ω-regular reading of acceptance: once padding starts the run
        // must sit in an accepting state. NuSMV would check this for all
        // paths; a counterexample is a rejected word.
        "G (!alive -> accepted)".to_owned(),
    ];
    for claim in claims {
        ltlspecs.push(ltlf_to_ltl(claim, dfa));
    }

    SmvModel {
        comment: comment.to_owned(),
        state_var: EnumVar {
            name: "st".into(),
            values: (0..dfa.num_states()).map(state_name).collect(),
            init: state_name(dfa.start()),
        },
        event_var: EnumVar {
            name: "ev".into(),
            values: event_values,
            init: STOP_EVENT.to_owned(),
        },
        defines,
        trans,
        ltlspecs,
    }
}

/// The standard LTLf → LTL translation over `_stop`-padded ω-traces: each
/// LTLf operator is relativized to the `alive` proposition. This is the
/// `Display` of [`crate::translate_formula`]'s AST, so the emitted string
/// and the executable evaluator can never diverge.
pub fn ltlf_to_ltl(f: &Formula, dfa: &Dfa) -> String {
    crate::ltl::translate_formula(f, dfa.alphabet()).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_regular::{parse_regex, Alphabet, Regex};
    use std::sync::Arc;

    fn valve_usage_nfa() -> (Arc<Alphabet>, Nfa) {
        let mut ab = Alphabet::new();
        let r = parse_regex("(test ; (open ; close + clean))*", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let nfa = Nfa::from_regex(&r, ab.clone());
        (ab, nfa)
    }

    #[test]
    fn emitted_model_simulates_the_language() {
        let (ab, nfa) = valve_usage_nfa();
        let model = nfa_to_smv(&nfa, "Valve usage", &[]);
        let dfa = Dfa::from_nfa(&nfa);
        // Cross-validate simulation vs the DFA on enumerated words.
        for word in dfa.enumerate_words(5, 200) {
            let names: Vec<String> = word.iter().map(|&s| sanitize(ab.name(s))).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let end = model.simulate(&refs).expect("valid word must simulate");
            // The reached state must be accepting per the `accepted` DEFINE.
            let accepted = model.define("accepted").unwrap();
            assert!(
                accepted.contains(&format!("st = {end}")),
                "word {names:?} reached non-accepting {end}"
            );
        }
        // A rejected word reaches a non-accepting state (or the sink).
        let bad = ["open"];
        if model.simulate(&bad).is_some() {
            let open = ab.lookup("open").unwrap();
            assert!(!dfa.accepts(&[open]));
        }
    }

    #[test]
    fn model_text_is_wellformed() {
        let (_, nfa) = valve_usage_nfa();
        let model = nfa_to_smv(&nfa, "Valve usage", &[]);
        let text = model.to_smv();
        assert!(text.contains("MODULE main"));
        assert!(text.contains("_stop"));
        assert!(text.contains("G (!alive -> accepted)"));
        // Every state has a _stop self-loop.
        for q in 0..model.state_var.values.len() {
            assert!(text.contains(&format!("st = s{q} & next(ev) = _stop")));
        }
    }

    #[test]
    fn ltlf_claims_translate() {
        let mut ab = Alphabet::new();
        let claim = shelley_ltlf::parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        let nfa = Nfa::from_regex(&Regex::epsilon(), Arc::new(ab));
        let model = nfa_to_smv(&nfa, "claims", &[claim]);
        let spec = &model.ltlspecs[1];
        assert!(spec.contains("a_open"), "{spec}");
        assert!(spec.contains("b_open"), "{spec}");
        assert!(spec.contains("alive"), "{spec}");
        // W desugars to U/R combinations relativized to alive.
        assert!(spec.contains("U") || spec.contains("V"), "{spec}");
    }

    #[test]
    fn deterministic_translation_is_stable() {
        let (_, nfa) = valve_usage_nfa();
        let a = nfa_to_smv(&nfa, "x", &[]).to_smv();
        let b = nfa_to_smv(&nfa, "x", &[]).to_smv();
        assert_eq!(a, b);
    }
}
