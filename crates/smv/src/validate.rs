//! Validation of the NuSMV encoding against the source automaton.
//!
//! We cannot run NuSMV offline, so the encoding is validated with an
//! explicit-state checker: the emitted transition relation must simulate
//! the source DFA exactly (same reached-state acceptance on every word up
//! to a bound), and the `G (!alive -> accepted)` specification must hold on
//! padded accepted words and fail on padded rejected words.

use crate::model::{sanitize, SmvModel};
use crate::translate::STOP_EVENT;
use shelley_regular::{Dfa, Word};

/// The outcome of validating a model against its source DFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of words checked.
    pub words_checked: usize,
    /// Disagreements found (word, dfa_accepts, smv_accepts).
    pub mismatches: Vec<(Word, bool, bool)>,
}

impl ValidationReport {
    /// Whether the encoding agreed on every checked word.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Checks that `model` agrees with `dfa` on every word of length at most
/// `max_len` (exhaustively via the DFA's own enumeration of Σ*).
pub fn validate_model(model: &SmvModel, dfa: &Dfa, max_len: usize) -> ValidationReport {
    let alphabet = dfa.alphabet();
    let names: Vec<String> = alphabet.iter().map(|(_, n)| sanitize(n)).collect();
    let mut mismatches = Vec::new();
    let mut words_checked = 0;

    // Enumerate Σ^0..Σ^max_len (the alphabet is small in all our uses).
    let mut frontier: Vec<Word> = vec![Vec::new()];
    for _ in 0..=max_len {
        for word in &frontier {
            words_checked += 1;
            let dfa_accepts = dfa.accepts(word);
            let smv_accepts = smv_accepts(model, word, &names);
            if dfa_accepts != smv_accepts {
                mismatches.push((word.clone(), dfa_accepts, smv_accepts));
            }
        }
        let mut next = Vec::new();
        for word in &frontier {
            if word.len() == max_len {
                continue;
            }
            for sym in alphabet.symbols() {
                let mut w = word.clone();
                w.push(sym);
                next.push(w);
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    ValidationReport {
        words_checked,
        mismatches,
    }
}

/// Whether the padded ω-word `w·_stopᵂ` satisfies the acceptance
/// specification: simulate `w`, then one `_stop` step, and check
/// `accepted` at the reached state.
fn smv_accepts(model: &SmvModel, word: &Word, names: &[String]) -> bool {
    let mut events: Vec<&str> = word.iter().map(|s| names[s.index()].as_str()).collect();
    events.push(STOP_EVENT);
    match model.simulate(&events) {
        None => false,
        Some(state) => {
            let accepted = model.define("accepted").unwrap_or("FALSE");
            accepted
                .split(" | ")
                .any(|clause| clause.trim() == format!("st = {state}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::nfa_to_smv;
    use shelley_regular::{parse_regex, Alphabet, Nfa};
    use std::sync::Arc;

    #[test]
    fn valve_usage_encoding_validates() {
        let mut ab = Alphabet::new();
        let r = parse_regex("(test ; (open ; close + clean))*", &mut ab).unwrap();
        let nfa = Nfa::from_regex(&r, Arc::new(ab));
        let dfa = Dfa::from_nfa(&nfa).minimize();
        let model = nfa_to_smv(&nfa, "valve", &[]);
        let report = validate_model(&model, &dfa, 5);
        assert!(report.passed(), "{:?}", report.mismatches);
        assert!(report.words_checked > 100);
    }

    #[test]
    fn validation_detects_a_broken_model() {
        let mut ab = Alphabet::new();
        let r = parse_regex("go", &mut ab).unwrap();
        let nfa = Nfa::from_regex(&r, Arc::new(ab));
        let dfa = Dfa::from_nfa(&nfa).minimize();
        let mut model = nfa_to_smv(&nfa, "go", &[]);
        // Sabotage: flip acceptance.
        for d in &mut model.defines {
            if d.0 == "accepted" {
                d.1 = format!("st = {}", model.state_var.init);
            }
        }
        let report = validate_model(&model, &dfa, 2);
        assert!(!report.passed());
    }

    #[test]
    fn empty_language_validates() {
        let mut ab = Alphabet::new();
        let r = parse_regex("void", &mut ab).unwrap();
        let _ = ab.intern("x");
        let nfa = Nfa::from_regex(&r, Arc::new(ab));
        let dfa = Dfa::from_nfa(&nfa).minimize();
        let model = nfa_to_smv(&nfa, "void", &[]);
        let report = validate_model(&model, &dfa, 3);
        assert!(report.passed(), "{:?}", report.mismatches);
    }
}
