//! An executable semantics for the emitted NuSMV encoding.
//!
//! [`nfa_to_smv`](crate::nfa_to_smv) produces an artifact that is normally
//! handed to NuSMV; offline, nothing interprets its `LTLSPEC` lines. This
//! module closes that gap: it parses the emitted spec strings back into an
//! LTL AST (inlining `DEFINE` bodies), and decides each spec **over the
//! padded traces of the language the model encodes** — the ω-words
//! `w · _stopᵂ` for `w` an accepted word of the transition table. That is
//! the intended reading of the regular → ω-regular encoding (the padding
//! self-loops exist only to extend finite words), and it makes claim specs
//! agree exactly with the finite-trace checker
//! [`shelley_ltlf::check_claim`]: a claim spec is violated iff some
//! *accepted* word violates the claim, and a shortest such word is
//! reported.
//!
//! Positions follow [`eval_padded`](crate::eval_padded)'s convention: word
//! position `i` carries the event `w[i]` and the state reached *after*
//! consuming `w[0..=i]` (the emitted `TRANS` pairs `next(ev)` with
//! `next(st)`, so this is SMV path position `i + 1`; the artificial
//! all-`_stop` initial position is dropped).
//!
//! The decision procedure is formula progression over a joint
//! breadth-first search of `(table state, residual formula)` pairs —
//! residuals are kept in an ACI-normalized form so the reachable residual
//! space is finite, exactly as in the LTLf monitor construction.

use crate::model::SmvModel;
use crate::translate::STOP_EVENT;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The verdict of one spec, with a shortest violating accepted word (as
/// model-side sanitized event names) when it fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Whether every accepted padded trace satisfies the spec.
    pub holds: bool,
    /// A shortest accepted word whose padded trace violates the spec.
    pub counterexample: Option<Vec<String>>,
}

/// A spec string (or `DEFINE` body) that the evaluator cannot interpret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smv eval: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluates every `LTLSPEC` of `model`, in order.
pub fn eval_model(model: &SmvModel) -> Result<Vec<EvalOutcome>, EvalError> {
    model
        .ltlspecs
        .iter()
        .map(|spec| eval_spec(model, spec))
        .collect()
}

/// Evaluates one spec string against `model`'s accepted padded traces.
pub fn eval_spec(model: &SmvModel, spec: &str) -> Result<EvalOutcome, EvalError> {
    let formula = parse_spec(model, spec)?;
    let machine = Machine::build(model)?;
    Ok(machine.check(&formula))
}

// ---------------------------------------------------------------------------
// Normalized LTL residuals.
// ---------------------------------------------------------------------------

/// LTL over the model's propositions, in negation normal form with
/// ACI-normalized connectives (mirroring [`shelley_ltlf::Formula`]) so that
/// progression reaches only finitely many residuals.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Norm {
    True,
    False,
    /// `ev = name`.
    Ev(String),
    /// `ev != name`.
    NotEv(String),
    /// `alive` (≡ `ev != _stop`).
    Alive,
    /// `!alive`.
    NotAlive,
    /// `st = name`.
    St(String),
    /// `st != name`.
    NotSt(String),
    And(BTreeSet<Norm>),
    Or(BTreeSet<Norm>),
    Next(Box<Norm>),
    Until(Box<Norm>, Box<Norm>),
    Release(Box<Norm>, Box<Norm>),
}

impl Norm {
    fn and_all<I: IntoIterator<Item = Norm>>(items: I) -> Norm {
        let mut set = BTreeSet::new();
        for f in items {
            match f {
                Norm::True => {}
                Norm::False => return Norm::False,
                Norm::And(inner) => set.extend(inner),
                other => {
                    set.insert(other);
                }
            }
        }
        match set.len() {
            0 => Norm::True,
            1 => set.into_iter().next().expect("one element"),
            _ => Norm::And(set),
        }
    }

    fn or_all<I: IntoIterator<Item = Norm>>(items: I) -> Norm {
        let mut set = BTreeSet::new();
        for f in items {
            match f {
                Norm::False => {}
                Norm::True => return Norm::True,
                Norm::Or(inner) => set.extend(inner),
                other => {
                    set.insert(other);
                }
            }
        }
        match set.len() {
            0 => Norm::False,
            1 => set.into_iter().next().expect("one element"),
            _ => Norm::Or(set),
        }
    }

    fn and(a: Norm, b: Norm) -> Norm {
        Norm::and_all([a, b])
    }

    fn or(a: Norm, b: Norm) -> Norm {
        Norm::or_all([a, b])
    }

    /// `a U b` with the infinite-word constant folds.
    fn until(a: Norm, b: Norm) -> Norm {
        match (&a, &b) {
            (_, Norm::False) => Norm::False,
            (_, Norm::True) => Norm::True,
            (Norm::False, _) => b,
            _ => Norm::Until(Box::new(a), Box::new(b)),
        }
    }

    /// `a V b` (release) with the infinite-word constant folds.
    fn release(a: Norm, b: Norm) -> Norm {
        match (&a, &b) {
            (_, Norm::True) => Norm::True,
            (_, Norm::False) => Norm::False,
            (Norm::True, _) => b,
            _ => Norm::Release(Box::new(a), Box::new(b)),
        }
    }

    /// Negation pushed to NNF. On infinite words `X` is self-dual.
    fn negate(&self) -> Norm {
        match self {
            Norm::True => Norm::False,
            Norm::False => Norm::True,
            Norm::Ev(n) => Norm::NotEv(n.clone()),
            Norm::NotEv(n) => Norm::Ev(n.clone()),
            Norm::Alive => Norm::NotAlive,
            Norm::NotAlive => Norm::Alive,
            Norm::St(n) => Norm::NotSt(n.clone()),
            Norm::NotSt(n) => Norm::St(n.clone()),
            Norm::And(items) => Norm::or_all(items.iter().map(Norm::negate)),
            Norm::Or(items) => Norm::and_all(items.iter().map(Norm::negate)),
            Norm::Next(g) => Norm::Next(Box::new(g.negate())),
            Norm::Until(a, b) => Norm::release(a.negate(), b.negate()),
            Norm::Release(a, b) => Norm::until(a.negate(), b.negate()),
        }
    }

    /// One progression step at a word position carrying the (real, non-stop)
    /// event `event` and next-table-state `state`.
    fn progress(&self, event: &str, state: &str) -> Norm {
        match self {
            Norm::True => Norm::True,
            Norm::False => Norm::False,
            Norm::Ev(n) => bool_norm(n == event),
            Norm::NotEv(n) => bool_norm(n != event),
            Norm::Alive => Norm::True,
            Norm::NotAlive => Norm::False,
            Norm::St(n) => bool_norm(n == state),
            Norm::NotSt(n) => bool_norm(n != state),
            Norm::And(items) => Norm::and_all(items.iter().map(|g| g.progress(event, state))),
            Norm::Or(items) => Norm::or_all(items.iter().map(|g| g.progress(event, state))),
            Norm::Next(g) => (**g).clone(),
            Norm::Until(a, b) => Norm::or(
                b.progress(event, state),
                Norm::and(a.progress(event, state), self.clone()),
            ),
            Norm::Release(a, b) => Norm::and(
                b.progress(event, state),
                Norm::or(a.progress(event, state), self.clone()),
            ),
        }
    }

    /// Canonical minimal DNF: an antichain of cubes over the non-boolean
    /// leaves (atoms and temporal nodes), with absorption.
    ///
    /// ACI flattening alone does not bound progression: `progress(a U b)`
    /// re-embeds the `Until` under a fresh `And` inside a fresh `Or`, so
    /// the alternation depth of a naively-progressed residual grows by one
    /// per word position and the seen-set never fills. Every residual is,
    /// however, a *monotone* boolean combination of leaves drawn from the
    /// finite closure of the spec (progression rewrites leaves but never
    /// invents new ones), and a monotone function's minimal DNF is unique
    /// — so canonicalizing after each step makes the reachable residual
    /// space finite, exactly as the LTLf monitor construction requires.
    fn canonical(&self) -> Norm {
        let cubes = self.cubes();
        let minimal: Vec<&BTreeSet<Norm>> = cubes
            .iter()
            .filter(|c| !cubes.iter().any(|d| d != *c && d.is_subset(c)))
            .collect();
        Norm::or_all(
            minimal
                .into_iter()
                .map(|c| Norm::and_all(c.iter().cloned())),
        )
    }

    /// The DNF cube set: `self` is equivalent to the disjunction over
    /// cubes of the conjunction of each cube's leaves.
    fn cubes(&self) -> BTreeSet<BTreeSet<Norm>> {
        match self {
            Norm::True => BTreeSet::from([BTreeSet::new()]),
            Norm::False => BTreeSet::new(),
            Norm::Or(items) => {
                let mut out = BTreeSet::new();
                for g in items {
                    out.extend(g.cubes());
                }
                out
            }
            Norm::And(items) => {
                let mut out = BTreeSet::from([BTreeSet::new()]);
                for g in items {
                    let parts = g.cubes();
                    let mut next = BTreeSet::new();
                    for cube in &out {
                        for part in &parts {
                            let mut merged = cube.clone();
                            merged.extend(part.iter().cloned());
                            next.insert(merged);
                        }
                    }
                    out = next;
                }
                out
            }
            leaf => BTreeSet::from([BTreeSet::from([leaf.clone()])]),
        }
    }

    /// Truth on the constant suffix `(_stop, state)ᵂ` — every temporal
    /// operator collapses to its fixpoint exactly as in
    /// [`eval_padded`](crate::eval_padded).
    fn on_suffix(&self, state: &str) -> bool {
        match self {
            Norm::True => true,
            Norm::False => false,
            Norm::Ev(n) => n == STOP_EVENT,
            Norm::NotEv(n) => n != STOP_EVENT,
            Norm::Alive => false,
            Norm::NotAlive => true,
            Norm::St(n) => n == state,
            Norm::NotSt(n) => n != state,
            Norm::And(items) => items.iter().all(|g| g.on_suffix(state)),
            Norm::Or(items) => items.iter().any(|g| g.on_suffix(state)),
            Norm::Next(g) => g.on_suffix(state),
            Norm::Until(_, b) => b.on_suffix(state),
            Norm::Release(_, b) => b.on_suffix(state),
        }
    }
}

fn bool_norm(b: bool) -> Norm {
    if b {
        Norm::True
    } else {
        Norm::False
    }
}

// ---------------------------------------------------------------------------
// Parsing the emitted concrete syntax.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    LParen,
    RParen,
    Bang,
    Amp,
    Pipe,
    Arrow,
    Eq,
    Neq,
    Ident(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, EvalError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '&' => {
                tokens.push(Token::Amp);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    return Err(EvalError::new(format!("stray '-' in `{input}`")));
                }
            }
            _ if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            _ => return Err(EvalError::new(format!("unexpected `{c}` in `{input}`"))),
        }
    }
    Ok(tokens)
}

/// Recursive-descent parser over the grammar `Ltl::Display` and the
/// `DEFINE` bodies emit: implication (right-assoc, lowest), `|`, `&`,
/// infix `U`/`V`, prefix `!`/`X`/`G`/`F`, atoms (`TRUE`, `FALSE`,
/// `ev = x`, `st != sN`, parenthesized, or a `DEFINE` name — inlined).
struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    model: &'a SmvModel,
    /// Guards against (hypothetical) cyclic DEFINEs while inlining.
    inlining: Vec<String>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), EvalError> {
        match self.next() {
            Some(found) if &found == t => Ok(()),
            other => Err(EvalError::new(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn implication(&mut self) -> Result<Norm, EvalError> {
        let lhs = self.disjunction()?;
        if self.peek() == Some(&Token::Arrow) {
            self.next();
            let rhs = self.implication()?;
            return Ok(Norm::or(lhs.negate(), rhs));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self) -> Result<Norm, EvalError> {
        let mut items = vec![self.conjunction()?];
        while self.peek() == Some(&Token::Pipe) {
            self.next();
            items.push(self.conjunction()?);
        }
        Ok(Norm::or_all(items))
    }

    fn conjunction(&mut self) -> Result<Norm, EvalError> {
        let mut items = vec![self.temporal()?];
        while self.peek() == Some(&Token::Amp) {
            self.next();
            items.push(self.temporal()?);
        }
        Ok(Norm::and_all(items))
    }

    fn temporal(&mut self) -> Result<Norm, EvalError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Ident(n)) if n == "U" || n == "V" => n.clone(),
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary()?;
            lhs = if op == "U" {
                Norm::until(lhs, rhs)
            } else {
                Norm::release(lhs, rhs)
            };
        }
    }

    fn unary(&mut self) -> Result<Norm, EvalError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.next();
                Ok(self.unary()?.negate())
            }
            Some(Token::Ident(n)) if n == "X" => {
                self.next();
                Ok(Norm::Next(Box::new(self.unary()?)))
            }
            Some(Token::Ident(n)) if n == "F" => {
                self.next();
                Ok(Norm::until(Norm::True, self.unary()?))
            }
            Some(Token::Ident(n)) if n == "G" => {
                self.next();
                Ok(Norm::release(Norm::False, self.unary()?))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Norm, EvalError> {
        match self.next() {
            Some(Token::LParen) => {
                let inner = self.implication()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => self.ident_atom(name),
            other => Err(EvalError::new(format!("expected an atom, found {other:?}"))),
        }
    }

    fn ident_atom(&mut self, name: String) -> Result<Norm, EvalError> {
        if name == "TRUE" {
            return Ok(Norm::True);
        }
        if name == "FALSE" {
            return Ok(Norm::False);
        }
        // `var = value` / `var != value` comparisons on the two variables.
        if matches!(self.peek(), Some(Token::Eq) | Some(Token::Neq)) {
            let negated = self.next() == Some(Token::Neq);
            let value = match self.next() {
                Some(Token::Ident(v)) => v,
                other => {
                    return Err(EvalError::new(format!(
                        "expected a value after `{name} =`, found {other:?}"
                    )))
                }
            };
            let atom = if name == self.model.event_var.name {
                if value == STOP_EVENT {
                    Norm::NotAlive
                } else {
                    Norm::Ev(value)
                }
            } else if name == self.model.state_var.name {
                Norm::St(value)
            } else {
                return Err(EvalError::new(format!("unknown variable `{name}`")));
            };
            return Ok(if negated { atom.negate() } else { atom });
        }
        // A bare identifier must be a DEFINE; inline its body.
        let Some(body) = self.model.define(&name) else {
            return Err(EvalError::new(format!("unknown identifier `{name}`")));
        };
        if self.inlining.iter().any(|n| n == &name) {
            return Err(EvalError::new(format!("cyclic DEFINE `{name}`")));
        }
        self.inlining.push(name);
        let mut inner = Parser {
            tokens: tokenize(body)?,
            pos: 0,
            model: self.model,
            inlining: std::mem::take(&mut self.inlining),
        };
        let parsed = inner.implication()?;
        if inner.pos != inner.tokens.len() {
            return Err(EvalError::new(format!(
                "trailing tokens in DEFINE body `{body}`"
            )));
        }
        self.inlining = inner.inlining;
        self.inlining.pop();
        Ok(parsed)
    }
}

fn parse_spec(model: &SmvModel, spec: &str) -> Result<Norm, EvalError> {
    let mut parser = Parser {
        tokens: tokenize(spec)?,
        pos: 0,
        model,
        inlining: Vec::new(),
    };
    let parsed = parser.implication()?;
    if parser.pos != parser.tokens.len() {
        return Err(EvalError::new(format!("trailing tokens in `{spec}`")));
    }
    Ok(parsed)
}

// ---------------------------------------------------------------------------
// The joint breadth-first search.
// ---------------------------------------------------------------------------

/// The model's transition table in executable form.
struct Machine {
    /// `(state, event) → next states` (the emitted table is deterministic,
    /// but `TRANS` is a disjunction, so nondeterminism is honored).
    table: BTreeMap<(String, String), BTreeSet<String>>,
    /// Real events in declaration order (determines witness tie-breaking).
    events: Vec<String>,
    /// States satisfying the `accepted` define.
    accepting: BTreeSet<String>,
    init: String,
}

impl Machine {
    fn build(model: &SmvModel) -> Result<Machine, EvalError> {
        let mut table: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
        for c in &model.trans {
            table
                .entry((c.state.clone(), c.event.clone()))
                .or_default()
                .insert(c.next_state.clone());
        }
        let events: Vec<String> = model
            .event_var
            .values
            .iter()
            .filter(|e| e.as_str() != STOP_EVENT)
            .cloned()
            .collect();
        let accepted_body = model
            .define("accepted")
            .ok_or_else(|| EvalError::new("model has no `accepted` DEFINE"))?;
        let accepted = {
            let mut parser = Parser {
                tokens: tokenize(accepted_body)?,
                pos: 0,
                model,
                inlining: vec!["accepted".to_owned()],
            };
            parser.implication()?
        };
        let accepting = model
            .state_var
            .values
            .iter()
            .filter(|s| accepted.on_suffix(s))
            .cloned()
            .collect();
        Ok(Machine {
            table,
            events,
            accepting,
            init: model.state_var.init.clone(),
        })
    }

    /// Decides `∀ accepted words w: w·_stopᵂ ⊨ formula` by breadth-first
    /// search over `(state, residual)` pairs, returning a shortest
    /// violating accepted word on failure.
    fn check(&self, formula: &Norm) -> EvalOutcome {
        /// One search node: the table state, the residual obligation, and
        /// the `(parent index, consumed event)` backlink (`None` at the
        /// root) for witness reconstruction.
        type SearchNode = (String, Norm, Option<(usize, String)>);
        let mut nodes: Vec<SearchNode> = Vec::new();
        let mut seen: BTreeMap<(String, Norm), usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let root = (self.init.clone(), formula.canonical());
        seen.insert(root.clone(), 0);
        nodes.push((root.0, root.1, None));
        queue.push_back(0);

        while let Some(id) = queue.pop_front() {
            let (state, residual) = (nodes[id].0.clone(), nodes[id].1.clone());
            // The word may end here iff the state is accepting; the padded
            // suffix then decides the residual.
            if self.accepting.contains(&state) && !residual.on_suffix(&state) {
                let mut word = Vec::new();
                let mut cursor = id;
                while let Some((parent, event)) = nodes[cursor].2.clone() {
                    word.push(event);
                    cursor = parent;
                }
                word.reverse();
                return EvalOutcome {
                    holds: false,
                    counterexample: Some(word),
                };
            }
            for event in &self.events {
                let Some(nexts) = self.table.get(&(state.clone(), event.clone())) else {
                    continue;
                };
                for next_state in nexts {
                    let next_residual = residual.progress(event, next_state).canonical();
                    let key = (next_state.clone(), next_residual);
                    if seen.contains_key(&key) {
                        continue;
                    }
                    let next_id = nodes.len();
                    seen.insert(key.clone(), next_id);
                    nodes.push((key.0, key.1, Some((id, event.clone()))));
                    queue.push_back(next_id);
                }
            }
        }
        EvalOutcome {
            holds: true,
            counterexample: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::nfa_to_smv;
    use shelley_ltlf::parse_formula;
    use shelley_regular::{parse_regex, Alphabet, Nfa};
    use std::sync::Arc;

    fn emit(model_re: &str, claims: &[&str]) -> SmvModel {
        let mut ab = Alphabet::new();
        let claims: Vec<_> = claims
            .iter()
            .map(|c| parse_formula(c, &mut ab).unwrap())
            .collect();
        let r = parse_regex(model_re, &mut ab).unwrap();
        let nfa = Nfa::from_regex(&r, Arc::new(ab));
        nfa_to_smv(&nfa, "eval tests", &claims)
    }

    #[test]
    fn acceptance_spec_holds_on_every_emitted_model() {
        for re in ["a ; b", "(a + b)*", "a*; b", "void"] {
            let model = emit(re, &[]);
            let out = eval_spec(&model, &model.ltlspecs[0]).unwrap();
            assert!(out.holds, "acceptance spec failed on {re}");
        }
    }

    #[test]
    fn holding_claim_evaluates_to_true() {
        let model = emit("b.open ; a.open", &["(!a.open) W b.open"]);
        let out = eval_spec(&model, &model.ltlspecs[1]).unwrap();
        assert!(out.holds);
        assert_eq!(out.counterexample, None);
    }

    #[test]
    fn violated_claim_reports_a_shortest_accepted_word() {
        let model = emit(
            "(b.open ; a.open) + (a.test ; a.open)",
            &["(!a.open) W b.open"],
        );
        let out = eval_spec(&model, &model.ltlspecs[1]).unwrap();
        assert!(!out.holds);
        assert_eq!(
            out.counterexample,
            Some(vec!["a_test".to_owned(), "a_open".to_owned()])
        );
    }

    #[test]
    fn empty_word_counterexamples_are_possible() {
        // The model accepts ε, which violates F done.
        let model = emit("done*", &["F done"]);
        let out = eval_spec(&model, &model.ltlspecs[1]).unwrap();
        assert!(!out.holds);
        assert_eq!(out.counterexample, Some(vec![]));
    }

    #[test]
    fn eval_model_covers_all_specs() {
        let model = emit("a ; b", &["F b", "G !b"]);
        let outs = eval_model(&model).unwrap();
        assert_eq!(outs.len(), 3);
        assert!(outs[0].holds, "acceptance spec");
        assert!(outs[1].holds, "F b holds on {{ab}}");
        assert!(!outs[2].holds, "G !b is violated");
        assert_eq!(
            outs[2].counterexample,
            Some(vec!["a".to_owned(), "b".to_owned()])
        );
    }

    #[test]
    fn defines_are_inlined_transitively() {
        // `complete` references `accepted`; both must parse.
        let model = emit("a", &[]);
        let out = eval_spec(&model, "G complete").unwrap();
        assert!(out.holds);
    }

    #[test]
    fn unknown_identifiers_are_rejected() {
        let model = emit("a", &[]);
        assert!(eval_spec(&model, "G bogus").is_err());
        assert!(eval_spec(&model, "nope = 3").is_err());
    }

    #[test]
    fn weak_until_over_nested_temporal_operands_terminates() {
        // `(G a) W (F c)` desugars to Release/Until nesting whose naive
        // progression grows an `And(Or(And(…)))` spine one level per step;
        // only DNF canonicalization keeps the residual space finite. The
        // claim is violated by the accepted word `c a`? No: `c` satisfies
        // `F c` immediately, so it holds — the point is termination.
        let model = emit("c ; a", &["(G a) W (F c)"]);
        let out = eval_spec(&model, &model.ltlspecs[1]).unwrap();
        assert!(out.holds);
        // And a violated variant still reports a shortest witness.
        let model = emit("a ; b", &["(G a) W (F c)"]);
        let out = eval_spec(&model, &model.ltlspecs[1]).unwrap();
        assert!(!out.holds);
        assert_eq!(
            out.counterexample,
            Some(vec!["a".to_owned(), "b".to_owned()])
        );
    }

    #[test]
    fn padded_semantics_matches_eval_padded_on_claim_specs() {
        // For every accepted word of a small model, the spec string decided
        // here must agree with `eval_padded` of the same translation.
        use crate::ltl::{eval_padded, translate_formula};
        let mut ab = Alphabet::new();
        let claim = parse_formula("G (req -> X ack)", &mut ab).unwrap();
        let r = parse_regex("(req ; ack)*", &mut ab).unwrap();
        let nfa = Nfa::from_regex(&r, Arc::new(ab.clone()));
        let model = nfa_to_smv(&nfa, "t", std::slice::from_ref(&claim));
        let ltl = translate_formula(&claim, &ab);
        let dfa = shelley_regular::Dfa::from_nfa(&nfa);
        for word in dfa.enumerate_words(6, 100) {
            let names: Vec<String> = word
                .iter()
                .map(|&s| crate::model::sanitize(ab.name(s)))
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            assert!(eval_padded(&ltl, &refs), "emitted language satisfies claim");
        }
        let out = eval_spec(&model, &model.ltlspecs[1]).unwrap();
        assert!(out.holds);
    }
}
