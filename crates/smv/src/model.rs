//! A small NuSMV model AST with a textual printer and a simulator.
//!
//! Only the fragment Shelley's translation needs: one `MODULE main` with
//! enumerated variables, `ASSIGN init`, a `TRANS` relation given as guarded
//! cases, `DEFINE`s, and `LTLSPEC`s.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An enumerated variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumVar {
    /// Variable name.
    pub name: String,
    /// The enumeration values, in order.
    pub values: Vec<String>,
    /// The initial value (must be one of `values`).
    pub init: String,
}

/// One guarded transition case: when `guard` holds of the current state,
/// `next_state` is allowed next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransCase {
    /// Current value of the state variable.
    pub state: String,
    /// Current value of the event variable.
    pub event: String,
    /// Allowed next value of the state variable.
    pub next_state: String,
}

/// A NuSMV `MODULE main` in the fragment Shelley emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmvModel {
    /// Human-readable comment (class name).
    pub comment: String,
    /// The state variable.
    pub state_var: EnumVar,
    /// The event (input) variable.
    pub event_var: EnumVar,
    /// `DEFINE name := expr;` pairs (expression text).
    pub defines: Vec<(String, String)>,
    /// The transition relation, as a disjunction of cases.
    pub trans: Vec<TransCase>,
    /// `LTLSPEC` formulas (expression text).
    pub ltlspecs: Vec<String>,
}

impl SmvModel {
    /// Prints the model in NuSMV concrete syntax.
    pub fn to_smv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- {}", self.comment);
        let _ = writeln!(out, "MODULE main");
        let _ = writeln!(out, "VAR");
        for var in [&self.state_var, &self.event_var] {
            let _ = writeln!(out, "  {} : {{{}}};", var.name, var.values.join(", "));
        }
        if !self.defines.is_empty() {
            let _ = writeln!(out, "DEFINE");
            for (name, expr) in &self.defines {
                let _ = writeln!(out, "  {name} := {expr};");
            }
        }
        let _ = writeln!(out, "ASSIGN");
        let _ = writeln!(
            out,
            "  init({}) := {};",
            self.state_var.name, self.state_var.init
        );
        let _ = writeln!(
            out,
            "  init({}) := {};",
            self.event_var.name, self.event_var.init
        );
        let _ = writeln!(out, "TRANS");
        if self.trans.is_empty() {
            let _ = writeln!(out, "  TRUE");
        } else {
            let clauses: Vec<String> = self
                .trans
                .iter()
                .map(|c| {
                    format!(
                        "({} = {} & next({}) = {} & next({}) = {})",
                        self.state_var.name,
                        c.state,
                        self.event_var.name,
                        c.event,
                        self.state_var.name,
                        c.next_state
                    )
                })
                .collect();
            let _ = writeln!(out, "  {}", clauses.join("\n  | "));
        }
        for spec in &self.ltlspecs {
            let _ = writeln!(out, "LTLSPEC {spec}");
        }
        out
    }

    /// Simulates the model on a sequence of event values, starting from the
    /// initial state, returning the reached state-variable value, or `None`
    /// if some step has no enabled transition.
    ///
    /// The `TRANS` relation as emitted pairs `next(event)` with the *next*
    /// state: step `i` consumes `events[i]` as the next event.
    pub fn simulate(&self, events: &[&str]) -> Option<String> {
        // Index transitions by (state, event) -> next states.
        let mut table: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        for c in &self.trans {
            table
                .entry((c.state.as_str(), c.event.as_str()))
                .or_default()
                .push(c.next_state.as_str());
        }
        let mut current = self.state_var.init.as_str();
        for &ev in events {
            let nexts = table.get(&(current, ev))?;
            // The Shelley emission is deterministic: one successor.
            current = nexts.first()?;
        }
        Some(current.to_owned())
    }

    /// Looks up a `DEFINE` body.
    pub fn define(&self, name: &str) -> Option<&str> {
        self.defines
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e.as_str())
    }
}

/// Sanitizes an event name into a NuSMV identifier (`a.open` → `a_open`).
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        out.insert(0, 'e');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> SmvModel {
        SmvModel {
            comment: "tiny".into(),
            state_var: EnumVar {
                name: "st".into(),
                values: vec!["s0".into(), "s1".into()],
                init: "s0".into(),
            },
            event_var: EnumVar {
                name: "ev".into(),
                values: vec!["go".into(), "stop".into()],
                init: "stop".into(),
            },
            defines: vec![("accepted".into(), "st = s1".into())],
            trans: vec![
                TransCase {
                    state: "s0".into(),
                    event: "go".into(),
                    next_state: "s1".into(),
                },
                TransCase {
                    state: "s1".into(),
                    event: "stop".into(),
                    next_state: "s1".into(),
                },
            ],
            ltlspecs: vec!["F accepted".into()],
        }
    }

    #[test]
    fn printer_emits_all_sections() {
        let text = tiny_model().to_smv();
        assert!(text.contains("MODULE main"));
        assert!(text.contains("st : {s0, s1};"));
        assert!(text.contains("accepted := st = s1;"));
        assert!(text.contains("init(st) := s0;"));
        assert!(text.contains("TRANS"));
        assert!(text.contains("LTLSPEC F accepted"));
    }

    #[test]
    fn simulation_follows_transitions() {
        let m = tiny_model();
        assert_eq!(m.simulate(&[]).as_deref(), Some("s0"));
        assert_eq!(m.simulate(&["go"]).as_deref(), Some("s1"));
        assert_eq!(m.simulate(&["go", "stop"]).as_deref(), Some("s1"));
        assert_eq!(m.simulate(&["stop"]), None);
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("a.open"), "a_open");
        assert_eq!(sanitize("open_a"), "open_a");
        assert_eq!(sanitize("2fast"), "e2fast");
        assert_eq!(sanitize(""), "e");
    }
}
