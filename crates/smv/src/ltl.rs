//! A small LTL fragment over the emitted model's propositions, with an
//! exact evaluator on `_stop`-padded ω-words.
//!
//! The §5 encoding maps every LTLf claim `φ` to an LTL formula `t(φ)` over
//! the propositions `ev = <event>` and `alive := ev != _stop`, to be
//! checked by NuSMV on infinite traces of the padded model. This module
//! makes that translation *testable without NuSMV*: the padded ω-word
//! `w · _stopᵂ` is ultimately constant, so LTL truth values on the suffix
//! can be solved by fixpoint and then propagated backwards through `w` —
//! giving an exact decision procedure that the property suite compares
//! against the finite-trace semantics:
//!
//! ```text
//! w ⊨_LTLf φ   ⇔   w·_stopᵂ ⊨_LTL t(φ)
//! ```

use crate::translate::STOP_EVENT;
use shelley_ltlf::Formula;
use shelley_regular::Alphabet;
use std::fmt;

/// An LTL formula over the emitted model's propositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ltl {
    /// `TRUE`.
    True,
    /// `FALSE`.
    False,
    /// `ev = <name>` (a sanitized event identifier).
    EvEquals(String),
    /// `alive` (≡ `ev != _stop`).
    Alive,
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Next (LTL next over infinite words — always a successor).
    Next(Box<Ltl>),
    /// Until.
    Until(Box<Ltl>, Box<Ltl>),
    /// Release (NuSMV's `V`).
    Release(Box<Ltl>, Box<Ltl>),
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "TRUE"),
            Ltl::False => write!(f, "FALSE"),
            Ltl::EvEquals(name) => write!(f, "ev = {name}"),
            Ltl::Alive => write!(f, "alive"),
            Ltl::Not(g) => write!(f, "!({g})"),
            Ltl::And(a, b) => write!(f, "(({a}) & ({b}))"),
            Ltl::Or(a, b) => write!(f, "(({a}) | ({b}))"),
            Ltl::Next(g) => write!(f, "(X ({g}))"),
            Ltl::Until(a, b) => write!(f, "(({a}) U ({b}))"),
            Ltl::Release(a, b) => write!(f, "(({a}) V ({b}))"),
        }
    }
}

/// The standard LTLf → LTL translation (relativization to `alive`),
/// producing the [`Ltl`] AST (the string emitted into `LTLSPEC` is its
/// `Display`).
pub fn translate_formula(f: &Formula, alphabet: &Alphabet) -> Ltl {
    match f {
        Formula::True => Ltl::True,
        Formula::False => Ltl::False,
        Formula::Empty => Ltl::Not(Box::new(Ltl::Alive)),
        Formula::Nonempty => Ltl::Alive,
        Formula::Atom(s) => Ltl::And(
            Box::new(Ltl::Alive),
            Box::new(Ltl::EvEquals(crate::model::sanitize(alphabet.name(*s)))),
        ),
        Formula::NotAtom(s) => Ltl::Or(
            Box::new(Ltl::Not(Box::new(Ltl::Alive))),
            Box::new(Ltl::Not(Box::new(Ltl::EvEquals(crate::model::sanitize(
                alphabet.name(*s),
            ))))),
        ),
        Formula::And(items) => items
            .iter()
            .map(|g| translate_formula(g, alphabet))
            .reduce(|a, b| Ltl::And(Box::new(a), Box::new(b)))
            .unwrap_or(Ltl::True),
        Formula::Or(items) => items
            .iter()
            .map(|g| translate_formula(g, alphabet))
            .reduce(|a, b| Ltl::Or(Box::new(a), Box::new(b)))
            .unwrap_or(Ltl::False),
        Formula::Next(g) => Ltl::Next(Box::new(Ltl::And(
            Box::new(Ltl::Alive),
            Box::new(translate_formula(g, alphabet)),
        ))),
        Formula::WeakNext(g) => Ltl::Next(Box::new(Ltl::Or(
            Box::new(Ltl::Not(Box::new(Ltl::Alive))),
            Box::new(translate_formula(g, alphabet)),
        ))),
        Formula::Until(a, b) => Ltl::Until(
            Box::new(Ltl::And(
                Box::new(Ltl::Alive),
                Box::new(translate_formula(a, alphabet)),
            )),
            Box::new(Ltl::And(
                Box::new(Ltl::Alive),
                Box::new(translate_formula(b, alphabet)),
            )),
        ),
        Formula::Release(a, b) => Ltl::Release(
            Box::new(translate_formula(a, alphabet)),
            Box::new(Ltl::Or(
                Box::new(Ltl::Not(Box::new(Ltl::Alive))),
                Box::new(translate_formula(b, alphabet)),
            )),
        ),
    }
}

/// Decides `events · _stopᵂ ⊨ f` exactly.
///
/// Positions `|events|..` all carry the event `_stop`; on that constant
/// suffix every subformula has a single truth value, obtained as the
/// appropriate fixpoint (`U` least, `V` greatest). Truth is then computed
/// backwards through the finite prefix.
pub fn eval_padded(f: &Ltl, events: &[&str]) -> bool {
    eval_at(f, events, 0)
}

fn eval_at(f: &Ltl, events: &[&str], i: usize) -> bool {
    if i >= events.len() {
        return eval_suffix(f);
    }
    match f {
        Ltl::True => true,
        Ltl::False => false,
        Ltl::EvEquals(name) => events[i] == name,
        Ltl::Alive => events[i] != STOP_EVENT,
        Ltl::Not(g) => !eval_at(g, events, i),
        Ltl::And(a, b) => eval_at(a, events, i) && eval_at(b, events, i),
        Ltl::Or(a, b) => eval_at(a, events, i) || eval_at(b, events, i),
        Ltl::Next(g) => eval_at(g, events, i + 1),
        Ltl::Until(a, b) => {
            // b at some k ≥ i with a holding in between; fall back to the
            // suffix fixpoint past the prefix.
            eval_at(b, events, i) || (eval_at(a, events, i) && eval_at(f, events, i + 1))
        }
        Ltl::Release(a, b) => {
            eval_at(b, events, i) && (eval_at(a, events, i) || eval_at(f, events, i + 1))
        }
    }
}

/// Truth of `f` on the constant word `_stopᵂ`.
fn eval_suffix(f: &Ltl) -> bool {
    match f {
        Ltl::True => true,
        Ltl::False => false,
        Ltl::EvEquals(name) => name == STOP_EVENT,
        Ltl::Alive => false,
        Ltl::Not(g) => !eval_suffix(g),
        Ltl::And(a, b) => eval_suffix(a) && eval_suffix(b),
        Ltl::Or(a, b) => eval_suffix(a) || eval_suffix(b),
        Ltl::Next(g) => eval_suffix(g),
        // On a constant word, a U b ≡ b (least fixpoint of
        // val = val_b ∨ (val_a ∧ val)).
        Ltl::Until(_, b) => eval_suffix(b),
        // Dually, a V b ≡ b (greatest fixpoint of
        // val = val_b ∧ (val_a ∨ val)).
        Ltl::Release(_, b) => eval_suffix(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_ltlf::{eval as eval_ltlf, parse_formula};

    fn check_agreement(claim: &str, traces: &[Vec<&str>]) {
        let mut ab = Alphabet::new();
        let f = parse_formula(claim, &mut ab).unwrap();
        let ltl = translate_formula(&f, &ab);
        for trace in traces {
            let word: Vec<_> = trace.iter().map(|n| ab.intern(n)).collect();
            let sanitized: Vec<String> = trace.iter().map(|n| crate::model::sanitize(n)).collect();
            let refs: Vec<&str> = sanitized.iter().map(String::as_str).collect();
            assert_eq!(
                eval_ltlf(&f, &word),
                eval_padded(&ltl, &refs),
                "claim `{claim}` disagrees on {trace:?}"
            );
        }
    }

    #[test]
    fn paper_claim_translation_agrees() {
        check_agreement(
            "(!a.open) W b.open",
            &[
                vec![],
                vec!["a.open"],
                vec!["b.open", "a.open"],
                vec!["a.test", "a.open", "b.open"],
                vec!["a.test", "b.open", "a.open"],
            ],
        );
    }

    #[test]
    fn temporal_operators_agree() {
        check_agreement(
            "G (req -> X ack)",
            &[
                vec![],
                vec!["req"],
                vec!["req", "ack"],
                vec!["ack", "req", "ack"],
                vec!["req", "req"],
            ],
        );
        check_agreement("F done", &[vec![], vec!["x"], vec!["x", "done"]]);
        check_agreement(
            "a U b",
            &[
                vec![],
                vec!["a"],
                vec!["b"],
                vec!["a", "a", "b"],
                vec!["a", "c"],
            ],
        );
    }

    #[test]
    fn display_matches_string_translation() {
        let mut ab = Alphabet::new();
        let f = parse_formula("F a.open", &mut ab).unwrap();
        let ltl = translate_formula(&f, &ab);
        let shown = ltl.to_string();
        assert!(shown.contains("a_open"));
        assert!(shown.contains("U"));
    }
}
