//! Property test validating the §5 LTLf → LTL encoding:
//! `w ⊨_LTLf φ ⇔ w·_stopᵂ ⊨_LTL t(φ)` on random formulas and words.

use proptest::prelude::*;
use shelley_ltlf::{eval as eval_ltlf, Formula};
use shelley_regular::{Alphabet, Symbol};
use shelley_smv::{eval_padded, sanitize, translate_formula};

const NSYMS: usize = 3;

fn alphabet() -> Alphabet {
    Alphabet::from_names(["a", "b", "c"])
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::tt()),
        Just(Formula::ff()),
        (0..NSYMS).prop_map(|i| Formula::atom(Symbol::from_index(i))),
        (0..NSYMS).prop_map(|i| Formula::NotAtom(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 14, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            inner.clone().prop_map(Formula::next),
            inner.clone().prop_map(Formula::weak_next),
            inner.clone().prop_map(Formula::eventually),
            inner.clone().prop_map(Formula::globally),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::until(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::release(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::weak_until(a, b)),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec((0..NSYMS).prop_map(Symbol::from_index), 0..7)
}

proptest! {
    /// The encoding is exact: finite-trace satisfaction coincides with
    /// padded ω-word satisfaction of the translated formula.
    #[test]
    fn translation_is_exact(f in arb_formula(), w in arb_word()) {
        let ab = alphabet();
        let ltl = translate_formula(&f, &ab);
        let names: Vec<String> =
            w.iter().map(|&s| sanitize(ab.name(s))).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        prop_assert_eq!(
            eval_ltlf(&f, &w),
            eval_padded(&ltl, &refs),
            "formula {:?} word {:?} (LTL: {})",
            f, w, ltl
        );
    }

    /// Negation commutes with translation (the LTL side uses classical
    /// negation, so this pins the relativization as self-dual).
    #[test]
    fn translation_respects_negation(f in arb_formula(), w in arb_word()) {
        let ab = alphabet();
        let pos = translate_formula(&f, &ab);
        let neg = translate_formula(&f.negate(), &ab);
        let names: Vec<String> =
            w.iter().map(|&s| sanitize(ab.name(s))).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        prop_assert_eq!(eval_padded(&pos, &refs), !eval_padded(&neg, &refs));
    }
}
