//! # shelley-runtime
//!
//! Runtime enforcement of Shelley operation models — the dynamic
//! counterpart of the static verification in `shelley-core`.
//!
//! The same [`ClassSpec`](shelley_core::spec::ClassSpec) that Shelley
//! checks statically can guard an object at run time:
//!
//! * [`SpecMonitor`] tracks the spec automaton's possible states across
//!   invocations and rejects out-of-order calls, with the operations that
//!   *would* have been allowed in the error;
//! * [`PinBank`] simulates the GPIO pins that the paper's MicroPython
//!   classes drive (`Pin(27, OUT)`, `.on()`, `.off()`, `.value()`);
//! * [`MonitoredValve`] wires both together into the runtime realization
//!   of Listing 2.1's `Valve`.
//!
//! The property suite checks that the monitor accepts **exactly** the
//! prefixes of the static specification language — the two analyses are
//! two views of one model.
//!
//! # Example
//!
//! ```
//! use shelley_core::Checker;
//! use shelley_runtime::{MonitoredValve, DeviceError};
//!
//! let checked = Checker::new().check_source(include_str!("../tests/valve.py"))?;
//! let spec = &checked.systems.get("Valve").unwrap().spec;
//! let mut valve = MonitoredValve::new(spec);
//! valve.set_status(true);
//! assert!(valve.test()?);
//! valve.open()?;
//! valve.close()?;
//! assert!(valve.is_safe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod monitor;
mod pins;

pub use device::{DeviceError, MonitoredValve};
pub use monitor::{MonitorError, SpecMonitor};
pub use pins::{PinBank, PinError, PinEvent, PinMode};
