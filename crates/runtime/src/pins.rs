//! Simulated GPIO pins.
//!
//! The paper's classes drive `machine.Pin` objects (`Pin(27, OUT)`,
//! `self.control.on()`); this module provides the pure-Rust stand-in used
//! by the examples to execute verified models against "hardware": pins
//! with modes, levels, an event log, and mode-violation errors.

use std::collections::BTreeMap;
use std::fmt;

/// Pin direction, mirroring MicroPython's `Pin.IN` / `Pin.OUT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinMode {
    /// Input pin: may be read, not driven.
    In,
    /// Output pin: may be driven, reads return the driven level.
    Out,
}

/// A pin-access error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinError {
    /// The pin id was never configured.
    Unconfigured {
        /// The offending id.
        id: u8,
    },
    /// A write to an input pin.
    WroteToInput {
        /// The offending id.
        id: u8,
    },
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::Unconfigured { id } => write!(f, "pin {id} is not configured"),
            PinError::WroteToInput { id } => {
                write!(f, "pin {id} is an input and cannot be driven")
            }
        }
    }
}

impl std::error::Error for PinError {}

/// One recorded pin event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinEvent {
    /// Logical timestamp (event counter).
    pub at: u64,
    /// Which pin.
    pub id: u8,
    /// The level after the event.
    pub level: bool,
}

/// A bank of simulated pins with an event log.
#[derive(Debug, Clone, Default)]
pub struct PinBank {
    pins: BTreeMap<u8, (PinMode, bool)>,
    log: Vec<PinEvent>,
    clock: u64,
}

impl PinBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configures a pin, like `Pin(27, OUT)`. Reconfiguring resets the
    /// level to low.
    pub fn configure(&mut self, id: u8, mode: PinMode) {
        self.pins.insert(id, (mode, false));
    }

    /// Drives an output pin high (`pin.on()`).
    ///
    /// # Errors
    ///
    /// [`PinError`] on unconfigured or input pins.
    pub fn on(&mut self, id: u8) -> Result<(), PinError> {
        self.write(id, true)
    }

    /// Drives an output pin low (`pin.off()`).
    ///
    /// # Errors
    ///
    /// [`PinError`] on unconfigured or input pins.
    pub fn off(&mut self, id: u8) -> Result<(), PinError> {
        self.write(id, false)
    }

    fn write(&mut self, id: u8, level: bool) -> Result<(), PinError> {
        match self.pins.get_mut(&id) {
            None => Err(PinError::Unconfigured { id }),
            Some((PinMode::In, _)) => Err(PinError::WroteToInput { id }),
            Some((PinMode::Out, current)) => {
                *current = level;
                self.clock += 1;
                self.log.push(PinEvent {
                    at: self.clock,
                    id,
                    level,
                });
                Ok(())
            }
        }
    }

    /// Reads a pin's level (`pin.value()`).
    ///
    /// # Errors
    ///
    /// [`PinError::Unconfigured`] for unknown pins.
    pub fn value(&self, id: u8) -> Result<bool, PinError> {
        self.pins
            .get(&id)
            .map(|(_, level)| *level)
            .ok_or(PinError::Unconfigured { id })
    }

    /// Forces an input pin's level (the "physical world" side).
    ///
    /// # Errors
    ///
    /// [`PinError::Unconfigured`] for unknown pins.
    pub fn sense(&mut self, id: u8, level: bool) -> Result<(), PinError> {
        match self.pins.get_mut(&id) {
            None => Err(PinError::Unconfigured { id }),
            Some((_, current)) => {
                *current = level;
                Ok(())
            }
        }
    }

    /// The full event log.
    pub fn log(&self) -> &[PinEvent] {
        &self.log
    }

    /// Whether every *output* pin is currently low (safe at rest).
    pub fn all_outputs_low(&self) -> bool {
        self.pins
            .values()
            .all(|(mode, level)| *mode == PinMode::In || !level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_and_read() {
        let mut bank = PinBank::new();
        bank.configure(27, PinMode::Out);
        bank.configure(29, PinMode::In);
        bank.on(27).unwrap();
        assert!(bank.value(27).unwrap());
        bank.off(27).unwrap();
        assert!(!bank.value(27).unwrap());
        assert_eq!(bank.log().len(), 2);
    }

    #[test]
    fn input_pins_cannot_be_driven() {
        let mut bank = PinBank::new();
        bank.configure(29, PinMode::In);
        assert_eq!(bank.on(29), Err(PinError::WroteToInput { id: 29 }));
        bank.sense(29, true).unwrap();
        assert!(bank.value(29).unwrap());
    }

    #[test]
    fn unconfigured_pins_error() {
        let mut bank = PinBank::new();
        assert_eq!(bank.on(3), Err(PinError::Unconfigured { id: 3 }));
        assert_eq!(bank.value(3), Err(PinError::Unconfigured { id: 3 }));
    }

    #[test]
    fn safety_predicate() {
        let mut bank = PinBank::new();
        bank.configure(1, PinMode::Out);
        bank.configure(2, PinMode::In);
        bank.sense(2, true).unwrap();
        assert!(bank.all_outputs_low());
        bank.on(1).unwrap();
        assert!(!bank.all_outputs_low());
        bank.off(1).unwrap();
        assert!(bank.all_outputs_low());
    }
}
