//! A monitored device: spec enforcement wired to simulated hardware.
//!
//! [`MonitoredValve`] is the runtime realization of the paper's `Valve`:
//! the [`SpecMonitor`](crate::SpecMonitor) guards call ordering while the
//! [`PinBank`](crate::PinBank) plays the physical side, exactly as
//! Listing 2.1 wires `test`/`open`/`close`/`clean` to GPIO pins.

use crate::monitor::{MonitorError, SpecMonitor};
use crate::pins::{PinBank, PinError, PinMode};
use shelley_core::spec::ClassSpec;
use std::fmt;

/// An error from a monitored device: either a protocol violation or a
/// hardware-access fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Call-ordering violation caught by the monitor.
    Protocol(MonitorError),
    /// Pin-access fault.
    Hardware(PinError),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Protocol(e) => write!(f, "protocol violation: {e}"),
            DeviceError::Hardware(e) => write!(f, "hardware fault: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<MonitorError> for DeviceError {
    fn from(e: MonitorError) -> Self {
        DeviceError::Protocol(e)
    }
}

impl From<PinError> for DeviceError {
    fn from(e: PinError) -> Self {
        DeviceError::Hardware(e)
    }
}

/// Pin assignment of Listing 2.1.
const CONTROL_PIN: u8 = 27;
const CLEAN_PIN: u8 = 28;
const STATUS_PIN: u8 = 29;

/// The runtime `Valve` of Listing 2.1, guarded by its extracted model.
#[derive(Debug, Clone)]
pub struct MonitoredValve {
    monitor: SpecMonitor,
    pins: PinBank,
}

impl MonitoredValve {
    /// Builds the valve from the (verified) `Valve` specification.
    pub fn new(spec: &ClassSpec) -> MonitoredValve {
        let mut pins = PinBank::new();
        pins.configure(CONTROL_PIN, PinMode::Out);
        pins.configure(CLEAN_PIN, PinMode::Out);
        pins.configure(STATUS_PIN, PinMode::In);
        MonitoredValve {
            monitor: SpecMonitor::new(spec),
            pins,
        }
    }

    /// The physical world reports whether the valve is unobstructed.
    pub fn set_status(&mut self, clear: bool) {
        self.pins.sense(STATUS_PIN, clear).expect("configured");
    }

    /// `test`: returns `true` when the valve may be opened, `false` when it
    /// needs cleaning (mirroring the `["open"]` / `["clean"]` exits).
    ///
    /// # Errors
    ///
    /// [`DeviceError::Protocol`] when invoked out of order.
    pub fn test(&mut self) -> Result<bool, DeviceError> {
        self.monitor.invoke("test")?;
        Ok(self.pins.value(STATUS_PIN)?)
    }

    /// `open`: drives the control pin high.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] on protocol or pin faults.
    pub fn open(&mut self) -> Result<(), DeviceError> {
        self.monitor.invoke("open")?;
        self.pins.on(CONTROL_PIN)?;
        Ok(())
    }

    /// `close`: drives the control pin low.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] on protocol or pin faults.
    pub fn close(&mut self) -> Result<(), DeviceError> {
        self.monitor.invoke("close")?;
        self.pins.off(CONTROL_PIN)?;
        Ok(())
    }

    /// `clean`: pulses the cleaning pin.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] on protocol or pin faults.
    pub fn clean(&mut self) -> Result<(), DeviceError> {
        self.monitor.invoke("clean")?;
        self.pins.on(CLEAN_PIN)?;
        self.pins.off(CLEAN_PIN)?;
        Ok(())
    }

    /// Whether the object may be dropped here without violating the model.
    pub fn can_finish(&self) -> bool {
        self.monitor.can_finish()
    }

    /// Whether the physical valve is safely closed.
    pub fn is_safe(&self) -> bool {
        self.pins.all_outputs_low()
    }

    /// The operation history.
    pub fn history(&self) -> &[String] {
        self.monitor.history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_core::Checker;

    fn valve_spec() -> ClassSpec {
        Checker::new()
            .check_source(
                r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#,
            )
            .unwrap()
            .systems
            .get("Valve")
            .unwrap()
            .spec
            .clone()
    }

    #[test]
    fn happy_path_keeps_valve_safe() {
        let mut v = MonitoredValve::new(&valve_spec());
        v.set_status(true);
        assert!(v.test().unwrap());
        v.open().unwrap();
        assert!(!v.is_safe()); // physically open mid-protocol
        v.close().unwrap();
        assert!(v.is_safe());
        assert!(v.can_finish());
    }

    #[test]
    fn dirty_valve_takes_clean_branch() {
        let mut v = MonitoredValve::new(&valve_spec());
        v.set_status(false);
        assert!(!v.test().unwrap());
        v.clean().unwrap();
        assert!(v.can_finish());
        assert!(v.is_safe());
    }

    #[test]
    fn protocol_violation_blocks_hardware_access() {
        let mut v = MonitoredValve::new(&valve_spec());
        // The BadSector bug at runtime: open without test.
        let err = v.open().unwrap_err();
        assert!(matches!(err, DeviceError::Protocol(_)));
        // The control pin was never driven.
        assert!(v.is_safe());
    }

    #[test]
    fn cannot_abandon_open_valve() {
        let mut v = MonitoredValve::new(&valve_spec());
        v.set_status(true);
        v.test().unwrap();
        v.open().unwrap();
        assert!(!v.can_finish());
        assert_eq!(v.history(), ["test", "open"]);
    }
}
