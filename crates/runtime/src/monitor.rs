//! Runtime enforcement of a class specification.
//!
//! Shelley verifies call ordering *statically*; a [`SpecMonitor`] enforces
//! the same operation model *dynamically*, by tracking the set of states
//! the spec automaton could be in and rejecting any invocation that leaves
//! no state alive. This is the typestate-flavored companion the paper's
//! related-work section alludes to: the model drives both analyses.

use shelley_core::spec::{intern_spec_events, spec_automaton, ClassSpec, SpecAutomaton};
use shelley_regular::{Alphabet, Label, StateId, Symbol};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An error raised by the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// The invoked name is not an operation of the class.
    UnknownOperation {
        /// The offending name.
        operation: String,
    },
    /// The operation is not allowed in the current protocol state.
    NotAllowed {
        /// The offending operation.
        operation: String,
        /// Operations that would have been allowed instead.
        allowed: Vec<String>,
    },
    /// `finish` was called while the object is mid-protocol.
    NotFinal {
        /// Operations that could still make progress.
        allowed: Vec<String>,
    },
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::UnknownOperation { operation } => {
                write!(f, "unknown operation `{operation}`")
            }
            MonitorError::NotAllowed { operation, allowed } => write!(
                f,
                "operation `{operation}` not allowed here (allowed: {})",
                allowed.join(", ")
            ),
            MonitorError::NotFinal { allowed } => write!(
                f,
                "object is mid-protocol; cannot finish (allowed next: {})",
                allowed.join(", ")
            ),
        }
    }
}

impl std::error::Error for MonitorError {}

/// A runtime monitor for one object of a `@sys` class.
///
/// # Examples
///
/// ```
/// use shelley_core::Checker;
/// use shelley_runtime::SpecMonitor;
///
/// let checked = Checker::new().check_source(r#"
/// @sys
/// class Led:
///     @op_initial
///     def on(self):
///         return ["off"]
///
///     @op_final
///     def off(self):
///         return ["on"]
/// "#)?;
/// let led = checked.systems.get("Led").unwrap();
/// let mut monitor = SpecMonitor::new(&led.spec);
/// monitor.invoke("on")?;
/// monitor.invoke("off")?;
/// monitor.finish()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpecMonitor {
    alphabet: Arc<Alphabet>,
    automaton: SpecAutomaton,
    /// States from which some accepting state is reachable. The monitor
    /// refuses transitions into dead states: an invocation that could never
    /// be completed to a legal full usage (e.g. one that would strand a
    /// valve open forever) is rejected up front.
    live: Vec<bool>,
    current: BTreeSet<StateId>,
    history: Vec<String>,
}

impl SpecMonitor {
    /// Builds a monitor from a class specification.
    pub fn new(spec: &ClassSpec) -> SpecMonitor {
        let mut ab = Alphabet::new();
        intern_spec_events(spec, None, &mut ab);
        let ab = Arc::new(ab);
        let automaton = spec_automaton(spec, None, ab.clone());
        let live = live_states(&automaton);
        let current = BTreeSet::from([automaton.start()]);
        SpecMonitor {
            alphabet: ab,
            automaton,
            live,
            current,
            history: Vec::new(),
        }
    }

    /// The operations allowed right now (those whose invocation would
    /// succeed — in particular, operations leading only to dead ends are
    /// excluded).
    pub fn allowed(&self) -> Vec<String> {
        let mut out: BTreeSet<&str> = BTreeSet::new();
        for &q in &self.current {
            for &(label, dst) in self.automaton.nfa().edges_from(q) {
                if let Label::Sym(s) = label {
                    if self.live[dst] {
                        out.insert(self.alphabet.name(s));
                    }
                }
            }
        }
        out.into_iter().map(str::to_owned).collect()
    }

    /// Whether the object may stop here (a final operation was last, or it
    /// was never used).
    pub fn can_finish(&self) -> bool {
        self.current
            .iter()
            .any(|&q| self.automaton.nfa().is_accepting(q))
    }

    /// Records an operation invocation.
    ///
    /// # Errors
    ///
    /// [`MonitorError::UnknownOperation`] for names outside the model;
    /// [`MonitorError::NotAllowed`] for protocol violations. On error the
    /// monitor state is unchanged.
    pub fn invoke(&mut self, operation: &str) -> Result<(), MonitorError> {
        let Some(sym) = self.alphabet.lookup(operation) else {
            return Err(MonitorError::UnknownOperation {
                operation: operation.to_owned(),
            });
        };
        let next = self.step(sym);
        if next.is_empty() {
            return Err(MonitorError::NotAllowed {
                operation: operation.to_owned(),
                allowed: self.allowed(),
            });
        }
        self.current = next;
        self.history.push(operation.to_owned());
        Ok(())
    }

    fn step(&self, sym: Symbol) -> BTreeSet<StateId> {
        let mut next = BTreeSet::new();
        for &q in &self.current {
            for &(label, dst) in self.automaton.nfa().edges_from(q) {
                if label == Label::Sym(sym) && self.live[dst] {
                    next.insert(dst);
                }
            }
        }
        next
    }

    /// Declares the object's lifetime over.
    ///
    /// # Errors
    ///
    /// [`MonitorError::NotFinal`] if the protocol is mid-flight.
    pub fn finish(&self) -> Result<(), MonitorError> {
        if self.can_finish() {
            Ok(())
        } else {
            Err(MonitorError::NotFinal {
                allowed: self.allowed(),
            })
        }
    }

    /// The invocations seen so far.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Resets to the initial state, clearing history.
    pub fn reset(&mut self) {
        self.current = BTreeSet::from([self.automaton.start()]);
        self.history.clear();
    }

    /// Replays a full trace and requires it to be a complete usage.
    ///
    /// # Errors
    ///
    /// The first [`MonitorError`] encountered.
    pub fn replay<'a, I: IntoIterator<Item = &'a str>>(
        spec: &ClassSpec,
        trace: I,
    ) -> Result<(), MonitorError> {
        let mut m = SpecMonitor::new(spec);
        for op in trace {
            m.invoke(op)?;
        }
        m.finish()
    }
}

/// Backward reachability from the accepting states.
fn live_states(automaton: &SpecAutomaton) -> Vec<bool> {
    let nfa = automaton.nfa();
    let n = nfa.num_states();
    let mut preds: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for q in 0..n {
        for &(_, dst) in nfa.edges_from(q) {
            preds[dst].push(q);
        }
    }
    let mut live = vec![false; n];
    let mut stack: Vec<StateId> = (0..n).filter(|&q| nfa.is_accepting(q)).collect();
    for &q in &stack {
        live[q] = true;
    }
    while let Some(q) = stack.pop() {
        for &p in &preds[q] {
            if !live[p] {
                live[p] = true;
                stack.push(p);
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_core::Checker;

    const VALVE: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

    fn valve_spec() -> ClassSpec {
        Checker::new()
            .check_source(VALVE)
            .unwrap()
            .systems
            .get("Valve")
            .unwrap()
            .spec
            .clone()
    }

    #[test]
    fn accepts_protocol_conforming_usage() {
        let spec = valve_spec();
        let mut m = SpecMonitor::new(&spec);
        assert!(m.can_finish()); // zero usage legal
        m.invoke("test").unwrap();
        assert!(!m.can_finish());
        m.invoke("open").unwrap();
        m.invoke("close").unwrap();
        assert!(m.can_finish());
        m.invoke("test").unwrap();
        m.invoke("clean").unwrap();
        m.finish().unwrap();
        assert_eq!(m.history().len(), 5);
    }

    #[test]
    fn rejects_open_without_test() {
        let spec = valve_spec();
        let mut m = SpecMonitor::new(&spec);
        let err = m.invoke("open").unwrap_err();
        match err {
            MonitorError::NotAllowed { operation, allowed } => {
                assert_eq!(operation, "open");
                assert_eq!(allowed, vec!["test"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // State unchanged: test still works.
        m.invoke("test").unwrap();
    }

    #[test]
    fn rejects_finish_mid_protocol() {
        let spec = valve_spec();
        let mut m = SpecMonitor::new(&spec);
        m.invoke("test").unwrap();
        m.invoke("open").unwrap();
        let err = m.finish().unwrap_err();
        assert!(matches!(err, MonitorError::NotFinal { .. }));
    }

    #[test]
    fn unknown_operations_rejected() {
        let spec = valve_spec();
        let mut m = SpecMonitor::new(&spec);
        assert!(matches!(
            m.invoke("explode"),
            Err(MonitorError::UnknownOperation { .. })
        ));
    }

    #[test]
    fn allowed_reflects_branching() {
        let spec = valve_spec();
        let mut m = SpecMonitor::new(&spec);
        m.invoke("test").unwrap();
        // After test, either open or clean (depending on the exit taken —
        // the monitor tracks both possibilities).
        assert_eq!(m.allowed(), vec!["clean", "open"]);
    }

    #[test]
    fn replay_helper() {
        let spec = valve_spec();
        SpecMonitor::replay(&spec, ["test", "clean"]).unwrap();
        assert!(SpecMonitor::replay(&spec, ["test", "open"]).is_err());
    }

    #[test]
    fn reset_restores_initial_state() {
        let spec = valve_spec();
        let mut m = SpecMonitor::new(&spec);
        m.invoke("test").unwrap();
        m.reset();
        assert!(m.history().is_empty());
        assert_eq!(m.allowed(), vec!["test"]);
    }
}
