//! Property test: the runtime monitor accepts exactly the prefixes of the
//! static specification language, and `finish` succeeds exactly on full
//! members. Static and dynamic enforcement are two views of one model.

use proptest::prelude::*;
use shelley_core::annotations::OpKind;
use shelley_core::spec::{intern_spec_events, spec_automaton, ClassSpec, ExitSpec, OperationSpec};
use shelley_regular::{Alphabet, Dfa};
use shelley_runtime::SpecMonitor;
use std::sync::Arc;

fn arb_spec() -> impl Strategy<Value = ClassSpec> {
    (2usize..5)
        .prop_flat_map(|n| {
            let exits = proptest::collection::vec(proptest::collection::vec(0..n, 0..3), n);
            (Just(n), exits)
        })
        .prop_map(|(n, targets)| ClassSpec {
            name: "Gen".into(),
            operations: (0..n)
                .map(|i| OperationSpec {
                    name: format!("op{i}"),
                    kind: if i == 0 {
                        OpKind::Initial
                    } else if i == n - 1 {
                        OpKind::Final
                    } else {
                        OpKind::Middle
                    },
                    exits: vec![ExitSpec {
                        next: targets[i].iter().map(|&t| format!("op{t}")).collect(),
                        span: None,
                        implicit: false,
                    }],
                    span: None,
                })
                .collect(),
        })
}

fn arb_trace(nops: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..nops, 0..6)
}

proptest! {
    /// `invoke*` succeeds iff the trace is a prefix of some word the spec
    /// automaton accepts; `finish` succeeds iff the trace itself is
    /// accepted.
    #[test]
    fn monitor_matches_static_language(
        spec in arb_spec(),
        indices in arb_trace(8)
    ) {
        let nops = spec.operations.len();
        let trace: Vec<String> = indices
            .iter()
            .map(|&i| format!("op{}", i % nops))
            .collect();

        // Static side: the spec automaton.
        let mut ab = Alphabet::new();
        intern_spec_events(&spec, None, &mut ab);
        let ab = Arc::new(ab);
        let auto = spec_automaton(&spec, None, ab.clone());
        let dfa = Dfa::from_nfa(auto.nfa());
        let dead = dfa.dead_states();
        let word: Vec<_> = trace
            .iter()
            .map(|n| ab.lookup(n).expect("interned"))
            .collect();

        // Dynamic side: the monitor.
        let mut monitor = SpecMonitor::new(&spec);
        let mut dyn_prefix_ok = true;
        for op in &trace {
            if monitor.invoke(op).is_err() {
                dyn_prefix_ok = false;
                break;
            }
        }

        // Static prefix acceptance: running the DFA must stay live.
        let mut state = dfa.start();
        let mut static_prefix_ok = true;
        for &s in &word {
            state = dfa.step(state, s);
            if dead[state] {
                static_prefix_ok = false;
                break;
            }
        }

        prop_assert_eq!(
            dyn_prefix_ok, static_prefix_ok,
            "prefix disagreement on {:?}", trace
        );
        if dyn_prefix_ok {
            prop_assert_eq!(
                monitor.finish().is_ok(),
                dfa.accepts(&word),
                "completion disagreement on {:?}", trace
            );
        }
    }

    /// `allowed()` is always exactly the set of operations whose invocation
    /// would succeed.
    #[test]
    fn allowed_is_sound_and_complete(
        spec in arb_spec(),
        indices in arb_trace(8)
    ) {
        let nops = spec.operations.len();
        let mut monitor = SpecMonitor::new(&spec);
        for &i in &indices {
            let _ = monitor.invoke(&format!("op{}", i % nops));
        }
        let allowed = monitor.allowed();
        for op in spec.operations.iter().map(|o| o.name.clone()) {
            let mut probe = monitor.clone();
            let succeeds = probe.invoke(&op).is_ok();
            prop_assert_eq!(
                succeeds,
                allowed.contains(&op),
                "allowed() wrong about {}", op
            );
        }
    }
}
