//! Behavior inference (Fig. 4, *Behavior inference*).
//!
//! `⟦p⟧ = (r, s)` maps a program to a regular expression `r` of its ongoing
//! behavior plus a set `s` of returned behaviors; `infer(p)` merges them.
//! Theorem 1/2 of the paper state `l ∈ L(p) ⇔ l ∈ infer(p)` — both
//! directions are exercised by this crate's property tests against the
//! executable trace semantics.
//!
//! Besides the paper-faithful [`denote`]/[`infer`], this module provides
//! [`denote_exits`], which tags every returned behavior with the
//! [`ExitId`](crate::ExitId) of the `return` that produced it. Shelley's
//! model construction (§3.1) needs that association: each return site
//! declares its own set of next operations.

use crate::program::{ExitId, Program};
use shelley_regular::Regex;

/// The denotation `⟦p⟧ = (r, s)`: ongoing behavior and the set of returned
/// behaviors.
///
/// # Examples
///
/// Example 3 of the paper:
///
/// ```
/// use shelley_ir::{denote, Program};
/// use shelley_regular::{Alphabet, Regex};
///
/// let mut ab = Alphabet::new();
/// let (a, b, c) = (ab.intern("a"), ab.intern("b"), ab.intern("c"));
/// let p = Program::loop_(Program::seq(
///     Program::call(a),
///     Program::if_(
///         Program::seq(Program::call(b), Program::ret(0)),
///         Program::call(c),
///     ),
/// ));
/// let (ongoing, returned) = denote(&p);
/// // Ongoing component: (a·(b·∅ + c))*  — simplified to (a·c)* by the
/// // smart constructors since b·∅ = ∅ and ∅+c = c.
/// assert!(ongoing.matches(&[a, c, a, c]));
/// assert!(!ongoing.matches(&[a, b]));
/// // Returned component: (a·(b·∅ + c))*·a·b.
/// assert_eq!(returned.len(), 1);
/// assert!(returned[0].matches(&[a, c, a, b]));
/// ```
pub fn denote(p: &Program) -> (Regex, Vec<Regex>) {
    let (r, s) = denote_exits(p);
    let mut returned: Vec<Regex> = Vec::new();
    for (_, b) in s {
        // Set semantics: deduplicate structurally-equal behaviors.
        if !returned.contains(&b) {
            returned.push(b);
        }
    }
    (r, returned)
}

/// The denotation with returned behaviors tagged by their return site.
///
/// Every `(exit, r)` pair gives the behavior of runs that end at the
/// `return` with id `exit`. Exit ids are unique per `return` node, so each
/// appears at most once.
pub fn denote_exits(p: &Program) -> (Regex, Vec<(ExitId, Regex)>) {
    match p {
        // ⟦f()⟧ = (f, ∅)
        Program::Call(f) => (Regex::sym(*f), Vec::new()),
        // ⟦skip⟧ = (ε, ∅)
        Program::Skip => (Regex::epsilon(), Vec::new()),
        // ⟦return⟧ = (∅, {ε})
        Program::Return(e) => (Regex::empty(), vec![(*e, Regex::epsilon())]),
        // ⟦p1;p2⟧ = (r1·r2, {r1·r | r ∈ s2} ∪ s1)
        Program::Seq(p1, p2) => {
            let (r1, s1) = denote_exits(p1);
            let (r2, s2) = denote_exits(p2);
            let mut s: Vec<(ExitId, Regex)> = s2
                .into_iter()
                .map(|(e, r)| (e, Regex::concat(r1.clone(), r)))
                .collect();
            s.extend(s1);
            (Regex::concat(r1, r2), s)
        }
        // ⟦if(*){p1}else{p2}⟧ = (r1+r2, s1 ∪ s2)
        Program::If(p1, p2) => {
            let (r1, s1) = denote_exits(p1);
            let (r2, s2) = denote_exits(p2);
            let mut s = s1;
            s.extend(s2);
            (Regex::union(r1, r2), s)
        }
        // ⟦loop(*){p1}⟧ = (r1*, {r1*·r | r ∈ s1})
        Program::Loop(p1) => {
            let (r1, s1) = denote_exits(p1);
            let star = Regex::star(r1);
            let s = s1
                .into_iter()
                .map(|(e, r)| (e, Regex::concat(star.clone(), r)))
                .collect();
            (star, s)
        }
    }
}

/// `infer(p) = r + r'₁ + ⋯ + r'ₙ` where `⟦p⟧ = (r, {r'₁, …, r'ₙ})`.
///
/// By Theorems 1 and 2 of the paper, `L(infer(p)) = L(p)` — the behavior of
/// a program is a regular language (Corollary 1).
///
/// # Examples
///
/// ```
/// use shelley_ir::{infer, Program, Status, TraceChecker};
/// use shelley_regular::Alphabet;
///
/// let mut ab = Alphabet::new();
/// let f = ab.intern("f");
/// let p = Program::seq(Program::call(f), Program::ret(0));
/// let behavior = infer(&p);
/// assert!(behavior.matches(&[f]));
/// assert!(!behavior.matches(&[f, f]));
/// ```
pub fn infer(p: &Program) -> Regex {
    let (r, s) = denote(p);
    Regex::union_all(std::iter::once(r).chain(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{enumerate_traces, EnumConfig, Status, TraceChecker};
    use shelley_regular::{Alphabet, Symbol};

    fn example_program() -> (Alphabet, Symbol, Symbol, Symbol, Program) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        let p = Program::loop_(Program::seq(
            Program::call(a),
            Program::if_(
                Program::seq(Program::call(b), Program::ret(0)),
                Program::call(c),
            ),
        ));
        (ab, a, b, c, p)
    }

    #[test]
    fn example3_denotation_shape() {
        let (ab, a, b, c, p) = example_program();
        let (r, s) = denote(&p);
        // With smart constructors, (a·(b·∅+c))* simplifies to (a·c)*.
        assert_eq!(r.display(&ab).to_string(), "(a · c)*");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].display(&ab).to_string(), "(a · c)* · a · b");
        let _ = (a, b, c);
    }

    #[test]
    fn atoms_denotation() {
        let mut ab = Alphabet::new();
        let f = ab.intern("f");
        assert_eq!(denote(&Program::call(f)), (Regex::sym(f), vec![]));
        assert_eq!(denote(&Program::skip()), (Regex::epsilon(), vec![]));
        assert_eq!(
            denote(&Program::ret(3)),
            (Regex::empty(), vec![Regex::epsilon()])
        );
    }

    #[test]
    fn seq_early_return_kept() {
        let mut ab = Alphabet::new();
        let f = ab.intern("f");
        let g = ab.intern("g");
        // if(*){ f(); return } else { skip }; g()
        let p = Program::seq(
            Program::if_(
                Program::seq(Program::call(f), Program::ret(0)),
                Program::skip(),
            ),
            Program::call(g),
        );
        let behavior = infer(&p);
        assert!(behavior.matches(&[f])); // early return path
        assert!(behavior.matches(&[g])); // skip path, ongoing
        assert!(!behavior.matches(&[f, g])); // nothing follows a return
    }

    #[test]
    fn exit_tags_are_preserved_and_unique() {
        let mut ab = Alphabet::new();
        let f = ab.intern("f");
        // loop with exit 1 inside, then exit 2 at the end.
        let p = Program::seq(
            Program::loop_(Program::if_(
                Program::seq(Program::call(f), Program::ret(1)),
                Program::skip(),
            )),
            Program::ret(2),
        );
        let (_, exits) = denote_exits(&p);
        let mut ids: Vec<ExitId> = exits.iter().map(|(e, _)| *e).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        for (e, r) in &exits {
            match e {
                1 => assert!(r.matches(&[f])),
                2 => assert!(r.matches(&[])),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn theorem1_on_bounded_enumeration() {
        let (_, _, _, _, p) = example_program();
        let behavior = infer(&p);
        for (_, trace) in enumerate_traces(&p, EnumConfig::default()) {
            assert!(behavior.matches(&trace), "soundness fails on {trace:?}");
        }
    }

    #[test]
    fn theorem2_on_enumerated_words() {
        use shelley_regular::{Dfa, Nfa};
        use std::sync::Arc;
        let (ab, _, _, _, p) = example_program();
        let behavior = infer(&p);
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&behavior, Arc::new(ab)));
        let checker = TraceChecker::new(&p);
        for word in dfa.enumerate_words(6, 500) {
            assert!(checker.in_language(&word), "completeness fails on {word:?}");
        }
    }

    #[test]
    fn statuses_split_between_components() {
        let (_, a, b, c, p) = example_program();
        let (r, s) = denote(&p);
        let checker = TraceChecker::new(&p);
        // Ongoing traces live in r.
        assert!(r.matches(&[a, c]));
        assert!(checker.derivable(Status::Ongoing, &[a, c]));
        // Returned traces live in s.
        assert!(s[0].matches(&[a, b]));
        assert!(checker.derivable(Status::Returned, &[a, b]));
        // And not vice versa.
        assert!(!r.matches(&[a, b]));
        assert!(!s[0].matches(&[a, c]));
    }
}
