//! Deterministic synthetic-program generation.
//!
//! The benchmark harness sweeps behavior inference and trace checking over
//! programs of controlled size; this module provides a reproducible
//! generator (xorshift PRNG, no external dependencies) so bench runs are
//! comparable across machines.

use crate::program::Program;
use shelley_regular::{Alphabet, Symbol};

/// Deterministic xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeds the generator (`seed` may be any value).
    pub fn new(seed: u64) -> Self {
        SplitMix {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Shape parameters for [`generate_program`].
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Target number of AST nodes (approximate; generation stops growing
    /// once reached).
    pub target_size: usize,
    /// Number of distinct callable symbols.
    pub num_symbols: usize,
    /// Per-mille probability that a grown leaf becomes `return`.
    pub return_weight: usize,
    /// Maximum nesting depth of `if`/`loop`.
    pub max_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            target_size: 50,
            num_symbols: 4,
            return_weight: 100,
            max_depth: 6,
        }
    }
}

/// Generates a pseudo-random program and the alphabet of its call symbols.
///
/// Generation is fully determined by `seed` and `cfg`.
pub fn generate_program(seed: u64, cfg: GenConfig) -> (Alphabet, Program) {
    let mut ab = Alphabet::new();
    let syms: Vec<Symbol> = (0..cfg.num_symbols.max(1))
        .map(|i| ab.intern(&format!("f{i}")))
        .collect();
    let mut rng = SplitMix::new(seed);
    let mut exit_counter = 0usize;
    let mut budget = cfg.target_size.max(1);
    let mut p = gen_node(&mut rng, &syms, cfg, 0, &mut budget, &mut exit_counter);
    // Keep sequencing fresh subtrees until the size target is reached, so
    // `target_size` is honored regardless of how the first roll lands.
    while p.size() + 1 < cfg.target_size {
        let mut budget = cfg.target_size - p.size();
        let q = gen_node(&mut rng, &syms, cfg, 0, &mut budget, &mut exit_counter);
        p = Program::seq(p, q);
    }
    (ab, p)
}

fn gen_node(
    rng: &mut SplitMix,
    syms: &[Symbol],
    cfg: GenConfig,
    depth: usize,
    budget: &mut usize,
    exits: &mut usize,
) -> Program {
    if *budget <= 1 || depth >= cfg.max_depth {
        return gen_leaf(rng, syms, cfg, exits);
    }
    *budget = budget.saturating_sub(1);
    match rng.below(100) {
        // Sequencing dominates, as in real method bodies.
        0..=49 => {
            let a = gen_node(rng, syms, cfg, depth, budget, exits);
            let b = gen_node(rng, syms, cfg, depth, budget, exits);
            Program::seq(a, b)
        }
        50..=69 => {
            let a = gen_node(rng, syms, cfg, depth + 1, budget, exits);
            let b = gen_node(rng, syms, cfg, depth + 1, budget, exits);
            Program::if_(a, b)
        }
        70..=79 => {
            let body = gen_node(rng, syms, cfg, depth + 1, budget, exits);
            Program::loop_(body)
        }
        _ => gen_leaf(rng, syms, cfg, exits),
    }
}

fn gen_leaf(rng: &mut SplitMix, syms: &[Symbol], cfg: GenConfig, exits: &mut usize) -> Program {
    let roll = rng.below(1000);
    if roll < cfg.return_weight {
        let e = *exits;
        *exits += 1;
        Program::ret(e)
    } else if roll < cfg.return_weight + 100 {
        Program::skip()
    } else {
        Program::call(syms[rng.below(syms.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer;
    use crate::semantics::{enumerate_traces, EnumConfig};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let (_, p1) = generate_program(42, cfg);
        let (_, p2) = generate_program(42, cfg);
        assert_eq!(p1, p2);
        let (_, p3) = generate_program(43, cfg);
        assert_ne!(p1, p3);
    }

    #[test]
    fn generated_programs_scale_with_target() {
        let small = generate_program(
            7,
            GenConfig {
                target_size: 10,
                ..GenConfig::default()
            },
        )
        .1
        .size();
        let large = generate_program(
            7,
            GenConfig {
                target_size: 400,
                ..GenConfig::default()
            },
        )
        .1
        .size();
        assert!(large > small, "large={large} small={small}");
    }

    #[test]
    fn generated_programs_satisfy_theorem1() {
        for seed in 0..20 {
            let (_, p) = generate_program(seed, GenConfig::default());
            let behavior = infer(&p);
            let cfg = EnumConfig {
                max_len: 4,
                max_iters: 2,
                max_traces: 500,
            };
            for (_, trace) in enumerate_traces(&p, cfg) {
                assert!(
                    behavior.matches(&trace),
                    "seed {seed}: trace {trace:?} not in inferred behavior"
                );
            }
        }
    }

    #[test]
    fn exit_ids_are_distinct() {
        let (_, p) = generate_program(
            11,
            GenConfig {
                target_size: 200,
                return_weight: 300,
                ..GenConfig::default()
            },
        );
        let mut exits = p.exits();
        let len = exits.len();
        exits.sort_unstable();
        exits.dedup();
        assert_eq!(exits.len(), len);
    }
}
