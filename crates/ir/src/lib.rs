//! # shelley-ir
//!
//! Executable formalization of the calculus from *Formalizing Model
//! Inference of MicroPython* (DSN-W 2023), §3.2 / Fig. 4.
//!
//! The paper abstracts MicroPython method bodies into a small imperative
//! language that keeps only control flow and calls on constrained objects:
//!
//! ```text
//! p ::= f() | skip | return | p;p | if(*){p} else {p} | loop(*){p}
//! s ::= 0 | R
//! ```
//!
//! This crate provides:
//!
//! * [`Program`] — the syntax, with builder helpers and the paper's
//!   concrete rendering;
//! * [`TraceChecker`] / [`enumerate_traces`] — the trace semantics
//!   `s ⊢ l ∈ p` as an exact decision procedure and a bounded enumerator;
//! * [`denote`] / [`infer`] — the behavior inference `⟦p⟧ = (r, s)` and
//!   `infer(p)`, plus the exit-tagged [`denote_exits`] used by Shelley's
//!   model construction;
//! * [`generate`] — deterministic synthetic programs for benchmarks.
//!
//! The paper's Theorem 1 (soundness), Theorem 2 (completeness) and
//! Corollary 1 (regularity) are exercised executably by this crate's test
//! suite: every enumerated semantic trace is matched by the inferred
//! regular expression, and every word of the inferred expression is
//! derivable in the semantics.
//!
//! # Example
//!
//! ```
//! use shelley_ir::{infer, Program, Status, TraceChecker};
//! use shelley_regular::Alphabet;
//!
//! let mut ab = Alphabet::new();
//! let (a, b, c) = (ab.intern("a"), ab.intern("b"), ab.intern("c"));
//! // Examples 1–3 of the paper:
//! // loop(*){ a(); if(*){ b(); return } else { c() } }
//! let p = Program::loop_(Program::seq(
//!     Program::call(a),
//!     Program::if_(
//!         Program::seq(Program::call(b), Program::ret(0)),
//!         Program::call(c),
//!     ),
//! ));
//! let checker = TraceChecker::new(&p);
//! assert!(checker.derivable(Status::Ongoing, &[a, c, a, c]));   // Example 1
//! assert!(checker.derivable(Status::Returned, &[a, c, a, b]));  // Example 2
//! let behavior = infer(&p);                                     // Example 3
//! assert!(behavior.matches(&[a, c, a, c]));
//! assert!(behavior.matches(&[a, c, a, b]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
mod infer;
mod parser;
mod program;
mod semantics;

pub use infer::{denote, denote_exits, infer};
pub use parser::{parse_program, ParseProgramError};
pub use program::{DisplayProgram, ExitId, Program};
pub use semantics::{enumerate_traces, EnumConfig, Status, TraceChecker};
