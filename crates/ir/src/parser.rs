//! Parser for the paper's concrete program syntax.
//!
//! ```text
//! p ::= f() | skip | return | p; p | if(*) { p } else { p } | loop(*) { p }
//! ```
//!
//! This is the exact notation Fig. 4 uses, so formal examples can be
//! written down verbatim in tests, benches, and the REPL-style tooling:
//!
//! ```
//! use shelley_ir::{parse_program, Status, TraceChecker};
//! use shelley_regular::Alphabet;
//!
//! let mut ab = Alphabet::new();
//! let p = parse_program(
//!     "loop(*) { a(); if(*) { b(); return } else { c() } }",
//!     &mut ab,
//! )?;
//! let a = ab.lookup("a").unwrap();
//! let c = ab.lookup("c").unwrap();
//! assert!(TraceChecker::new(&p).derivable(Status::Ongoing, &[a, c]));
//! # Ok::<(), shelley_ir::ParseProgramError>(())
//! ```

use crate::program::Program;
use shelley_regular::Alphabet;
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseProgramError {}

/// Parses the paper's concrete syntax, interning call names into
/// `alphabet`. Each `return` receives a fresh exit id in source order.
///
/// # Errors
///
/// Returns [`ParseProgramError`] on malformed syntax.
pub fn parse_program(input: &str, alphabet: &mut Alphabet) -> Result<Program, ParseProgramError> {
    let mut p = Parser {
        input,
        chars: input.char_indices().collect(),
        pos: 0,
        alphabet,
        exits: 0,
    };
    p.skip_ws();
    let program = p.sequence()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(program)
}

struct Parser<'a> {
    input: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    alphabet: &'a mut Alphabet,
    exits: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.input.len(), |&(o, _)| o)
    }

    fn error(&self, message: &str) -> ParseProgramError {
        ParseProgramError {
            offset: self.offset(),
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, text: &str) -> bool {
        let mut i = self.pos;
        for expected in text.chars() {
            match self.chars.get(i) {
                Some(&(_, c)) if c == expected => i += 1,
                _ => return false,
            }
        }
        self.pos = i;
        true
    }

    fn expect(&mut self, text: &str) -> Result<(), ParseProgramError> {
        if self.eat(text) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn peek_word(&self) -> Option<String> {
        let c = self.peek()?;
        if !(c.is_ascii_alphabetic() || c == '_') {
            return None;
        }
        let mut out = String::new();
        let mut i = self.pos;
        while let Some(&(_, c)) = self.chars.get(i) {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                out.push(c);
                i += 1;
            } else {
                break;
            }
        }
        Some(out)
    }

    fn sequence(&mut self) -> Result<Program, ParseProgramError> {
        let mut items = vec![self.atom()?];
        loop {
            self.skip_ws();
            if self.eat(";") {
                self.skip_ws();
                // Allow a trailing semicolon before a closing brace.
                if matches!(self.peek(), Some('}') | None) {
                    break;
                }
                items.push(self.atom()?);
            } else {
                break;
            }
        }
        Ok(Program::seq_all(items))
    }

    fn atom(&mut self) -> Result<Program, ParseProgramError> {
        self.skip_ws();
        let Some(word) = self.peek_word() else {
            return Err(self.error("expected a program"));
        };
        match word.as_str() {
            "skip" => {
                self.pos += word.chars().count();
                Ok(Program::skip())
            }
            "return" => {
                self.pos += word.chars().count();
                let exit = self.exits;
                self.exits += 1;
                Ok(Program::ret(exit))
            }
            "if" => {
                self.pos += word.chars().count();
                self.skip_ws();
                self.expect("(")?;
                self.skip_ws();
                self.expect("*")?;
                self.skip_ws();
                self.expect(")")?;
                self.skip_ws();
                self.expect("{")?;
                let then = self.sequence()?;
                self.skip_ws();
                self.expect("}")?;
                self.skip_ws();
                self.expect("else")?;
                self.skip_ws();
                self.expect("{")?;
                let orelse = self.sequence()?;
                self.skip_ws();
                self.expect("}")?;
                Ok(Program::if_(then, orelse))
            }
            "loop" => {
                self.pos += word.chars().count();
                self.skip_ws();
                self.expect("(")?;
                self.skip_ws();
                self.expect("*")?;
                self.skip_ws();
                self.expect(")")?;
                self.skip_ws();
                self.expect("{")?;
                let body = self.sequence()?;
                self.skip_ws();
                self.expect("}")?;
                Ok(Program::loop_(body))
            }
            "else" => Err(self.error("`else` without a matching `if`")),
            name => {
                self.pos += word.chars().count();
                self.skip_ws();
                self.expect("(")?;
                self.skip_ws();
                self.expect(")")?;
                Ok(Program::call(self.alphabet.intern(name)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer;
    use crate::semantics::{Status, TraceChecker};

    #[test]
    fn parses_the_fig4_example() {
        let mut ab = Alphabet::new();
        let p = parse_program(
            "loop(*) { a(); if(*) { b(); return } else { c() } }",
            &mut ab,
        )
        .unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        let checker = TraceChecker::new(&p);
        assert!(checker.derivable(Status::Ongoing, &[a, c, a, c]));
        assert!(checker.derivable(Status::Returned, &[a, c, a, b]));
    }

    #[test]
    fn display_parse_roundtrip() {
        let mut ab = Alphabet::new();
        let sources = [
            "skip",
            "return",
            "f()",
            "f(); g(); return",
            "if(*) { f() } else { skip }",
            "loop(*) { f(); if(*) { return } else { g() } }",
        ];
        for src in sources {
            let p = parse_program(src, &mut ab).unwrap();
            let shown = p.display(&ab).to_string();
            let mut ab2 = ab.clone();
            let p2 = parse_program(&shown, &mut ab2).unwrap();
            // Compare behaviors, since exit ids may renumber.
            let b1 = infer(&p);
            let b2 = infer(&p2);
            for word in [vec![], ab.lookup("f").into_iter().collect::<Vec<_>>()] {
                assert_eq!(b1.matches(&word), b2.matches(&word), "{src}");
            }
        }
    }

    #[test]
    fn exit_ids_count_up() {
        let mut ab = Alphabet::new();
        let p = parse_program(
            "if(*) { return } else { if(*) { return } else { return } }",
            &mut ab,
        )
        .unwrap();
        assert_eq!(p.exits(), vec![0, 1, 2]);
    }

    #[test]
    fn errors_with_offsets() {
        let mut ab = Alphabet::new();
        assert!(parse_program("if(*) { f() }", &mut ab).is_err()); // missing else
        assert!(parse_program("f(", &mut ab).is_err());
        assert!(parse_program("loop() { f() }", &mut ab).is_err()); // missing *
        assert!(parse_program("f() g()", &mut ab).is_err()); // missing ;
    }

    #[test]
    fn dotted_names_are_calls() {
        let mut ab = Alphabet::new();
        let p = parse_program("a.open(); a.close()", &mut ab).unwrap();
        assert_eq!(p.calls().len(), 2);
        assert!(ab.lookup("a.open").is_some());
    }
}
