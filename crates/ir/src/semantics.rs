//! The trace semantics of the calculus (Fig. 4, *Semantics*).
//!
//! The judgment `s ⊢ l ∈ p` states that trace `l` is output by program `p`
//! with status `s`, where `s` is `0` (ongoing) or `R` (returned). This
//! module provides two executable views of the judgment:
//!
//! * [`TraceChecker`] — an exact decision procedure for
//!   `s ⊢ l ∈ p` (given a concrete trace), implementing each inference rule
//!   directly with memoization;
//! * [`enumerate_traces`] — a bounded enumerator producing every derivable
//!   `(s, l)` up to a trace-length/loop-unrolling budget.
//!
//! Together with behavior inference these let the test suite check the
//! paper's Theorem 1 (soundness) and Theorem 2 (completeness) executably.

use crate::program::Program;
use shelley_regular::{Symbol, Word};
use std::collections::{BTreeSet, HashMap};

/// The status of a trace: the paper's `s ::= 0 | R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Status {
    /// `0` — the trace is ongoing and can be sequenced further.
    Ongoing,
    /// `R` — the program has returned; nothing may follow.
    Returned,
}

/// An exact decision procedure for the judgment `s ⊢ l ∈ p`.
///
/// The checker indexes the program's AST nodes once and memoizes
/// sub-derivations on `(node, status, trace-slice)`, so deciding a trace of
/// length *n* over a program of size *m* is polynomial (roughly
/// `O(m·n²)` with loop-closure computation).
///
/// # Examples
///
/// Example 1 and Example 2 of the paper:
///
/// ```
/// use shelley_ir::{Program, Status, TraceChecker};
/// use shelley_regular::Alphabet;
///
/// let mut ab = Alphabet::new();
/// let (a, b, c) = (ab.intern("a"), ab.intern("b"), ab.intern("c"));
/// // loop(*){ a(); if(*){ b(); return } else { c() } }
/// let p = Program::loop_(Program::seq(
///     Program::call(a),
///     Program::if_(
///         Program::seq(Program::call(b), Program::ret(0)),
///         Program::call(c),
///     ),
/// ));
/// let checker = TraceChecker::new(&p);
/// // Example 1: 0 ⊢ [a,c,a,c]
/// assert!(checker.derivable(Status::Ongoing, &[a, c, a, c]));
/// // Example 2: R ⊢ [a,c,a,b]
/// assert!(checker.derivable(Status::Returned, &[a, c, a, b]));
/// ```
#[derive(Debug)]
pub struct TraceChecker<'p> {
    root: usize,
    nodes: Vec<&'p Program>,
}

impl<'p> TraceChecker<'p> {
    /// Indexes `program` for trace checking.
    pub fn new(program: &'p Program) -> Self {
        let mut nodes = Vec::new();
        index_nodes(program, &mut nodes);
        TraceChecker { root: 0, nodes }
    }

    /// Decides `status ⊢ trace ∈ program`.
    pub fn derivable(&self, status: Status, trace: &[Symbol]) -> bool {
        let mut ctx = CheckCtx {
            nodes: &self.nodes,
            word: trace,
            memo: HashMap::new(),
            closures: HashMap::new(),
        };
        ctx.check(self.root, status, 0, trace.len())
    }

    /// Decides `trace ∈ L(p)` (Definition 1: some status derives it).
    pub fn in_language(&self, trace: &[Symbol]) -> bool {
        self.derivable(Status::Ongoing, trace) || self.derivable(Status::Returned, trace)
    }
}

fn index_nodes<'p>(p: &'p Program, nodes: &mut Vec<&'p Program>) {
    nodes.push(p);
    match p {
        Program::Call(_) | Program::Skip | Program::Return(_) => {}
        Program::Seq(a, b) | Program::If(a, b) => {
            index_nodes(a, nodes);
            index_nodes(b, nodes);
        }
        Program::Loop(a) => index_nodes(a, nodes),
    }
}

/// Finds the node ids of the two direct children (children are laid out
/// immediately after their parent in pre-order; the second child follows the
/// first child's whole subtree).
fn child_ids(nodes: &[&Program], id: usize) -> (usize, usize) {
    let first = id + 1;
    let second = first + nodes[first].size();
    (first, second)
}

struct CheckCtx<'a, 'p> {
    nodes: &'a [&'p Program],
    word: &'a [Symbol],
    memo: HashMap<(usize, Status, usize, usize), bool>,
    /// `closures[(loop_id, i)]` = positions reachable from `i` by ongoing
    /// segments of the loop body.
    closures: HashMap<(usize, usize), Vec<usize>>,
}

impl CheckCtx<'_, '_> {
    fn check(&mut self, id: usize, status: Status, i: usize, j: usize) -> bool {
        if let Some(&r) = self.memo.get(&(id, status, i, j)) {
            return r;
        }
        // Mark in-progress as false to break (impossible) cycles safely.
        self.memo.insert((id, status, i, j), false);
        let result = self.check_uncached(id, status, i, j);
        self.memo.insert((id, status, i, j), result);
        result
    }

    fn check_uncached(&mut self, id: usize, status: Status, i: usize, j: usize) -> bool {
        match self.nodes[id] {
            // Rule CALL: 0 ⊢ [f] ∈ f().
            Program::Call(f) => status == Status::Ongoing && j == i + 1 && self.word[i] == *f,
            // Rule SKIP: 0 ⊢ [] ∈ skip.
            Program::Skip => status == Status::Ongoing && i == j,
            // Rule RETURN: R ⊢ [] ∈ return.
            Program::Return(_) => status == Status::Returned && i == j,
            Program::Seq(..) => {
                let (p1, p2) = child_ids(self.nodes, id);
                // Rule SEQ-1: R ⊢ l ∈ p1 ⟹ R ⊢ l ∈ p1;p2.
                if status == Status::Returned && self.check(p1, Status::Returned, i, j) {
                    return true;
                }
                // Rule SEQ-2: 0 ⊢ l1 ∈ p1 ∧ s ⊢ l2 ∈ p2 ⟹ s ⊢ l1·l2.
                (i..=j)
                    .any(|k| self.check(p1, Status::Ongoing, i, k) && self.check(p2, status, k, j))
            }
            Program::If(..) => {
                let (p1, p2) = child_ids(self.nodes, id);
                // Rules IF-1 / IF-2.
                self.check(p1, status, i, j) || self.check(p2, status, i, j)
            }
            Program::Loop(..) => {
                let body = id + 1;
                let reachable = self.closure0(id, body, i, j);
                match status {
                    // LOOP-1 ∪ LOOP-3(0): j reachable by ongoing segments.
                    Status::Ongoing => reachable.contains(&j),
                    // LOOP-2 ∪ LOOP-3(R): ongoing segments then an R-segment.
                    Status::Returned => reachable
                        .iter()
                        .any(|&k| self.check(body, Status::Returned, k, j)),
                }
            }
        }
    }

    /// Positions reachable from `i` (bounded by `j`) through zero or more
    /// ongoing segments of the loop body.
    fn closure0(&mut self, loop_id: usize, body: usize, i: usize, j: usize) -> Vec<usize> {
        if let Some(c) = self.closures.get(&(loop_id, i)) {
            return c.iter().copied().filter(|&k| k <= j).collect();
        }
        let n = self.word.len();
        let mut reachable = vec![false; n + 1];
        reachable[i] = true;
        let mut stack = vec![i];
        while let Some(k) = stack.pop() {
            // Strictly-progressing segments only: an empty ongoing segment
            // never reaches a new position. (Indexing, not iterating:
            // `reachable` is also written inside the loop.)
            #[allow(clippy::needless_range_loop)]
            for k2 in (k + 1)..=n {
                if !reachable[k2] && self.check(body, Status::Ongoing, k, k2) {
                    reachable[k2] = true;
                    stack.push(k2);
                }
            }
        }
        let positions: Vec<usize> = (i..=n).filter(|&k| reachable[k]).collect();
        self.closures.insert((loop_id, i), positions.clone());
        positions.into_iter().filter(|&k| k <= j).collect()
    }
}

/// Budget for [`enumerate_traces`].
#[derive(Debug, Clone, Copy)]
pub struct EnumConfig {
    /// Maximum trace length to keep.
    pub max_len: usize,
    /// Maximum number of loop iterations to unroll.
    pub max_iters: usize,
    /// Cap on the number of distinct traces retained per subprogram.
    pub max_traces: usize,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            max_len: 6,
            max_iters: 3,
            max_traces: 10_000,
        }
    }
}

/// Enumerates derivable `(status, trace)` pairs of `program` within the
/// budget.
///
/// The result is an *under-approximation* of the semantics: every returned
/// pair is derivable, and every derivable pair within the budget (trace no
/// longer than `max_len`, loops unrolled at most `max_iters` times, no cap
/// overflow) is present.
pub fn enumerate_traces(program: &Program, cfg: EnumConfig) -> BTreeSet<(Status, Word)> {
    match program {
        Program::Call(f) => BTreeSet::from([(Status::Ongoing, vec![*f])]),
        Program::Skip => BTreeSet::from([(Status::Ongoing, Vec::new())]),
        Program::Return(_) => BTreeSet::from([(Status::Returned, Vec::new())]),
        Program::Seq(p1, p2) => {
            let t1 = enumerate_traces(p1, cfg);
            let t2 = enumerate_traces(p2, cfg);
            let mut out = BTreeSet::new();
            for (s1, l1) in &t1 {
                match s1 {
                    Status::Returned => {
                        out.insert((Status::Returned, l1.clone()));
                    }
                    Status::Ongoing => {
                        for (s2, l2) in &t2 {
                            if l1.len() + l2.len() <= cfg.max_len {
                                let mut l = l1.clone();
                                l.extend_from_slice(l2);
                                out.insert((*s2, l));
                            }
                        }
                    }
                }
                if out.len() > cfg.max_traces {
                    break;
                }
            }
            out
        }
        Program::If(p1, p2) => {
            let mut out = enumerate_traces(p1, cfg);
            out.extend(enumerate_traces(p2, cfg));
            out
        }
        Program::Loop(body) => {
            let t = enumerate_traces(body, cfg);
            let mut out: BTreeSet<(Status, Word)> = BTreeSet::from([(Status::Ongoing, Vec::new())]);
            let mut ongoing: BTreeSet<Word> = BTreeSet::from([Vec::new()]);
            for _ in 0..cfg.max_iters {
                let mut next_ongoing = BTreeSet::new();
                for prefix in &ongoing {
                    for (s, l) in &t {
                        if prefix.len() + l.len() > cfg.max_len {
                            continue;
                        }
                        let mut full = prefix.clone();
                        full.extend_from_slice(l);
                        match s {
                            Status::Ongoing => {
                                next_ongoing.insert(full);
                            }
                            Status::Returned => {
                                out.insert((Status::Returned, full));
                            }
                        }
                    }
                }
                for l in &next_ongoing {
                    out.insert((Status::Ongoing, l.clone()));
                }
                if next_ongoing.is_empty() || out.len() > cfg.max_traces {
                    break;
                }
                ongoing = next_ongoing;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_regular::Alphabet;

    fn example_program() -> (Alphabet, Symbol, Symbol, Symbol, Program) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        let p = Program::loop_(Program::seq(
            Program::call(a),
            Program::if_(
                Program::seq(Program::call(b), Program::ret(0)),
                Program::call(c),
            ),
        ));
        (ab, a, b, c, p)
    }

    #[test]
    fn paper_example_1_ongoing() {
        let (_, a, _, c, p) = example_program();
        let checker = TraceChecker::new(&p);
        assert!(checker.derivable(Status::Ongoing, &[a, c, a, c]));
    }

    #[test]
    fn paper_example_2_returned() {
        let (_, a, b, c, p) = example_program();
        let checker = TraceChecker::new(&p);
        assert!(checker.derivable(Status::Returned, &[a, c, a, b]));
        // The same trace is NOT ongoing (b is only followed by return).
        assert!(!checker.derivable(Status::Ongoing, &[a, c, a, b]));
    }

    #[test]
    fn nothing_follows_a_return() {
        let (_, a, b, c, p) = example_program();
        let checker = TraceChecker::new(&p);
        assert!(!checker.in_language(&[a, b, a]));
        assert!(!checker.in_language(&[a, b, c]));
    }

    #[test]
    fn rules_for_atoms() {
        let mut ab = Alphabet::new();
        let f = ab.intern("f");
        let call = Program::call(f);
        let c = TraceChecker::new(&call);
        assert!(c.derivable(Status::Ongoing, &[f]));
        assert!(!c.derivable(Status::Returned, &[f]));
        assert!(!c.derivable(Status::Ongoing, &[]));

        let skip = Program::skip();
        let c = TraceChecker::new(&skip);
        assert!(c.derivable(Status::Ongoing, &[]));
        assert!(!c.derivable(Status::Returned, &[]));

        let ret = Program::ret(0);
        let c = TraceChecker::new(&ret);
        assert!(c.derivable(Status::Returned, &[]));
        assert!(!c.derivable(Status::Ongoing, &[]));
    }

    #[test]
    fn seq_early_return_discards_continuation() {
        let mut ab = Alphabet::new();
        let f = ab.intern("f");
        let g = ab.intern("g");
        // (return ; g()): R ⊢ [] by SEQ-1; g never runs.
        let p = Program::seq(Program::ret(0), Program::call(g));
        let c = TraceChecker::new(&p);
        assert!(c.derivable(Status::Returned, &[]));
        assert!(!c.in_language(&[g]));
        let _ = f;
    }

    #[test]
    fn loop_can_return_from_body() {
        let mut ab = Alphabet::new();
        let f = ab.intern("f");
        // loop(*){ if(*){ f() } else { return } }
        let p = Program::loop_(Program::if_(Program::call(f), Program::ret(0)));
        let c = TraceChecker::new(&p);
        assert!(c.derivable(Status::Ongoing, &[]));
        assert!(c.derivable(Status::Returned, &[]));
        assert!(c.derivable(Status::Returned, &[f, f]));
        assert!(c.derivable(Status::Ongoing, &[f, f, f]));
    }

    #[test]
    fn nullable_loop_body_terminates() {
        // loop(*){ skip } must not diverge and accepts only the empty
        // ongoing trace.
        let p = Program::loop_(Program::skip());
        let c = TraceChecker::new(&p);
        assert!(c.derivable(Status::Ongoing, &[]));
        assert!(!c.derivable(Status::Returned, &[]));
    }

    #[test]
    fn enumeration_matches_checker() {
        let (_, _, _, _, p) = example_program();
        let checker = TraceChecker::new(&p);
        let traces = enumerate_traces(&p, EnumConfig::default());
        assert!(!traces.is_empty());
        for (s, l) in &traces {
            assert!(checker.derivable(*s, l), "{s:?} {l:?} not derivable");
        }
    }

    #[test]
    fn enumeration_contains_paper_examples() {
        let (_, a, b, c, p) = example_program();
        let traces = enumerate_traces(&p, EnumConfig::default());
        assert!(traces.contains(&(Status::Ongoing, vec![a, c, a, c])));
        assert!(traces.contains(&(Status::Returned, vec![a, c, a, b])));
        assert!(traces.contains(&(Status::Returned, vec![a, b])));
        assert!(traces.contains(&(Status::Ongoing, vec![])));
    }

    #[test]
    fn enumeration_respects_max_len() {
        let mut ab = Alphabet::new();
        let f = ab.intern("f");
        let p = Program::loop_(Program::call(f));
        let cfg = EnumConfig {
            max_len: 3,
            max_iters: 10,
            max_traces: 1000,
        };
        let traces = enumerate_traces(&p, cfg);
        assert!(traces.iter().all(|(_, l)| l.len() <= 3));
        assert!(traces.contains(&(Status::Ongoing, vec![f, f, f])));
    }
}
