//! The paper's imperative calculus (Fig. 4, *Syntax*).
//!
//! ```text
//! p ::= f() | skip | return | p;p | if(*){p} else {p} | loop(*){p}
//! ```
//!
//! Programs abstract MicroPython method bodies: only control flow and calls
//! on constrained objects remain; conditions, loop bounds and values are
//! erased (`if(*)` is a nondeterministic choice, `loop(*)` runs an unknown
//! number of iterations).

use shelley_regular::{Alphabet, Symbol};
use std::fmt;

/// Identifier of a `return` site (an *exit point* in the terminology of
/// §3.1's method-dependency graph).
///
/// The paper's inference collects returned behaviors as a set; Shelley
/// additionally needs to know *which* return produced each behavior, because
/// every return site declares its own set of next operations. Exit ids give
/// that association while keeping the paper-faithful functions oblivious to
/// them.
pub type ExitId = usize;

/// A program of the source calculus.
///
/// # Examples
///
/// The program of Examples 1–3 of the paper:
/// `loop(*){ a(); if(*){ b(); return } else { c() } }`:
///
/// ```
/// use shelley_ir::Program;
/// use shelley_regular::Alphabet;
///
/// let mut ab = Alphabet::new();
/// let (a, b, c) = (ab.intern("a"), ab.intern("b"), ab.intern("c"));
/// let p = Program::loop_(Program::seq(
///     Program::call(a),
///     Program::if_(
///         Program::seq(Program::call(b), Program::ret(0)),
///         Program::call(c),
///     ),
/// ));
/// assert_eq!(
///     p.display(&ab).to_string(),
///     "loop(*) { a(); if(*) { b(); return } else { c() } }"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Program {
    /// A method call `f()`; arguments are discarded by the abstraction.
    Call(Symbol),
    /// Any MicroPython instruction of no interest to the analysis.
    Skip,
    /// A `return`; the value is ignored at this stage of the analysis. The
    /// [`ExitId`] identifies the return site.
    Return(ExitId),
    /// Sequencing `p₁; p₂`.
    Seq(Box<Program>, Box<Program>),
    /// Nondeterministic choice `if(*){p₁} else {p₂}`.
    If(Box<Program>, Box<Program>),
    /// A loop running an unknown number of iterations, `loop(*){p}`.
    Loop(Box<Program>),
}

impl Program {
    /// A call `f()`.
    pub fn call(f: Symbol) -> Self {
        Program::Call(f)
    }

    /// The no-op `skip`.
    pub fn skip() -> Self {
        Program::Skip
    }

    /// A `return` at exit site `exit`.
    pub fn ret(exit: ExitId) -> Self {
        Program::Return(exit)
    }

    /// Sequencing.
    pub fn seq(p1: Program, p2: Program) -> Self {
        Program::Seq(Box::new(p1), Box::new(p2))
    }

    /// Sequences all programs in order (`skip` for an empty sequence).
    pub fn seq_all<I: IntoIterator<Item = Program>>(items: I) -> Self {
        let mut iter = items.into_iter();
        let first = match iter.next() {
            Some(p) => p,
            None => return Program::Skip,
        };
        iter.fold(first, Program::seq)
    }

    /// Nondeterministic conditional.
    pub fn if_(p1: Program, p2: Program) -> Self {
        Program::If(Box::new(p1), Box::new(p2))
    }

    /// N-way nondeterministic choice (right-nested conditionals).
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn choice<I: IntoIterator<Item = Program>>(branches: I) -> Self {
        let mut items: Vec<Program> = branches.into_iter().collect();
        assert!(!items.is_empty(), "choice over zero branches");
        let mut acc = items.pop().expect("nonempty");
        while let Some(p) = items.pop() {
            acc = Program::if_(p, acc);
        }
        acc
    }

    /// A loop.
    pub fn loop_(body: Program) -> Self {
        Program::Loop(Box::new(body))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Program::Call(_) | Program::Skip | Program::Return(_) => 1,
            Program::Seq(a, b) | Program::If(a, b) => 1 + a.size() + b.size(),
            Program::Loop(a) => 1 + a.size(),
        }
    }

    /// All exit ids occurring in the program, in source order.
    pub fn exits(&self) -> Vec<ExitId> {
        let mut out = Vec::new();
        self.collect_exits(&mut out);
        out
    }

    fn collect_exits(&self, out: &mut Vec<ExitId>) {
        match self {
            Program::Return(e) => out.push(*e),
            Program::Call(_) | Program::Skip => {}
            Program::Seq(a, b) | Program::If(a, b) => {
                a.collect_exits(out);
                b.collect_exits(out);
            }
            Program::Loop(a) => a.collect_exits(out),
        }
    }

    /// All called symbols, in source order (with duplicates).
    pub fn calls(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_calls(&mut out);
        out
    }

    fn collect_calls(&self, out: &mut Vec<Symbol>) {
        match self {
            Program::Call(f) => out.push(*f),
            Program::Skip | Program::Return(_) => {}
            Program::Seq(a, b) | Program::If(a, b) => {
                a.collect_calls(out);
                b.collect_calls(out);
            }
            Program::Loop(a) => a.collect_calls(out),
        }
    }

    /// Renders the program in the paper's concrete syntax.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> DisplayProgram<'a> {
        DisplayProgram {
            program: self,
            alphabet,
        }
    }
}

/// Pretty-printer returned by [`Program::display`].
#[derive(Debug)]
pub struct DisplayProgram<'a> {
    program: &'a Program,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayProgram<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_program(f, self.program, self.alphabet)
    }
}

fn write_program(f: &mut fmt::Formatter<'_>, p: &Program, ab: &Alphabet) -> fmt::Result {
    match p {
        Program::Call(s) => write!(f, "{}()", ab.name(*s)),
        Program::Skip => write!(f, "skip"),
        Program::Return(_) => write!(f, "return"),
        Program::Seq(a, b) => {
            write_program(f, a, ab)?;
            write!(f, "; ")?;
            write_program(f, b, ab)
        }
        Program::If(a, b) => {
            write!(f, "if(*) {{ ")?;
            write_program(f, a, ab)?;
            write!(f, " }} else {{ ")?;
            write_program(f, b, ab)?;
            write!(f, " }}")
        }
        Program::Loop(a) => {
            write!(f, "loop(*) {{ ")?;
            write_program(f, a, ab)?;
            write!(f, " }}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> (Alphabet, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        (ab, a, b)
    }

    #[test]
    fn seq_all_of_empty_is_skip() {
        assert_eq!(Program::seq_all([]), Program::Skip);
    }

    #[test]
    fn choice_builds_nested_ifs() {
        let (_, a, b) = ab();
        let c = Program::choice([Program::call(a), Program::call(b), Program::skip()]);
        assert_eq!(
            c,
            Program::if_(
                Program::call(a),
                Program::if_(Program::call(b), Program::skip())
            )
        );
    }

    #[test]
    #[should_panic(expected = "zero branches")]
    fn choice_rejects_empty() {
        let _ = Program::choice([]);
    }

    #[test]
    fn exits_and_calls_in_order() {
        let (_, a, b) = ab();
        let p = Program::seq(
            Program::call(a),
            Program::if_(
                Program::ret(7),
                Program::seq(Program::call(b), Program::ret(9)),
            ),
        );
        assert_eq!(p.exits(), vec![7, 9]);
        assert_eq!(p.calls(), vec![a, b]);
        assert_eq!(p.size(), 7);
    }

    #[test]
    fn display_uses_paper_syntax() {
        let (ab, a, _) = ab();
        let p = Program::seq(Program::call(a), Program::ret(0));
        assert_eq!(p.display(&ab).to_string(), "a(); return");
    }
}
